"""Cross-architecture Pareto comparison (GFLOPS vs watts).

The ROADMAP's multi-backend goal is exactly this plot: once a Versal
deployment has been tuned, put it on one front with the paper's four
measured platforms — the U280 and Stratix 10 priced through the
``fpga_shiftbuffer`` cost model at the same grid, and the Xeon 8260M /
Tesla V100 from the calibrated catalog models — and mark which
architectures are Pareto-optimal on (kernel GFLOPS up, watts down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.backend.base import get_backend
from repro.core.grid import Grid
from repro.hardware.devices import TESLA_V100, XEON_8260M

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tune.cost import Evaluation

__all__ = ["ArchitecturePoint", "cross_architecture_front"]

_ROUND = 6


@dataclass
class ArchitecturePoint:
    """One architecture's best known operating point on the shared axes."""

    architecture: str
    backend: str
    device: str
    kernel_gflops: float
    watts: float
    detail: str = ""
    on_front: bool = False

    @property
    def gflops_per_watt(self) -> float:
        return self.kernel_gflops / self.watts if self.watts else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "architecture": self.architecture,
            "backend": self.backend,
            "device": self.device,
            "kernel_gflops": round(self.kernel_gflops, _ROUND),
            "watts": round(self.watts, _ROUND),
            "gflops_per_watt": round(self.gflops_per_watt, _ROUND),
            "detail": self.detail,
            "on_front": self.on_front,
        }


def _fpga_reference(device_name: str, grid: Grid,
                    flops_scale: float) -> "ArchitecturePoint | None":
    """First feasible canonical deployment on an FPGA catalog device."""
    backend = get_backend("fpga_shiftbuffer")
    device = backend.resolve_device(device_name)
    model = backend.cost_model(device, grid, flops_scale=flops_scale)
    for point in backend.scenario_candidates(device, grid):
        evaluation = model.evaluate(point)
        if evaluation.feasible:
            return ArchitecturePoint(
                architecture=device_name,
                backend=backend.id,
                device=device.name,
                kernel_gflops=evaluation.kernel_gflops,
                watts=evaluation.watts,
                detail=evaluation.point.key(),
            )
    return None


def cross_architecture_front(versal_best: "Evaluation | None", grid: Grid,
                             *, flops_scale: float = 1.0
                             ) -> list[ArchitecturePoint]:
    """All five architectures on one (GFLOPS, watts) front.

    ``versal_best`` is the tuned ``versal_aie`` evaluation (``None``
    leaves Versal off the plot, e.g. when the tune found nothing
    feasible).  Entries are sorted by kernel GFLOPS descending and
    flagged ``on_front`` when no other entry dominates them.
    """
    points: list[ArchitecturePoint] = []
    for name in ("u280", "stratix10"):
        reference = _fpga_reference(name, grid, flops_scale)
        if reference is not None:
            points.append(reference)
    points.append(ArchitecturePoint(
        architecture="cpu",
        backend="host",
        device=XEON_8260M.name,
        kernel_gflops=XEON_8260M.gflops() * flops_scale,
        watts=XEON_8260M.run_power_watts(),
        detail=f"{XEON_8260M.cores} cores",
    ))
    points.append(ArchitecturePoint(
        architecture="gpu",
        backend="host",
        device=TESLA_V100.name,
        kernel_gflops=TESLA_V100.kernel_gflops * flops_scale,
        watts=TESLA_V100.run_power_watts(),
        detail="OpenACC port",
    ))
    if versal_best is not None:
        points.append(ArchitecturePoint(
            architecture="versal",
            backend="versal_aie",
            device=get_backend("versal_aie").resolve_device().name,
            kernel_gflops=versal_best.kernel_gflops,
            watts=versal_best.watts,
            detail=versal_best.point.key(),
        ))

    for entry in points:
        entry.on_front = not any(
            other is not entry
            and other.kernel_gflops >= entry.kernel_gflops
            and other.watts <= entry.watts
            and (other.kernel_gflops > entry.kernel_gflops
                 or other.watts < entry.watts)
            for other in points
        )
    points.sort(key=lambda e: (-e.kernel_gflops, e.watts, e.architecture))
    return points
