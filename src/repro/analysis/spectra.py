"""Horizontal kinetic-energy spectra.

The standard LES diagnostic: Fourier-transform the horizontal wind on
each level, bin |FFT|^2 by horizontal wavenumber magnitude, and average
over levels.  Used by examples to show the advected fields keep a
physically shaped spectrum (no spurious pile-up at the grid scale).
"""

from __future__ import annotations

import numpy as np

from repro.core.fields import FieldSet

__all__ = ["energy_spectrum"]


def energy_spectrum(fields: FieldSet, *,
                    levels: slice | None = None
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Radially binned horizontal KE spectrum.

    Parameters
    ----------
    fields:
        Wind fields; ``u`` and ``v`` contribute (horizontal KE).
    levels:
        Vertical slab to average over (default: all levels).

    Returns
    -------
    (wavenumbers, energy):
        Integer horizontal wavenumber bins ``1 .. min(nx, ny) // 2`` and
        the mean spectral energy in each bin.
    """
    grid = fields.grid
    levels = levels if levels is not None else slice(None)
    u = fields.interior("u")[:, :, levels]
    v = fields.interior("v")[:, :, levels]

    # FFT over the horizontal plane for every level at once.
    u_hat = np.fft.fft2(u, axes=(0, 1)) / (grid.nx * grid.ny)
    v_hat = np.fft.fft2(v, axes=(0, 1)) / (grid.nx * grid.ny)
    energy_density = 0.5 * (np.abs(u_hat) ** 2 + np.abs(v_hat) ** 2)
    energy_density = energy_density.mean(axis=2)  # average over levels

    kx = np.fft.fftfreq(grid.nx) * grid.nx
    ky = np.fft.fftfreq(grid.ny) * grid.ny
    k_mag = np.sqrt(kx[:, None] ** 2 + ky[None, :] ** 2)

    k_max = min(grid.nx, grid.ny) // 2
    wavenumbers = np.arange(1, k_max + 1)
    spectrum = np.zeros(k_max)
    for index, k in enumerate(wavenumbers):
        shell = (k_mag >= k - 0.5) & (k_mag < k + 0.5)
        if np.any(shell):
            spectrum[index] = energy_density[shell].sum()
    return wavenumbers, spectrum
