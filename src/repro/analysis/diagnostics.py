"""Point diagnostics: divergence, vorticity, kinetic energy, CFL.

All operators use centred differences on the interior with the periodic
halos for horizontal neighbours and one-sided differences at the vertical
boundaries, matching the grid conventions of :mod:`repro.core.grid`.
"""

from __future__ import annotations

import numpy as np

from repro.core.fields import FieldSet

__all__ = ["divergence", "vorticity_z", "kinetic_energy", "cfl_field"]


def _centred_x(array: np.ndarray, dx: float) -> np.ndarray:
    """d/dx over the interior of a halo-carrying array."""
    return (array[2:, 1:-1, :] - array[:-2, 1:-1, :]) / (2.0 * dx)


def _centred_y(array: np.ndarray, dy: float) -> np.ndarray:
    return (array[1:-1, 2:, :] - array[1:-1, :-2, :]) / (2.0 * dy)


def _centred_z(interior: np.ndarray, dz: float) -> np.ndarray:
    """d/dz with one-sided differences at the column boundaries."""
    out = np.empty_like(interior)
    out[:, :, 1:-1] = (interior[:, :, 2:] - interior[:, :, :-2]) / (2.0 * dz)
    out[:, :, 0] = (interior[:, :, 1] - interior[:, :, 0]) / dz
    out[:, :, -1] = (interior[:, :, -1] - interior[:, :, -2]) / dz
    return out


def divergence(fields: FieldSet) -> np.ndarray:
    """du/dx + dv/dy + dw/dz over the interior.

    A mass-consistent (anelastic, constant-density) wind field has zero
    divergence; the generators in :mod:`repro.core.wind` are not exactly
    solenoidal, but advection should not blow the divergence up.
    """
    grid = fields.grid
    return (
        _centred_x(fields.u, grid.dx)
        + _centred_y(fields.v, grid.dy)
        + _centred_z(fields.interior("w"), grid.dz)
    )


def vorticity_z(fields: FieldSet) -> np.ndarray:
    """Vertical vorticity dv/dx - du/dy over the interior."""
    grid = fields.grid
    return _centred_x(fields.v, grid.dx) - _centred_y(fields.u, grid.dy)


def kinetic_energy(fields: FieldSet) -> float:
    """Domain-integrated kinetic energy per unit density, 0.5 * sum |V|^2."""
    return 0.5 * float(
        (fields.interior("u") ** 2
         + fields.interior("v") ** 2
         + fields.interior("w") ** 2).sum()
    )


def cfl_field(fields: FieldSet, dt: float) -> np.ndarray:
    """Per-cell advective CFL number for timestep ``dt``."""
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    grid = fields.grid
    return dt * (
        np.abs(fields.interior("u")) / grid.dx
        + np.abs(fields.interior("v")) / grid.dy
        + np.abs(fields.interior("w")) / grid.dz
    )
