"""Flow diagnostics for the advected wind fields.

MONC users judge a run by its physics: divergence (mass consistency),
vorticity (turbulence structure), kinetic-energy spectra (LES resolution)
and CFL fields (stability headroom).  This subpackage provides those
diagnostics for the library's :class:`~repro.core.fields.FieldSet`, so
examples and tests can assert physical sanity, not just bit equality.
"""

from repro.analysis.diagnostics import (
    cfl_field,
    divergence,
    kinetic_energy,
    vorticity_z,
)
from repro.analysis.spectra import energy_spectrum

__all__ = [
    "divergence",
    "vorticity_z",
    "kinetic_energy",
    "cfl_field",
    "energy_spectrum",
]
