"""Pareto-frontier extraction over (GFLOPS, utilisation, watts).

A feasible evaluation *dominates* another when it is at least as good on
every axis — more sustained kernel GFLOPS, no more fabric utilisation,
no more watts — and strictly better on at least one.  The front is every
evaluation nothing dominates, sorted best-GFLOPS-first with a canonical
tie order, so front extraction is deterministic for a given evaluation
set regardless of search order.

The ratio helpers guard their denominators the same way
:func:`repro.perf.bench.speedup` does: a zero or negative runtime/watt
reading is a measurement error, and dividing by it would silently
manufacture an infinite (or sign-flipped) improvement — raise a clear
:class:`ValueError` instead.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.tune.cost import Evaluation

__all__ = ["dominates", "pareto_front", "improvement_ratio",
           "efficiency_ratio"]


def _axes(evaluation: Evaluation) -> tuple[float, float, float]:
    """(maximise, minimise, minimise) objective vector of one point."""
    return (evaluation.kernel_gflops, evaluation.utilisation,
            evaluation.watts)


def dominates(a: Evaluation, b: Evaluation) -> bool:
    """True when ``a`` Pareto-dominates ``b``."""
    ga, ua, wa = _axes(a)
    gb, ub, wb = _axes(b)
    at_least = ga >= gb and ua <= ub and wa <= wb
    strictly = ga > gb or ua < ub or wa < wb
    return at_least and strictly


def pareto_front(evaluations: Iterable[Evaluation]) -> list[Evaluation]:
    """Non-dominated feasible evaluations, best kernel GFLOPS first.

    Points with *identical* objective vectors are interchangeable along
    every traded axis (they typically differ only on axes orthogonal to
    the trade, like the host's X chunking), so each vector keeps one
    canonical representative — the lowest point in the total point
    order.  The result is deterministic for a given evaluation set
    regardless of search order.
    """
    feasible = [e for e in evaluations if e.feasible]
    representative: dict[tuple[float, float, float], Evaluation] = {}
    for entry in feasible:
        axes = _axes(entry)
        kept = representative.get(axes)
        if kept is None or entry.point < kept.point:
            representative[axes] = entry
    candidates = list(representative.values())
    front = [
        e for e in candidates
        if not any(dominates(other, e) for other in candidates)
    ]
    front.sort(key=lambda e: (-e.kernel_gflops, e.utilisation, e.watts,
                              e.point))
    return front


def improvement_ratio(baseline_seconds: float,
                      candidate_seconds: float) -> float:
    """Runtime speedup baseline/candidate, guarded against bad inputs."""
    for label, value in (("baseline", baseline_seconds),
                         ("candidate", candidate_seconds)):
        if value <= 0:
            raise ValueError(
                f"{label} runtime must be positive to form a speedup, "
                f"got {value}"
            )
    return baseline_seconds / candidate_seconds


def efficiency_ratio(gflops: float, watts: float) -> float:
    """GFLOPS per watt, guarded against zero/negative power readings."""
    if watts <= 0:
        raise ValueError(
            f"watts must be positive to form an efficiency ratio, "
            f"got {watts}"
        )
    if gflops < 0:
        raise ValueError(f"gflops must be >= 0, got {gflops}")
    return gflops / watts


def front_summary(front: Sequence[Evaluation]) -> list[dict]:
    """JSON-ready front description (points plus their trade axes)."""
    return [e.to_dict() for e in front]
