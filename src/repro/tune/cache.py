"""Persistent JSON evaluation cache.

Analytic evaluations are cheap but not free (each one lints the point
and simulates the host schedule), and repeated tuning runs — CI smoke
jobs, strategy comparisons, budget sweeps — revisit the same points.
The cache keys each evaluation by the backend, device, grid, and
canonical point key, so a cache file is safely shared between
strategies but never between problems — and a cached U280 evaluation
can never be served for a Versal query, even when point keys collide.

The on-disk format is a single sorted-key JSON object; loading tolerates
a missing file (first run), transparently migrates the pre-backend
schema 2 layout (scopes gain the default backend's prefix), and raises
:class:`~repro.errors.TuneError` on any other schema rather than
silently mixing incompatible cost models.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Callable

from repro.errors import TuneError
from repro.tune.cost import Evaluation
from repro.tune.space import TunePoint

__all__ = ["EvaluationCache"]

#: Bump on any change to Evaluation fields or cost-model semantics.
#: Schema 3 prefixes every scope with the backend id.
SCHEMA_VERSION = 3

#: The schema written before backends existed; its scopes are all
#: implicitly the default backend's.
_LEGACY_SCHEMA = 2

#: Backend id stamped onto migrated legacy scopes.
_DEFAULT_BACKEND = "fpga_shiftbuffer"


def _evaluation_from_dict(data: dict,
                          point_factory: Callable[[dict], Any]) -> Evaluation:
    point = point_factory(data["point"])
    return Evaluation(
        point=point,
        feasible=bool(data["feasible"]),
        reject_codes=tuple(data.get("reject_codes", ())),
        reject_reason=str(data.get("reject_reason", "")),
        kernel_gflops=float(data.get("kernel_gflops", 0.0)),
        end_to_end_gflops=float(data.get("end_to_end_gflops", 0.0)),
        gflops_per_watt=float(data.get("gflops_per_watt", 0.0)),
        kernel_seconds=float(data.get("kernel_seconds", 0.0)),
        runtime_seconds=float(data.get("runtime_seconds", 0.0)),
        transfer_seconds=float(data.get("transfer_seconds", 0.0)),
        watts=float(data.get("watts", 0.0)),
        utilisation=float(data.get("utilisation", 0.0)),
        utilisation_by_axis=dict(data.get("utilisation_by_axis", {})),
        clock_mhz=float(data.get("clock_mhz", 0.0)),
        memory_bound=bool(data.get("memory_bound", False)),
        analytic_cycles=int(data.get("analytic_cycles", 0)),
        static_cycles=int(data.get("static_cycles", 0)),
    )


def _migrate_scopes(data: dict) -> dict[str, dict]:
    """Scopes of a cache payload, migrated to the schema-3 layout."""
    scopes = dict(data.get("scopes", {}))
    if data.get("schema") == _LEGACY_SCHEMA:
        return {f"{_DEFAULT_BACKEND}/{scope}": entries
                for scope, entries in scopes.items()}
    return scopes


class EvaluationCache:
    """Keyed evaluation store, optionally persisted to a JSON file."""

    def __init__(self, path: str | pathlib.Path | None = None, *,
                 backend: str = _DEFAULT_BACKEND,
                 device: str = "", grid_key: str = "",
                 point_factory: Callable[[dict], Any] | None = None) -> None:
        self.path = pathlib.Path(path) if path is not None else None
        self.scope = f"{backend}/{device}/{grid_key}"
        self._point_factory = (point_factory if point_factory is not None
                               else lambda data: TunePoint(**data))
        self._entries: dict[str, Evaluation] = {}
        self.hits = 0
        self.misses = 0
        if self.path is not None and self.path.exists():
            self._load()

    # -- persistence ---------------------------------------------------------

    def _load(self) -> None:
        assert self.path is not None
        try:
            data = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise TuneError(f"unreadable tune cache {self.path}: {error}"
                            ) from error
        if data.get("schema") not in (SCHEMA_VERSION, _LEGACY_SCHEMA):
            raise TuneError(
                f"tune cache {self.path} has schema "
                f"{data.get('schema')!r}, expected {SCHEMA_VERSION}; "
                f"delete it to re-evaluate"
            )
        for scope, entries in _migrate_scopes(data).items():
            if scope != self.scope:
                continue
            for key, entry in entries.items():
                self._entries[key] = _evaluation_from_dict(
                    entry, self._point_factory)

    def save(self) -> None:
        """Write back, merging with other scopes already in the file.

        A legacy schema-2 file is migrated wholesale: its other scopes
        are re-keyed under the default backend and the file is rewritten
        as schema 3.
        """
        if self.path is None:
            return
        scopes: dict[str, dict] = {}
        if self.path.exists():
            try:
                existing = json.loads(self.path.read_text())
                if existing.get("schema") in (SCHEMA_VERSION, _LEGACY_SCHEMA):
                    scopes = _migrate_scopes(existing)
            except (OSError, json.JSONDecodeError):
                pass  # overwrite a corrupt cache rather than crash
        scopes[self.scope] = {
            key: evaluation.to_dict()
            for key, evaluation in sorted(self._entries.items())
        }
        payload = {"schema": SCHEMA_VERSION, "scopes": scopes}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, point: Any) -> bool:
        return point.key() in self._entries

    def get(self, point: Any) -> Evaluation | None:
        found = self._entries.get(point.key())
        if found is not None:
            self.hits += 1
        return found

    def put(self, evaluation: Evaluation) -> None:
        self.misses += 1
        self._entries[evaluation.point.key()] = evaluation
