"""The typed design-parameter space the tuner explores.

A :class:`TunePoint` is one candidate deployment: the kernel's Y chunk
width, the number of kernel replicas, the FIFO stream depth, the number
format of the datapath, which on-board memory holds the fields, and the
host-side schedule (overlapped or sequential, and how many X chunks the
overlap pipeline is fed in).  The achieved clock is *derived*, never
chosen: replicating kernels degrades timing closure per the device's
:class:`~repro.hardware.clock.ClockModel` (398 -> 250 MHz on the Stratix
10), which is exactly the interaction the paper tuned by hand.

:class:`ParameterSpace` holds one axis tuple per parameter and derives
per-device bounds: chunk widths are clamped to the domain's NY and to the
planner's validity floor, replica counts to what the fabric fits at the
*narrowest* chunk width (wider chunks may fit fewer — the lint gate
rejects those points during costing), and memory spaces to the device's
own catalog.  Axis order and point order are deterministic, so seeded
searches are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.backend.space import AxisSpace
from repro.core.grid import Grid
from repro.errors import TuneError
from repro.hardware.device import FPGADevice
from repro.kernel.config import KernelConfig
from repro.precision.formats import BFLOAT16, FLOAT32, FLOAT64, NumberFormat
from repro.shiftbuffer.chunking import HALO, MIN_EFFICIENT_CHUNK

__all__ = ["TunePoint", "ParameterSpace", "PRECISION_FORMATS"]

#: Number formats the tuner may place on the datapath, by name.  The
#: default space pins this axis to float64 (the paper's datapath); the
#: reduced-precision axis is an explicit opt-in because narrower formats
#: trade accuracy for fit, which no scalar objective can arbitrate.
PRECISION_FORMATS: dict[str, NumberFormat] = {
    "float64": FLOAT64,
    "float32": FLOAT32,
    "bfloat16": BFLOAT16,
}

#: Candidate Y chunk widths (the paper hand-picks from this regime).
_CHUNK_WIDTHS: tuple[int, ...] = (8, 16, 32, 64, 128)

#: Candidate FIFO stream depths between dataflow stages.
_STREAM_DEPTHS: tuple[int, ...] = (2, 4, 8)

#: Candidate host-side X chunk counts for the overlapped schedule.
_X_CHUNKS: tuple[int, ...] = (8, 16, 32)


@dataclass(frozen=True, order=True)
class TunePoint:
    """One candidate deployment (hashable, totally ordered)."""

    chunk_width: int
    num_kernels: int
    stream_depth: int
    precision: str
    memory: str
    x_chunks: int
    overlapped: bool

    def __post_init__(self) -> None:
        if self.precision not in PRECISION_FORMATS:
            raise TuneError(
                f"unknown precision {self.precision!r}; known: "
                f"{sorted(PRECISION_FORMATS)}"
            )

    @property
    def format(self) -> NumberFormat:
        return PRECISION_FORMATS[self.precision]

    @property
    def word_bytes(self) -> int:
        return self.format.bits // 8

    def clock_mhz(self, device: FPGADevice) -> float:
        """Achieved kernel clock under the device's degradation model."""
        return device.clock.frequency_mhz(self.num_kernels)

    def config(self, grid: Grid) -> KernelConfig:
        """The kernel configuration this point describes for ``grid``."""
        return KernelConfig(
            grid=grid,
            chunk_width=self.chunk_width,
            stream_depth=self.stream_depth,
            word_bytes=self.word_bytes,
        )

    def key(self) -> str:
        """Canonical cache/identity key (stable across processes)."""
        return (
            f"cw{self.chunk_width}-k{self.num_kernels}-sd{self.stream_depth}"
            f"-{self.precision}-{self.memory}-xc{self.x_chunks}"
            f"-{'ov' if self.overlapped else 'seq'}"
        )

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class ParameterSpace(AxisSpace):
    """The cross product of per-axis candidate values.

    The space algebra (enumeration, mixed-radix indexing, single-axis
    neighbourhoods) comes from :class:`repro.backend.space.AxisSpace`,
    the surface every backend's tuner space shares.
    """

    chunk_widths: tuple[int, ...]
    num_kernels: tuple[int, ...]
    stream_depths: tuple[int, ...]
    precisions: tuple[str, ...]
    memories: tuple[str, ...]
    x_chunks: tuple[int, ...]
    overlapped: tuple[bool, ...]

    def __post_init__(self) -> None:
        self.validate_axes()

    def _axis_fields(self) -> dict[str, tuple]:
        return {
            "chunk_widths": self.chunk_widths,
            "num_kernels": self.num_kernels,
            "stream_depths": self.stream_depths,
            "precisions": self.precisions,
            "memories": self.memories,
            "x_chunks": self.x_chunks,
            "overlapped": self.overlapped,
        }

    def axes(self) -> dict[str, tuple]:
        """Axis name -> candidate values, in TunePoint field order."""
        return {
            "chunk_width": self.chunk_widths,
            "num_kernels": self.num_kernels,
            "stream_depth": self.stream_depths,
            "precision": self.precisions,
            "memory": self.memories,
            "x_chunks": self.x_chunks,
            "overlapped": self.overlapped,
        }

    def _make_point(self, **values: object) -> TunePoint:
        return TunePoint(**values)  # type: ignore[arg-type]

    @classmethod
    def derive(cls, device: FPGADevice, grid: Grid, *,
               wide_precision: bool = False) -> "ParameterSpace":
        """Per-device constrained space for ``grid``.

        Chunk widths are clamped to NY and the planner's validity floor;
        replica counts range up to the fabric fit at the narrowest chunk
        width (the most replicas any point can legally request); memory
        spaces come from the device catalog in preference order.
        ``wide_precision`` opens the reduced-precision axis (float32,
        bfloat16) — off by default because the paper's datapath is
        float64 and narrower formats change the numerics.
        """
        chunk_widths = tuple(
            w for w in _CHUNK_WIDTHS if HALO < w <= max(grid.ny, HALO + 1)
        )
        if not chunk_widths:
            # Tiny NY: the only sensible width is the domain itself.
            chunk_widths = (min(max(grid.ny, HALO + 1),
                                MIN_EFFICIENT_CHUNK),)
        narrowest = KernelConfig(grid=grid, chunk_width=chunk_widths[0])
        most = max(1, device.max_kernels(narrowest))
        memories = tuple(
            name for name in device.memory_preference
            if name in device.memories
        ) or tuple(sorted(device.memories))
        precisions = (("float64", "float32", "bfloat16") if wide_precision
                      else ("float64",))
        return cls(
            chunk_widths=chunk_widths,
            num_kernels=tuple(range(1, most + 1)),
            stream_depths=_STREAM_DEPTHS,
            precisions=precisions,
            memories=memories,
            x_chunks=_X_CHUNKS,
            overlapped=(False, True),
        )
