"""Pluggable seeded search strategies over a :class:`ParameterSpace`.

Three strategies, one contract: given the space, an ``evaluate``
callable, an evaluation budget and a seed, return every evaluation
performed.  All randomness flows through one ``random.Random(seed)``
instance and derives choices exclusively from ``rng.random()`` (not the
higher-level helpers, whose algorithms have changed across Python
versions), so a (strategy, seed, budget, space) tuple is reproducible
byte for byte.

* :class:`ExhaustiveSearch` walks the whole grid in canonical order —
  exact within budget, exponential in axes.
* :class:`GreedySearch` hill-climbs single-axis neighbour moves from
  seeded random restarts — cheap, good on the mostly-monotone axes of
  this model (more replicas help until the clock/bandwidth knee).
* :class:`AnnealingSearch` is simulated annealing with a geometric
  temperature schedule — occasionally accepts downhill moves, so it
  crosses the infeasible ridges (e.g. chunk widths where one fewer
  kernel fits) that stop a greedy climber.
"""

from __future__ import annotations

import math
from typing import Callable, Protocol

from repro.errors import TuneError
from repro.tune.cost import Evaluation
from repro.tune.space import ParameterSpace, TunePoint

__all__ = ["SearchStrategy", "ExhaustiveSearch", "GreedySearch",
           "AnnealingSearch", "STRATEGIES", "make_strategy"]

EvaluateFn = Callable[[TunePoint], Evaluation]


class SearchStrategy(Protocol):
    """The strategy contract (structural typing keeps plugins trivial)."""

    name: str

    def run(self, space: ParameterSpace, evaluate: EvaluateFn, *,
            budget: int, seed: int,
            objective: str) -> list[Evaluation]: ...


class _Rng:
    """Deterministic uniform source pinned to ``random.random()`` only."""

    def __init__(self, seed: int) -> None:
        import random

        self._rng = random.Random(seed)

    def uniform(self) -> float:
        return self._rng.random()

    def index(self, length: int) -> int:
        """A uniform index into a sequence of ``length`` items."""
        if length < 1:
            raise TuneError("cannot draw from an empty sequence")
        return min(int(self.uniform() * length), length - 1)


class _Tracker:
    """Shared evaluate-once bookkeeping for the iterative strategies."""

    def __init__(self, evaluate: EvaluateFn, budget: int,
                 objective: str) -> None:
        if budget < 1:
            raise TuneError(f"budget must be >= 1, got {budget}")
        self._evaluate = evaluate
        self._budget = budget
        self._objective = objective
        self.seen: dict[str, Evaluation] = {}
        self.order: list[Evaluation] = []

    @property
    def exhausted(self) -> bool:
        return len(self.order) >= self._budget

    def evaluate(self, point: TunePoint) -> Evaluation | None:
        """Evaluate (once) within budget; None when the budget is spent.

        Revisiting an already-evaluated point costs nothing — the
        budget counts distinct evaluations, matching what the cache
        makes free in practice.
        """
        key = point.key()
        if key in self.seen:
            return self.seen[key]
        if self.exhausted:
            return None
        evaluation = self._evaluate(point)
        self.seen[key] = evaluation
        self.order.append(evaluation)
        return evaluation

    def score(self, evaluation: Evaluation) -> float:
        return evaluation.objective(self._objective)

    def better(self, a: Evaluation, b: Evaluation) -> bool:
        """True when ``a`` ranks strictly above ``b``."""
        return a.sort_key(self._objective) > b.sort_key(self._objective)


def _first_unseen(space: ParameterSpace,
                  tracker: _Tracker) -> TunePoint | None:
    """The canonically-first point the tracker has not evaluated yet.

    Revisits are free, so a search stuck in an already-explored
    neighbourhood makes no budget progress; jumping here guarantees
    every stall-recovery step evaluates something new, which bounds
    every strategy's runtime by the budget.
    """
    for point in space.points():
        if point.key() not in tracker.seen:
            return point
    return None


class ExhaustiveSearch:
    """Walk the full grid in canonical order (budget-truncated)."""

    name = "grid"

    def run(self, space: ParameterSpace, evaluate: EvaluateFn, *,
            budget: int, seed: int, objective: str) -> list[Evaluation]:
        tracker = _Tracker(evaluate, budget, objective)
        for point in space.points():
            if tracker.evaluate(point) is None:
                break
        return tracker.order


class GreedySearch:
    """Steepest-ascent hill climbing with seeded random restarts."""

    name = "greedy"

    def run(self, space: ParameterSpace, evaluate: EvaluateFn, *,
            budget: int, seed: int, objective: str) -> list[Evaluation]:
        rng = _Rng(seed)
        tracker = _Tracker(evaluate, budget, objective)
        while not tracker.exhausted:
            spent = len(tracker.order)
            current = tracker.evaluate(space.point_at(rng.index(space.size)))
            if current is None:
                break
            improved = True
            while improved and not tracker.exhausted:
                improved = False
                best_move = current
                for neighbour in space.neighbours(current.point):
                    candidate = tracker.evaluate(neighbour)
                    if candidate is None:
                        break
                    if tracker.better(candidate, best_move):
                        best_move = candidate
                if best_move is not current:
                    current = best_move
                    improved = True
            if len(tracker.order) == spent:
                # The restart landed in already-explored terrain and the
                # climb went nowhere new; revisits are free, so force
                # budget progress (or detect full coverage) explicitly.
                fresh = _first_unseen(space, tracker)
                if fresh is None or tracker.evaluate(fresh) is None:
                    break
        return tracker.order


class AnnealingSearch:
    """Simulated annealing over single-axis random moves."""

    name = "anneal"

    #: Starting temperature relative to the first feasible score.
    _T0_FRACTION = 0.25
    #: Geometric cooling factor per accepted-or-rejected step.
    _COOLING = 0.95
    #: Proposals without a new evaluation before forcing a jump; once
    #: cooled, a walker parked on a local optimum whose neighbourhood
    #: is fully explored would otherwise spin forever on free revisits.
    _STALL_LIMIT = 16

    def run(self, space: ParameterSpace, evaluate: EvaluateFn, *,
            budget: int, seed: int, objective: str) -> list[Evaluation]:
        rng = _Rng(seed)
        tracker = _Tracker(evaluate, budget, objective)

        current = tracker.evaluate(space.point_at(rng.index(space.size)))
        if current is None:
            return tracker.order
        # Re-seat on a feasible point if the random start is rejected
        # (bounded draws: a space can be entirely infeasible).
        attempts = 0
        while (current is not None and not current.feasible
               and attempts < space.size):
            current = tracker.evaluate(space.point_at(rng.index(space.size)))
            attempts += 1
        if current is None or not current.feasible:
            return tracker.order

        temperature = max(tracker.score(current), 1.0) * self._T0_FRACTION
        stall = 0
        while not tracker.exhausted:
            spent = len(tracker.order)
            moves = space.neighbours(current.point)
            proposal = tracker.evaluate(moves[rng.index(len(moves))])
            if proposal is None:
                break
            delta = tracker.score(proposal) - tracker.score(current)
            if delta >= 0 or (
                math.isfinite(delta)
                and rng.uniform() < math.exp(delta / temperature)
            ):
                current = proposal
            temperature = max(temperature * self._COOLING, 1e-9)
            if len(tracker.order) == spent:
                stall += 1
                if stall >= self._STALL_LIMIT:
                    fresh = _first_unseen(space, tracker)
                    restart = (tracker.evaluate(fresh)
                               if fresh is not None else None)
                    if restart is None:
                        break
                    if restart.feasible:
                        current = restart
                    stall = 0
            else:
                stall = 0
        return tracker.order


#: Registered strategies by CLI name.
STRATEGIES: dict[str, type] = {
    ExhaustiveSearch.name: ExhaustiveSearch,
    GreedySearch.name: GreedySearch,
    AnnealingSearch.name: AnnealingSearch,
}


def make_strategy(name: str) -> SearchStrategy:
    try:
        return STRATEGIES[name]()
    except KeyError:
        raise TuneError(
            f"unknown search strategy {name!r}; known: {sorted(STRATEGIES)}"
        ) from None
