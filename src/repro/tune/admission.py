"""Admission pricing: one (device, grid, mode) -> one :class:`JobQuote`.

The serving layer (:mod:`repro.serve`) must decide *before* queueing a
job whether the fleet can meet its deadline, and it must make that call
with the same models the autotuner trusts — the device invocation model
and the discrete-event host schedule — so an admitted job's quoted
service time is exactly what the lane will later bill for it
(fault-free).  This module is that hook: a pure function from a device
model, a grid and a service mode to modelled seconds, built on
:class:`~repro.runtime.session.AdvectionSession` chunking and the
Fig. 6 overlapped schedule.

Service modes
-------------
``fast``
    The production path: chunked functional execution, results-only
    readback.
``exact``
    The audit path: the run additionally streams cycle-level telemetry
    (per-stage fires/stalls, batched-window boundaries) back with the
    sources.  Following the paper's own finding that data movement
    dominates end-to-end time, exact mode is priced as a larger D2H
    payload (:data:`EXACT_TELEMETRY_OUT_SCALE` x the result bytes)
    rather than as an opaque latency constant — which is also why the
    overload ladder's exact->fast downgrade buys real headroom: it
    sheds transfer bytes, the scarce resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.grid import Grid
from repro.errors import ConfigurationError, TuneError
from repro.hardware.cpu import CPUModel
from repro.kernel.config import KernelConfig
from repro.runtime.overlap import build_overlapped_schedule
from repro.runtime.session import AdvectionSession
from repro.runtime.simulator import simulate_schedule

__all__ = ["JobQuote", "quote_job", "serve_session", "serve_config",
           "out_scale_for_mode", "EXACT_TELEMETRY_OUT_SCALE", "SERVE_MODES",
           "SERVE_X_CHUNKS"]

#: D2H payload multiplier of exact mode (sources + cycle telemetry).
EXACT_TELEMETRY_OUT_SCALE: float = 2.0

#: Service modes the fleet offers, cheapest first (the degradation
#: ladder walks right-to-left: exact downgrades to fast).
SERVE_MODES: tuple[str, ...] = ("fast", "exact")

#: X chunks per job schedule: small jobs still overlap transfer/compute.
SERVE_X_CHUNKS: int = 8


def out_scale_for_mode(mode: str) -> float:
    """D2H byte multiplier for one service mode."""
    if mode not in SERVE_MODES:
        raise ConfigurationError(
            f"unknown service mode {mode!r}; known: {list(SERVE_MODES)}"
        )
    return EXACT_TELEMETRY_OUT_SCALE if mode == "exact" else 1.0


def serve_config(grid: Grid) -> KernelConfig:
    """Device-independent kernel configuration of one serving-layer job.

    Shared by quotes, lane schedules *and* the numeric compute path, so
    a job's result bytes are a function of its input alone — the
    property that makes resharding trivially bit-identical.
    """
    return KernelConfig(grid=grid, chunk_width=max(2, grid.ny // 3))


def serve_session(device: Any, grid: Grid, *,
                  x_chunks: int = SERVE_X_CHUNKS) -> AdvectionSession:
    """The session every serving-layer price and schedule derives from.

    One constructor so the admission quote, the lane's live schedule and
    the benchmark all chunk identically — a quote that chunked
    differently from the lane would misprice deadlines.
    """
    return AdvectionSession(device, serve_config(grid), x_chunks=x_chunks)


@dataclass(frozen=True)
class JobQuote:
    """Fault-free modelled cost of one job on one device."""

    device: str
    mode: str
    #: end-to-end modelled seconds (schedule makespan + device setup).
    service_seconds: float
    #: seconds the PCIe engines are busy (the data-movement share).
    transfer_seconds: float
    #: seconds the kernel banks are busy.
    kernel_seconds: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "device": self.device,
            "mode": self.mode,
            "service_seconds": self.service_seconds,
            "transfer_seconds": self.transfer_seconds,
            "kernel_seconds": self.kernel_seconds,
        }


def quote_job(device: Any, grid: Grid, *, mode: str = "fast",
              x_chunks: int = SERVE_X_CHUNKS,
              flops_scale: float = 1.0) -> JobQuote:
    """Price one job on one device model, fault-free.

    CPU baselines run host-resident (no transfers); accelerator quotes
    simulate the overlapped schedule the lane will actually execute, so
    quote and bill agree to the float.  ``flops_scale`` is the served
    kernel's operation intensity relative to advection (scenario jobs
    pass ``scenario.flops_scale``): kernel-busy time stretches by it,
    transfer time does not — data movement is per-cell, not per-op.
    """
    if mode not in SERVE_MODES:
        raise TuneError(
            f"unknown service mode {mode!r}; known: {list(SERVE_MODES)}"
        )
    if not flops_scale > 0:
        raise TuneError(f"flops_scale must be > 0, got {flops_scale}")
    if isinstance(device, CPUModel):
        # Host-resident: the whole service time is kernel time.
        seconds = device.kernel_time(grid) * flops_scale
        return JobQuote(device=device.name, mode=mode,
                        service_seconds=seconds, transfer_seconds=0.0,
                        kernel_seconds=seconds)
    session = serve_session(device, grid, x_chunks=x_chunks)
    chunks = session.chunk_work(grid, out_scale=out_scale_for_mode(mode))
    schedule = simulate_schedule(build_overlapped_schedule(
        chunks, device.pcie))
    kernel_busy = sum(seconds for resource, seconds in schedule.busy.items()
                      if resource.startswith("kernel"))
    transfer_busy = sum(seconds for resource, seconds in schedule.busy.items()
                        if resource.startswith("pcie"))
    setup = getattr(device, "setup_seconds", 0.0)
    return JobQuote(device=device.name, mode=mode,
                    service_seconds=(schedule.makespan + setup
                                     + kernel_busy * (flops_scale - 1.0)),
                    transfer_seconds=transfer_busy,
                    kernel_seconds=kernel_busy * flops_scale)
