"""Tuning orchestration: space -> search -> Pareto -> measured tier.

:func:`tune` wires the subsystem together: derive (or accept) a
parameter space for the device, run one seeded strategy over the
lint-gated cost model with an optional persistent cache, extract the
Pareto frontier over (GFLOPS, utilisation, watts), and optionally
re-score the top-K candidates with the fast-forward simulation tier.

Observability rides along: pass a
:class:`~repro.observe.trace.Tracer`/:class:`~repro.observe.metrics.MetricRegistry`
and every evaluation becomes a span on the ``tune`` track (on a
deterministic evaluation-index clock, so traces are reproducible),
cache hits become instants, and counters record
evaluations/hits/infeasible points — exportable to Perfetto via
:func:`repro.observe.export.write_trace`.

The report's ``to_dict``/``to_json`` are byte-deterministic for a given
(device, grid, space, strategy, seed, budget): floats are rounded, keys
sorted, and nothing records wall-clock time.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.grid import Grid
from repro.errors import TuneError
from repro.hardware.device import FPGADevice
from repro.hardware.devices import device_by_name
from repro.tune.cache import EvaluationCache
from repro.tune.cost import OBJECTIVES, Evaluation
from repro.tune.measure import MeasuredResult, measure_candidates
from repro.tune.pareto import pareto_front
from repro.tune.strategies import make_strategy

#: Backend whose behaviour predates the backend seam; reports omit the
#: backend key for it so pre-backend golden fixtures stay byte-identical.
_DEFAULT_BACKEND = "fpga_shiftbuffer"

if TYPE_CHECKING:
    from repro.observe.metrics import MetricRegistry
    from repro.observe.trace import Tracer

__all__ = ["TuneReport", "tune"]


@dataclass
class TuneReport:
    """Everything one tuning run decided and why."""

    device: str
    grid: Grid
    strategy: str
    objective: str
    seed: int
    budget: int
    space: Any
    evaluations: list[Evaluation]
    front: list[Evaluation]
    best: Evaluation | None
    measured: list[MeasuredResult] = field(default_factory=list)
    cache_hits: int = 0
    context: dict[str, Any] = field(default_factory=dict)
    backend: str = _DEFAULT_BACKEND

    @property
    def feasible_count(self) -> int:
        return sum(1 for e in self.evaluations if e.feasible)

    @property
    def infeasible_count(self) -> int:
        return len(self.evaluations) - self.feasible_count

    @property
    def worst_measured_error(self) -> float:
        return max((m.relative_error for m in self.measured), default=0.0)

    def to_dict(self) -> dict[str, Any]:
        payload = self._base_dict()
        if self.backend != _DEFAULT_BACKEND:
            # Pre-backend golden fixtures pin the schema without this
            # key; only non-default backends stamp themselves.
            payload["backend"] = self.backend
        return payload

    def _base_dict(self) -> dict[str, Any]:
        return {
            "device": self.device,
            "grid": {"nx": self.grid.nx, "ny": self.grid.ny,
                     "nz": self.grid.nz, "cells": self.grid.num_cells},
            "strategy": self.strategy,
            "objective": self.objective,
            "seed": self.seed,
            "budget": self.budget,
            "space": self.space.to_dict(),
            "space_size": self.space.size,
            "evaluated": len(self.evaluations),
            "feasible": self.feasible_count,
            "infeasible": self.infeasible_count,
            "cache_hits": self.cache_hits,
            "best": None if self.best is None else self.best.to_dict(),
            "pareto_front": [e.to_dict() for e in self.front],
            "measured": [m.to_dict() for m in self.measured],
            "worst_measured_error": round(self.worst_measured_error, 6),
            "context": self.context,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def _resolve_device(device: "FPGADevice | str") -> FPGADevice:
    if isinstance(device, FPGADevice):
        return device
    resolved = device_by_name(device)
    if not isinstance(resolved, FPGADevice):
        raise TuneError(
            f"device {device!r} is not an FPGA; the tuner explores FPGA "
            f"deployment parameters"
        )
    return resolved


def tune(device: "FPGADevice | str | None", grid: Grid, *,
         backend: str | None = None,
         strategy: str = "greedy", objective: str = "kernel",
         budget: int | None = None, seed: int = 0,
         space: Any | None = None,
         wide_precision: bool = False,
         flops_scale: float = 1.0,
         cache_path: "str | pathlib.Path | None" = None,
         measure_top_k: int = 0, measure_seed: int | None = None,
         tracer: "Tracer | None" = None,
         metrics: "MetricRegistry | None" = None) -> TuneReport:
    """Run one design-space exploration and return its report.

    Parameters
    ----------
    device:
        Device fixture or catalog alias (``"u280"``, ``"stratix10"``,
        ``"vc1902"``); ``None`` resolves the backend's default device.
    backend:
        Registered backend id (``"fpga_shiftbuffer"``, ``"versal_aie"``);
        ``None`` uses the default FPGA shift-buffer backend, preserving
        the pre-backend behaviour exactly.
    grid:
        The problem the deployment must serve.
    strategy:
        ``"grid"``, ``"greedy"`` or ``"anneal"``.
    objective:
        Scalar the search maximises (the Pareto front is always
        extracted over all three axes regardless).
    budget:
        Maximum distinct evaluations; defaults to the space size
        (exhaustive within reach of any strategy).
    seed:
        Seed for the strategy's random source.
    space:
        Explicit parameter space; derived from the device/grid when
        omitted.
    wide_precision:
        Open the reduced-precision axis when deriving the space.
    flops_scale:
        Operation intensity relative to the advection kernel (scenario
        kernels pass ``scenario.flops_scale``); re-scales the GFLOPS
        axes and keys the evaluation cache separately.
    cache_path:
        Persistent JSON evaluation cache (loaded before, saved after).
    measure_top_k:
        Re-score this many top candidates with the fast-forward
        simulation tier (0 = analytic only).
    measure_seed:
        Seed for the measured tier's wind fields (default: ``seed``).
    tracer / metrics:
        Optional observability sinks (see module docstring).
    """
    # Deferred import: repro.backend's built-in modules import this
    # package's cost/space layers, so the registry is only reached at
    # call time, never at module import.
    from repro.backend import get_backend

    target = get_backend(backend)
    if target.id == _DEFAULT_BACKEND:
        # Preserve the pre-backend resolution path (and its TuneError
        # for non-FPGA catalog devices) exactly.
        fpga = _resolve_device(device if device is not None
                               else target.default_device)
    else:
        fpga = target.resolve_device(device)
    if objective not in OBJECTIVES:
        raise TuneError(
            f"unknown objective {objective!r}; known: {sorted(OBJECTIVES)}"
        )
    if space is None:
        space = target.parameter_space(fpga, grid,
                                       wide_precision=wide_precision)
    if budget is None:
        budget = space.size
    if budget < 1:
        raise TuneError(f"budget must be >= 1, got {budget}")
    if measure_top_k < 0:
        raise TuneError(f"measure_top_k must be >= 0, got {measure_top_k}")
    if measure_top_k and target.id != _DEFAULT_BACKEND:
        raise TuneError(
            f"measured refinement runs the shift-buffer simulation tier "
            f"and is only available on the {_DEFAULT_BACKEND!r} backend, "
            f"not {target.id!r}"
        )

    model = target.cost_model(fpga, grid, flops_scale=flops_scale)
    grid_key = f"{grid.nx}x{grid.ny}x{grid.nz}"
    if flops_scale != 1.0:
        # Scaled scenarios must not share cached GFLOPS with advection.
        grid_key += f"@x{flops_scale:g}"
    cache = EvaluationCache(cache_path, backend=target.id,
                            device=fpga.name, grid_key=grid_key,
                            point_factory=target.point_from_dict)

    trace_on = tracer is not None and tracer.enabled
    metrics_on = metrics is not None and metrics.enabled
    eval_index = 0

    def instrumented_evaluate(point: Any) -> Evaluation:
        nonlocal eval_index
        cached = cache.get(point)
        if cached is not None:
            if trace_on:
                assert tracer is not None
                tracer.instant("cache hit", "tune", ts=float(eval_index),
                               point=point.key())
            if metrics_on:
                assert metrics is not None
                metrics.counter(
                    "tune_cache_hits",
                    "evaluations served from the persistent cache",
                ).inc()
            return cached
        evaluation = model.evaluate(point)
        cache.put(evaluation)
        if trace_on:
            assert tracer is not None
            tracer.add_span(
                point.key(), "tune", float(eval_index),
                float(eval_index + 1), category="evaluate",
                feasible=evaluation.feasible,
                objective=round(evaluation.objective(objective), 6)
                if evaluation.feasible else None,
            )
        if metrics_on:
            assert metrics is not None
            metrics.counter(
                "tune_evaluations", "cost-model evaluations performed",
            ).inc()
            if not evaluation.feasible:
                metrics.counter(
                    "tune_infeasible", "points rejected by the lint gate",
                ).inc()
        eval_index += 1
        return evaluation

    search = make_strategy(strategy)
    evaluations = search.run(space, instrumented_evaluate, budget=budget,
                             seed=seed, objective=objective)
    cache.save()

    front = pareto_front(evaluations)
    feasible = [e for e in evaluations if e.feasible]
    best = (max(feasible, key=lambda e: e.sort_key(objective))
            if feasible else None)

    ranked = sorted(feasible, key=lambda e: e.sort_key(objective),
                    reverse=True)
    measured = measure_candidates(
        ranked[:measure_top_k], grid,
        seed=seed if measure_seed is None else measure_seed,
    ) if measure_top_k else []
    if metrics_on and measured:
        assert metrics is not None
        for result in measured:
            metrics.histogram(
                "tune_measured_error",
                "relative analytic-vs-simulated cycle error",
            ).observe(result.relative_error)

    return TuneReport(
        device=fpga.name,
        grid=grid,
        strategy=strategy,
        objective=objective,
        seed=seed,
        budget=budget,
        space=space,
        evaluations=evaluations,
        front=front,
        best=best,
        measured=measured,
        cache_hits=cache.hits,
        context=model.describe(),
        backend=target.id,
    )


def render_text(report: TuneReport) -> str:
    """Human-readable tuning summary (the CLI's text mode)."""
    lines = [
        f"tune: {report.device} | grid "
        f"{report.grid.nx}x{report.grid.ny}x{report.grid.nz} "
        f"({report.grid.num_cells:,} cells)",
        *([f"backend: {report.backend}"]
          if report.backend != _DEFAULT_BACKEND else []),
        f"strategy {report.strategy} (seed {report.seed}, budget "
        f"{report.budget}) maximising {report.objective}; "
        f"space {report.space.size} points",
        f"evaluated {len(report.evaluations)} "
        f"({report.feasible_count} feasible, "
        f"{report.infeasible_count} rejected by the lint gate, "
        f"{report.cache_hits} cache hits)",
        "",
    ]
    if report.best is None:
        lines.append("no feasible point found")
        return "\n".join(lines) + "\n"

    best = report.best
    lines.append(
        f"best: {best.point.key()} -> "
        f"{best.kernel_gflops:.2f} kernel GFLOPS @ "
        f"{best.clock_mhz:.0f} MHz, "
        f"{best.end_to_end_gflops:.2f} end-to-end, "
        f"{best.utilisation:.0%} peak utilisation, "
        f"{best.watts:.0f} W"
    )
    lines.append("")
    lines.append(f"pareto front ({len(report.front)} points: "
                 f"kernel GFLOPS vs utilisation vs watts):")
    header = (f"  {'point':34} {'GFLOPS':>8} {'clock':>6} "
              f"{'util':>6} {'watts':>6}")
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for entry in report.front:
        lines.append(
            f"  {entry.point.key():34} {entry.kernel_gflops:8.2f} "
            f"{entry.clock_mhz:5.0f}M {entry.utilisation:6.1%} "
            f"{entry.watts:6.1f}"
        )
    if report.measured:
        lines.append("")
        lines.append("measured refinement (fast-forward simulation):")
        for result in report.measured:
            lines.append(
                f"  {result.point.key():34} analytic "
                f"{result.analytic_cycles:,} vs measured "
                f"{result.measured_cycles:,} cycles "
                f"(error {result.relative_error:.2%})"
            )
    return "\n".join(lines) + "\n"
