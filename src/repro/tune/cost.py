"""Analytic cost model: one :class:`TunePoint` -> one :class:`Evaluation`.

Composes the models the repo already trusts rather than inventing new
ones: the lint budget rules decide *feasibility* (a point the linter
rejects is never costed, so the tuner can only propose deployments that
would also pass ``repro lint``), the device invocation model prices the
kernel (pipeline cycles at the degraded clock versus burst-efficient
memory streaming), the runtime session prices the end-to-end run
including PCIe overlap, the resource estimator prices fabric utilisation
(precision-scaled, plus the inter-stage FIFO footprint so stream depth
is a live axis), and the power model prices watts.

Every number the search or the Pareto extraction consumes lives on the
:class:`Evaluation`; infeasible points carry their lint codes and cost
``-inf`` under any objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analyze.kernel import static_kernel_cycles
from repro.core.flops import grid_flops
from repro.core.grid import Grid
from repro.errors import CapacityError, ConfigurationError, TuneError
from repro.hardware.device import FPGADevice
from repro.hardware.resources import ResourceVector
from repro.kernel.config import KernelConfig
from repro.kernel.cycle_model import KernelCycleModel
from repro.lint.runner import lint_kernel
from repro.precision.formats import FLOAT64
from repro.precision.resources import precision_kernel_resources
from repro.runtime.session import AdvectionSession
from repro.tune.space import TunePoint

__all__ = ["Evaluation", "CostModel", "OBJECTIVES"]

#: Objective names -> short description (all maximised by the search).
OBJECTIVES: dict[str, str] = {
    "kernel": "sustained kernel-only GFLOPS (Table I/III convention)",
    "end_to_end": "end-to-end GFLOPS including PCIe transfers",
    "efficiency": "end-to-end GFLOPS per watt (Fig. 8 convention)",
}

#: Inter-stage FIFO streams in the Fig. 2 dataflow graph (three wind
#: reads, three source writes, plus the two internal stage links).
_FIFO_STREAMS: int = 8

#: Decimal places kept on every float in reports — byte-stable JSON.
ROUND_DIGITS: int = 6


def _rounded(value: float) -> float:
    return round(float(value), ROUND_DIGITS)


@dataclass(frozen=True)
class Evaluation:
    """Everything the cost model says about one candidate point.

    ``point`` is a :class:`TunePoint` on the FPGA backend; other
    backends store their own point type (duck-typed: ``key()``,
    ``to_dict()``, ``num_kernels``, and a total order).
    """

    point: Any
    feasible: bool
    reject_codes: tuple[str, ...] = ()
    reject_reason: str = ""
    kernel_gflops: float = 0.0
    end_to_end_gflops: float = 0.0
    gflops_per_watt: float = 0.0
    kernel_seconds: float = 0.0
    runtime_seconds: float = 0.0
    transfer_seconds: float = 0.0
    watts: float = 0.0
    utilisation: float = 0.0
    utilisation_by_axis: dict[str, float] = field(default_factory=dict)
    clock_mhz: float = 0.0
    memory_bound: bool = False
    analytic_cycles: int = 0
    #: Proved invocation cycle bound from the static verifier
    #: (:func:`repro.analyze.static_kernel_cycles`); 0 when infeasible.
    static_cycles: int = 0

    def objective(self, name: str) -> float:
        """Scalar score under ``name`` (``-inf`` when infeasible)."""
        if name not in OBJECTIVES:
            raise TuneError(
                f"unknown objective {name!r}; known: {sorted(OBJECTIVES)}"
            )
        if not self.feasible:
            return float("-inf")
        if name == "kernel":
            return self.kernel_gflops
        if name == "end_to_end":
            return self.end_to_end_gflops
        return self.gflops_per_watt

    def sort_key(self, objective: str) -> tuple:
        """Total deterministic order: objective, then compute headroom.

        Ties on the objective are broken toward the configuration with
        the larger theoretical compute peak (replicas x clock) — prefer
        the deployment with headroom — and finally by the canonical
        point order so the ranking is a total order.
        """
        return (
            self.objective(objective),
            self.point.num_kernels * self.clock_mhz,
            self.point,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "point": self.point.to_dict(),
            "key": self.point.key(),
            "feasible": self.feasible,
            "reject_codes": list(self.reject_codes),
            "reject_reason": self.reject_reason,
            "kernel_gflops": _rounded(self.kernel_gflops),
            "end_to_end_gflops": _rounded(self.end_to_end_gflops),
            "gflops_per_watt": _rounded(self.gflops_per_watt),
            "kernel_seconds": _rounded(self.kernel_seconds),
            "runtime_seconds": _rounded(self.runtime_seconds),
            "transfer_seconds": _rounded(self.transfer_seconds),
            "watts": _rounded(self.watts),
            "utilisation": _rounded(self.utilisation),
            "utilisation_by_axis": {
                axis: _rounded(value)
                for axis, value in sorted(self.utilisation_by_axis.items())
            },
            "clock_mhz": _rounded(self.clock_mhz),
            "memory_bound": self.memory_bound,
            "analytic_cycles": self.analytic_cycles,
            "static_cycles": self.static_cycles,
        }


def _infeasible(point: Any, codes: tuple[str, ...],
                reason: str) -> Evaluation:
    return Evaluation(point=point, feasible=False, reject_codes=codes,
                      reject_reason=reason)


class CostModel:
    """Lint-gated analytic pricing of tune points on one device."""

    def __init__(self, device: FPGADevice, grid: Grid, *,
                 flops_scale: float = 1.0) -> None:
        if not flops_scale > 0:
            raise TuneError(
                f"flops_scale must be > 0, got {flops_scale}")
        self.device = device
        self.grid = grid
        #: Operation intensity relative to the advection kernel the
        #: pricing models assume (scenario kernels stream cells at the
        #: same rate but issue a different per-cell op count, so their
        #: GFLOPS axes re-scale by this ratio).
        self.flops_scale = flops_scale
        self._flops = round(grid_flops(grid) * flops_scale)

    # -- feasibility ---------------------------------------------------------

    def _resources(self, point: TunePoint) -> ResourceVector:
        """Fabric one replica occupies: precision-scaled kernel + FIFOs.

        The base estimate uses float64 storage words so the precision
        scaling is applied exactly once (``config.buffer_bytes`` already
        tracks ``word_bytes``; feeding a narrow-word config into the
        precision scaler would shrink the buffers twice).
        """
        config = KernelConfig(
            grid=self.grid, chunk_width=point.chunk_width,
            stream_depth=point.stream_depth, word_bytes=8)
        kernel = precision_kernel_resources(config, self.device,
                                            point.format)
        fifo_bytes = (point.stream_depth * point.word_bytes
                      * _FIFO_STREAMS * self.grid.nz)
        if self.device.family == "xilinx":
            return kernel + ResourceVector(bram_bytes=fifo_bytes)
        return kernel + ResourceVector(m20k_bytes=fifo_bytes)

    def lint_gate(self, point: TunePoint) -> tuple[str, ...]:
        """Error codes the linter raises for this point (empty = pass)."""
        config = point.config(self.grid)
        report = lint_kernel(config, self.device, point.num_kernels)
        codes = tuple(sorted({d.code for d in report.errors}))
        if codes:
            return codes
        if point.precision != "float64":
            # The linter budgets the float64 kernel; re-check the fit
            # with the precision-scaled footprint (never *less* fits).
            usage = self.device.shell + self._resources(point).scaled(
                point.num_kernels)
            if not usage.fits_in(self.device.capacity):
                return ("RS201",)
        if point.memory not in self.device.memories:
            return ("TN001",)
        data_bytes = config.bytes_per_cell_cycle * self.grid.num_cells
        if not self.device.memories[point.memory].fits(data_bytes):
            return ("RS204",)
        return ()

    # -- pricing -------------------------------------------------------------

    def evaluate(self, point: TunePoint) -> Evaluation:
        """Price one point, or reject it with the linter's codes."""
        codes = self.lint_gate(point)
        if codes:
            return _infeasible(
                point, codes,
                f"rejected by lint gate ({', '.join(codes)})")
        config = point.config(self.grid)
        try:
            invocation = self.device.invocation(
                config, self.grid, num_kernels=point.num_kernels,
                memory=point.memory)
            session = AdvectionSession(
                self.device, config, num_kernels=point.num_kernels,
                memory=point.memory, x_chunks=point.x_chunks)
            run = session.run(self.grid, overlapped=point.overlapped)
        except (CapacityError, ConfigurationError) as error:
            return _infeasible(point, ("TN002",), str(error))

        usage = self.device.shell + self._resources(point).scaled(
            point.num_kernels)
        by_axis = usage.utilisation(self.device.capacity)
        cycles = KernelCycleModel(config).cycles()
        return Evaluation(
            point=point,
            feasible=True,
            kernel_gflops=invocation.gflops(self.grid) * self.flops_scale,
            end_to_end_gflops=run.gflops * self.flops_scale,
            gflops_per_watt=run.gflops_per_watt * self.flops_scale,
            kernel_seconds=invocation.seconds,
            runtime_seconds=run.runtime_seconds,
            transfer_seconds=run.transfer_seconds,
            watts=run.average_watts,
            utilisation=max(by_axis.values(), default=0.0),
            utilisation_by_axis=by_axis,
            clock_mhz=invocation.clock_hz / 1e6,
            memory_bound=invocation.memory_bound,
            analytic_cycles=cycles,
            static_cycles=static_kernel_cycles(config),
        )

    def describe(self) -> dict[str, Any]:
        """Context block for reports (device, grid, model constants)."""
        return {
            "device": self.device.name,
            "family": self.device.family,
            "grid": {"nx": self.grid.nx, "ny": self.grid.ny,
                     "nz": self.grid.nz},
            "cells": self.grid.num_cells,
            "flops": self._flops,
            "flops_scale": self.flops_scale,
            "float64_identity": point_identity_check(self),
        }


def point_identity_check(model: CostModel) -> bool:
    """float64 resource scaling must be the identity (sanity anchor)."""
    config = TunePoint(
        chunk_width=min(64, max(2, model.grid.ny)), num_kernels=1,
        stream_depth=4, precision="float64",
        memory=model.device.memory_preference[0]
        if model.device.memory_preference[0] in model.device.memories
        else sorted(model.device.memories)[0],
        x_chunks=16, overlapped=True,
    ).config(model.grid)
    return precision_kernel_resources(
        config, model.device, FLOAT64) == model.device.kernel_resources(config)
