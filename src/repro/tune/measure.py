"""Measured refinement: re-score top analytic candidates by simulation.

The analytic tier prices a candidate with the closed-form
:class:`~repro.kernel.cycle_model.KernelCycleModel`.  This tier replays
the top-K candidates through the cycle-accurate engine's batched exact
mode (``DataflowEngine(mode="exact", batched=True)`` under
:func:`~repro.kernel.simulate.simulate_kernel`) and records the
analytic-versus-measured cycle error, so a tuning report carries its own
error bars — if a model change ever breaks the closed form, the tuner
is the first place it shows.  Batched exact costs about the same wall
time as the old fast mode on proxy grids but reports the bit-exact
stall/stats profile, not just matching cycle counts.

Simulation cost scales with cells, so candidates are measured on a
*proxy grid*: the tuned chunk geometry is preserved exactly (NY is never
shrunk below what exercises the seam pattern) while NX is capped —
the cycle model is linear in NX, so the relative error transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analyze.kernel import static_kernel_cycles
from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.kernel.cycle_model import KernelCycleModel
from repro.kernel.simulate import simulate_kernel
from repro.tune.cost import Evaluation, _rounded
from repro.tune.space import TunePoint

__all__ = ["MeasuredResult", "measure_candidates"]

#: NX cap of the proxy grid (the cycle model is linear in NX).
_PROXY_NX: int = 8

#: NY cap: keep at least two seams when the tuned chunking has them.
_PROXY_NY: int = 96

#: NZ cap (column height drives the fill fraction; 32 keeps it honest).
_PROXY_NZ: int = 32


@dataclass(frozen=True)
class MeasuredResult:
    """Analytic-vs-simulated comparison for one candidate."""

    point: TunePoint
    proxy_cells: int
    analytic_cycles: int
    measured_cycles: int
    relative_error: float
    measured_seconds: float
    #: Proved cycle bound from the static verifier on the proxy config.
    static_cycles: int = 0
    #: |static - measured| / measured — asserted tiny in the tests: the
    #: static bound is a proof about the control machine, so any gap is
    #: data-path behaviour the unit-rate abstraction cannot see.
    static_error: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "point": self.point.to_dict(),
            "key": self.point.key(),
            "proxy_cells": self.proxy_cells,
            "analytic_cycles": self.analytic_cycles,
            "measured_cycles": self.measured_cycles,
            "relative_error": _rounded(self.relative_error),
            "measured_seconds": _rounded(self.measured_seconds),
            "static_cycles": self.static_cycles,
            "static_error": _rounded(self.static_error),
        }


def proxy_grid(grid: Grid, point: TunePoint) -> Grid:
    """A small grid preserving the candidate's chunk-seam pattern."""
    ny = min(grid.ny, max(_PROXY_NY, min(grid.ny, 3 * point.chunk_width)))
    return Grid(nx=min(grid.nx, _PROXY_NX), ny=ny,
                nz=min(grid.nz, _PROXY_NZ))


def measure_one(evaluation: Evaluation, grid: Grid, *, seed: int,
                clock_hz: float) -> MeasuredResult:
    """Simulate one candidate on its proxy grid (batched exact mode)."""
    point = evaluation.point
    proxy = proxy_grid(grid, point)
    config = point.config(proxy)
    fields = random_wind(proxy, seed=seed)
    result = simulate_kernel(config, fields, mode="exact", batched=True)
    analytic = KernelCycleModel(config).cycles()
    static = static_kernel_cycles(config)
    measured = result.total_cycles
    error = (abs(analytic - measured) / measured) if measured else float("inf")
    static_error = (abs(static - measured) / measured) if measured \
        else float("inf")
    return MeasuredResult(
        point=point,
        proxy_cells=proxy.num_cells,
        analytic_cycles=analytic,
        measured_cycles=measured,
        relative_error=error,
        measured_seconds=result.runtime_seconds(clock_hz),
        static_cycles=static,
        static_error=static_error,
    )


def measure_candidates(candidates: list[Evaluation], grid: Grid, *,
                       seed: int) -> list[MeasuredResult]:
    """Measure each candidate (deterministic per-candidate seeds)."""
    out = []
    for rank, evaluation in enumerate(candidates):
        out.append(measure_one(
            evaluation, grid, seed=seed + rank,
            clock_hz=evaluation.clock_mhz * 1e6))
    return out
