"""repro.tune: design-space exploration and autotuning.

The subsystem that automates what the paper's authors did by hand:
pick a chunk width, replica count, FIFO depth, number format, memory
space and host schedule for a device, trading sustained GFLOPS against
fabric utilisation and watts.  See :mod:`repro.tune.space` for the
parameter space, :mod:`repro.tune.cost` for the lint-gated analytic
cost model, :mod:`repro.tune.strategies` for the seeded searches,
:mod:`repro.tune.pareto` for frontier extraction,
:mod:`repro.tune.measure` for the simulation-backed refinement tier,
:mod:`repro.tune.tuner` for the orchestration entry point, and
:mod:`repro.tune.admission` for the per-job quotes the serving layer's
admission controller prices deadlines with.
"""

from repro.tune.admission import (EXACT_TELEMETRY_OUT_SCALE, JobQuote,
                                  SERVE_MODES, out_scale_for_mode, quote_job,
                                  serve_config, serve_session)
from repro.tune.cache import EvaluationCache
from repro.tune.cost import OBJECTIVES, CostModel, Evaluation
from repro.tune.measure import MeasuredResult, measure_candidates
from repro.tune.pareto import (dominates, efficiency_ratio,
                               improvement_ratio, pareto_front)
from repro.tune.space import PRECISION_FORMATS, ParameterSpace, TunePoint
from repro.tune.strategies import (STRATEGIES, AnnealingSearch,
                                   ExhaustiveSearch, GreedySearch,
                                   SearchStrategy, make_strategy)
from repro.tune.tuner import TuneReport, render_text, tune

__all__ = [
    "AnnealingSearch",
    "CostModel",
    "EXACT_TELEMETRY_OUT_SCALE",
    "Evaluation",
    "EvaluationCache",
    "ExhaustiveSearch",
    "GreedySearch",
    "JobQuote",
    "SERVE_MODES",
    "MeasuredResult",
    "OBJECTIVES",
    "PRECISION_FORMATS",
    "ParameterSpace",
    "STRATEGIES",
    "SearchStrategy",
    "TunePoint",
    "TuneReport",
    "dominates",
    "efficiency_ratio",
    "improvement_ratio",
    "make_strategy",
    "measure_candidates",
    "out_scale_for_mode",
    "pareto_front",
    "quote_job",
    "render_text",
    "serve_config",
    "serve_session",
    "tune",
]
