"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish configuration mistakes from simulation-time faults.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "GridError",
    "DataflowError",
    "StreamError",
    "GraphError",
    "ShiftBufferError",
    "PortConflictError",
    "ChunkingError",
    "ResourceError",
    "CapacityError",
    "ScheduleError",
    "CalibrationError",
    "ExperimentError",
    "LintError",
    "AnalyzeError",
    "FaultError",
    "TransferError",
    "RetryExhaustedError",
    "WatchdogTimeout",
    "ReplicaLostError",
    "CheckpointError",
    "TuneError",
    "BackendError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class GridError(ConfigurationError):
    """A grid geometry is malformed (non-positive sizes, halo too large...)."""


class DataflowError(ReproError):
    """Base class for dataflow-machine simulation errors."""


class StreamError(DataflowError):
    """Illegal stream operation (pop from empty, push to full FIFO...)."""


class GraphError(DataflowError):
    """The dataflow graph is malformed (unconnected port, cycle, ...)."""


class ShiftBufferError(DataflowError):
    """Shift-buffer misuse (feeding out of order, reading before primed).

    A :class:`DataflowError` subclass: the shift buffer is a dataflow
    stage's internal machine, and callers of the engine layer catch its
    failures (e.g. a mis-shaped block fed to ``Buffer3D.feed_block``)
    under the dataflow family.
    """


class PortConflictError(ShiftBufferError):
    """More memory-port accesses in one cycle than the RAM provides."""


class ChunkingError(ReproError):
    """Invalid chunk plan (chunk narrower than the stencil, bad overlap)."""


class ResourceError(ReproError):
    """A design does not fit on the targeted device resources."""


class CapacityError(ResourceError):
    """A buffer allocation exceeds a memory space's capacity."""


class ScheduleError(ReproError):
    """The host runtime schedule is inconsistent (dependency cycle, ...)."""


class CalibrationError(ReproError):
    """A calibration table lookup failed or produced nonsense."""


class ExperimentError(ReproError):
    """An experiment was asked to run with unsupported parameters."""


class LintError(ReproError):
    """A lint pass failed: error diagnostics, or an unreadable design spec."""


class AnalyzeError(ReproError):
    """Static dataflow analysis failed (malformed graph, diverging model)."""


class FaultError(ReproError):
    """Base class for runtime faults (injected or real) and their recovery.

    Everything the resilience layer raises derives from this class, so a
    host loop can catch the whole family while still telling a failed
    transfer from a lost replica.  The chaos invariant is stated in these
    terms: a faulted run either completes bit-identical to the fault-free
    golden output or raises a typed :class:`ReproError` within its
    watchdog budget.
    """


class TransferError(FaultError):
    """A PCIe transfer failed (DMA error, dropped completion, bad CRC)."""


class RetryExhaustedError(FaultError):
    """An operation kept failing until its retry budget ran out."""


class WatchdogTimeout(FaultError):
    """A watchdog budget (cycles or seconds) elapsed without completion."""


class ReplicaLostError(FaultError):
    """A kernel replica (or rank) died and no survivor can take its work."""


class CheckpointError(FaultError):
    """A checkpoint could not be taken, restored, or verified."""


class TuneError(ReproError):
    """Design-space exploration failed (bad space, strategy, or cache)."""


class BackendError(ReproError):
    """A hardware backend is unknown, misconfigured, or cannot serve a
    request (e.g. no feasible deployment exists for a scenario)."""
