#!/usr/bin/env python3
"""Design-space exploration: pick a kernel configuration like the paper did.

Sweeps the knobs Section III/IV expose — chunk width, kernel count, memory
space, shift-buffer II — over the U280 and Stratix 10 device models, and
prints the frontier.  This is the reasoning loop an FPGA developer runs
before committing to a multi-hour synthesis: the models make it instant.

Run:  python examples/design_space.py
"""

from repro.core import Grid
from repro.core.flops import grid_flops
from repro.experiments.report import text_table
from repro.hardware import ALVEO_U280, STRATIX10_GX2800
from repro.kernel import KernelConfig
from repro.runtime import AdvectionSession


def sweep_device(device, grid, memories):
    rows = []
    for chunk_width in (8, 16, 64, 256):
        for memory in memories:
            config = KernelConfig(grid=grid, chunk_width=chunk_width)
            kernels = device.max_kernels(config)
            if kernels == 0:
                continue
            session = AdvectionSession(device, config, memory=memory)
            result = session.run(grid, overlapped=True)
            rows.append((
                chunk_width, memory, kernels,
                device.clock.frequency_mhz(kernels),
                result.gflops, result.average_watts,
                result.gflops_per_watt,
            ))
    return rows


def main() -> None:
    grid = Grid.from_cells(16 * 1024 * 1024)
    print(f"problem: {grid.interior_shape} = {grid.num_cells / 1e6:.1f}M "
          f"cells, {grid_flops(grid) / 1e9:.2f} GFLOP per invocation\n")

    headers = ("chunk", "memory", "kernels", "MHz", "GFLOPS", "W", "GFLOPS/W")
    for device, memories in ((ALVEO_U280, ("hbm2", "ddr")),
                             (STRATIX10_GX2800, ("ddr",))):
        rows = sweep_device(device, grid, memories)
        print(text_table(headers, rows, title=device.name))
        best = max(rows, key=lambda r: r[4])
        print(f"-> best: chunk={best[0]}, memory={best[1]}, "
              f"{best[2]} kernels @ {best[3]:.0f} MHz = "
              f"{best[4]:.1f} GFLOPS\n")

    # Also show the resource picture behind the kernel counts.
    config = KernelConfig(grid=grid)
    for device in (ALVEO_U280, STRATIX10_GX2800):
        usage = device.kernel_resources(config)
        util = usage.utilisation(device.capacity)
        busiest = max(util, key=util.get)
        print(f"{device.name}: one kernel uses "
              f"{100 * util[busiest]:.1f}% of {busiest} "
              f"-> {device.max_kernels(config)} kernels fit "
              f"(after the shell and routing derate)")


if __name__ == "__main__":
    main()
