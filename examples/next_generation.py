#!/usr/bin/env python3
"""The paper's §V outlook, made runnable: precision + next-gen hardware.

Three questions the conclusion raises, answered with the models:

1. What does reduced precision *cost* numerically?  (quantised-datapath
   error study against the float64 reference)
2. What does it *buy* on today's chips?  (kernels-per-chip, end-to-end
   GFLOPS with halved traffic, the vanished HBM2->DDR cliff)
3. Where do the announced AI-engine devices (Versal ACAP, Stratix 10 NX)
   land on this kernel's roofline?

Run:  python examples/next_generation.py
"""

from repro.constants import PAPER_GRID_LABELS
from repro.core import Grid, thermal_bubble
from repro.experiments.report import text_table
from repro.hardware import ALVEO_U280, STRATIX10_GX2800
from repro.hardware.versal import STRATIX10_NX_PROJECTION, VERSAL_VC1902
from repro.kernel import KernelConfig
from repro.precision import (
    BFLOAT16,
    FLOAT32,
    FLOAT64,
    precision_error_study,
    precision_fit_report,
)
from repro.runtime import AdvectionSession


def main() -> None:
    # ---- 1. accuracy cost -------------------------------------------------
    study_grid = Grid(nx=16, ny=16, nz=32)
    fields = thermal_bubble(study_grid, updraft=3.0)
    rows = []
    for fmt in (FLOAT64, FLOAT32, BFLOAT16):
        report = precision_error_study(fields, fmt)
        rows.append((report.format_name, report.bits, report.max_abs_error,
                     report.significant_digits))
    print(text_table(("format", "bits", "max abs error", "digits"), rows,
                     precision=3,
                     title="1. Numerical cost of narrow datapaths "
                           "(thermal bubble)"))

    # ---- 2. resource and end-to-end gain on today's FPGAs -------------------
    config = KernelConfig(grid=Grid.from_cells(PAPER_GRID_LABELS["16M"]))
    rows = []
    for device in (ALVEO_U280, STRATIX10_GX2800):
        for fmt in (FLOAT64, FLOAT32):
            fit = precision_fit_report(config, device, fmt)
            rows.append((device.name, fmt.name, fit.kernels_fit,
                         fit.projected_peak_gflops))
    print()
    print(text_table(("device", "format", "kernels fit", "projected peak"),
                     rows, precision=1,
                     title="2a. Kernels per chip vs precision"))

    grid = Grid.from_cells(PAPER_GRID_LABELS["268M"])
    rows = []
    for word_bytes, label in ((8, "float64"), (4, "float32 storage")):
        cfg = KernelConfig(grid=grid, word_bytes=word_bytes)
        result = AdvectionSession(ALVEO_U280, cfg).run(grid, overlapped=True)
        rows.append((label, result.memory, result.gflops,
                     result.gflops_per_watt))
    print()
    print(text_table(("storage", "memory", "GFLOPS", "GFLOPS/W"), rows,
                     precision=2,
                     title="2b. U280 at 268M cells: the DDR cliff vanishes "
                           "with narrow storage"))

    # ---- 3. AI-engine generation -----------------------------------------------
    rows = []
    for proj in (VERSAL_VC1902, STRATIX10_NX_PROJECTION):
        rows.append((proj.name, proj.compute_peak_gflops,
                     proj.attainable_gflops(),
                     "feed" if proj.feed_bound else "compute"))
    print()
    print(text_table(("device", "raw peak", "attainable", "bound by"), rows,
                     precision=0,
                     title="3. SV projection: AI-engine devices on this "
                           "kernel"))
    print("\nThe paper's closing prediction holds in the model: the next "
          "generation is bound by\nfeeding the engines (the shift-buffer "
          "fabric), not by arithmetic — and it closes\nthe gap to (indeed "
          "passes) the V100's 367 GFLOPS kernel rate.")


if __name__ == "__main__":
    main()
