#!/usr/bin/env python3
"""Quickstart: compute PW advection three ways and compare.

1. The vectorised NumPy reference (the scientific ground truth).
2. The functional FPGA kernel (chunked, through the real 3D shift-buffer
   data structures of the paper's Fig. 3).
3. The cycle-accurate dataflow simulation of the full Fig. 2 kernel,
   which also reports cycles, throughput and port pressure.

All three must agree bit for bit; the cycle simulation additionally shows
the machine running at initiation interval 1.

Run:  python examples/quickstart.py
"""

from repro.core import (
    AdvectionCoefficients,
    Grid,
    advect_reference,
    thermal_bubble,
)
from repro.kernel import KernelConfig, KernelCycleModel, simulate_kernel
from repro.kernel.functional import execute_shiftbuffer
from repro.perf.theoretical import percent_of_theoretical, theoretical_gflops


def main() -> None:
    # A small grid so the cycle-accurate path finishes instantly; the MONC
    # default column height is 64, here we shrink everything.
    grid = Grid(nx=8, ny=12, nz=8)
    fields = thermal_bubble(grid)
    coeffs = AdvectionCoefficients.isothermal(grid)
    config = KernelConfig(grid=grid, chunk_width=4)

    print(f"grid: {grid.interior_shape} = {grid.num_cells} cells, "
          f"{config.chunk_plan().num_chunks} Y-chunks of width "
          f"{config.chunk_width}")

    # --- 1. reference ------------------------------------------------------
    reference = advect_reference(fields, coeffs)
    print(f"reference: |su|max = {abs(reference.su).max():.3e}")

    # --- 2. functional shift-buffer execution -------------------------------
    functional = execute_shiftbuffer(config, fields, coeffs)
    print("shift-buffer execution matches reference:",
          functional.max_abs_difference(reference) == 0.0)

    # --- 3. cycle-accurate dataflow simulation ------------------------------
    sim = simulate_kernel(config, fields, coeffs)
    print("cycle simulation matches reference:   ",
          sim.sources.max_abs_difference(reference) == 0.0)
    print(f"simulated cycles: {sim.total_cycles} "
          f"({sim.cells_per_cycle:.2f} cells/cycle)")
    print(f"closed-form model: {KernelCycleModel(config).cycles()} cycles "
          f"(must match the simulator exactly)")
    print(f"on-chip port pressure: max "
          f"{sim.port_tracker.worst_case} accesses/cycle "
          f"(dual-ported BRAM allows 2)")

    # --- the paper's performance yardstick -----------------------------------
    peak = theoretical_gflops(300.0, column_height=grid.nz)
    runtime = sim.runtime_seconds(300e6)
    from repro.core.flops import grid_flops

    achieved = grid_flops(grid) / runtime / 1e9
    print(f"\nat 300 MHz this run would take {runtime * 1e6:.1f} us: "
          f"{achieved:.2f} GFLOPS "
          f"= {percent_of_theoretical(achieved, 300.0, column_height=grid.nz):.0f}% "
          f"of the {peak:.2f} GFLOPS theoretical peak")
    print("(small grids pay pipeline fill; paper-scale grids reach >95%)")


if __name__ == "__main__":
    main()
