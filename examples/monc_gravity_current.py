#!/usr/bin/env python3
"""A MONC-style scenario: advecting a gravity-current outflow in time.

This example runs the kind of workload the paper's introduction motivates:
a Large-Eddy-Simulation-style wind field integrated forward in time, with
the advection source terms computed each step — here by the *simulated
FPGA kernel* (the chunked functional path with the paper's Y chunking),
exactly as MONC would call the accelerator once per timestep.

It prints per-step diagnostics (momentum, max wind, CFL) and finishes
with the conservation drift over the whole run.

Run:  python examples/monc_gravity_current.py
"""

import numpy as np

from repro.core import (
    AdvectionCoefficients,
    AdvectionIntegrator,
    Grid,
    gravity_current,
)
from repro.hardware import ALVEO_U280
from repro.kernel import KernelConfig
from repro.runtime import AdvectionSession


def main() -> None:
    grid = Grid(nx=24, ny=24, nz=32, dx=200.0, dy=200.0, dz=100.0)
    coeffs = AdvectionCoefficients.isothermal(grid)
    config = KernelConfig(grid=grid, chunk_width=8)

    # The "device": an Alveo U280 session whose functional execution stands
    # in for launching the real kernel each timestep.
    session = AdvectionSession(ALVEO_U280, config)

    integrator = AdvectionIntegrator(
        fields=gravity_current(grid, head_speed=6.0),
        dt=1.0,
        coeffs=coeffs,
        advect=lambda fields: session.execute(fields, coeffs),
    )

    m0 = integrator.fields.momentum()
    print(f"grid {grid.interior_shape}, dt={integrator.dt}s, "
          f"initial CFL={integrator.cfl_number():.3f}")
    print(f"{'step':>4} {'time':>6} {'max wind':>9} {'max source':>11} "
          f"{'u-momentum':>12}")

    for _ in range(20):
        rec = integrator.step()
        if rec.step % 4 == 0 or rec.step == 1:
            print(f"{rec.step:>4} {rec.time:>6.1f} {rec.max_speed:>9.3f} "
                  f"{rec.max_source:>11.3e} {rec.momentum[0]:>12.1f}")

    m1 = integrator.fields.momentum()
    # Normalise by a momentum scale (initial components can be ~0 by
    # symmetry, e.g. the sinusoidal w field sums to zero).
    scale = max(abs(v) for v in m0) + 1e-30
    drift = [abs(a - b) / scale for a, b in zip(m0, m1)]
    print(f"\nmomentum drift over {integrator.steps_taken} steps "
          f"(relative to the initial u-momentum scale): "
          f"u={drift[0]:.2e}, v={drift[1]:.2e}, w={drift[2]:.2e}")

    # What would this cost on the modelled device, per timestep?
    result = session.run(grid, overlapped=True)
    print(f"\nmodelled per-step cost on {result.device}: "
          f"{result.runtime_seconds * 1e3:.2f} ms "
          f"({result.gflops:.1f} GFLOPS overall, "
          f"{result.average_watts:.0f} W, memory={result.memory})")

    assert np.all(np.isfinite(integrator.fields.u))


if __name__ == "__main__":
    main()
