#!/usr/bin/env python3
"""Visualise the paper's transfer/compute overlap as an ASCII timeline.

Builds the Fig. 5 (sequential) and Fig. 6 (overlapped, event-chained)
schedules for a 16M-cell problem on the Alveo U280 model and renders each
engine's activity over time, making it obvious *why* overlap transforms
end-to-end performance.

Run:  python examples/overlap_pipeline.py
"""

from repro.core import Grid
from repro.hardware import ALVEO_U280
from repro.kernel import KernelConfig
from repro.runtime import AdvectionSession
from repro.runtime.gantt import render_gantt


def render(schedule, title: str) -> None:
    print()
    print(render_gantt(schedule, width=88, title=title))


def main() -> None:
    grid = Grid.from_cells(16 * 1024 * 1024)
    config = KernelConfig(grid=grid)
    session = AdvectionSession(ALVEO_U280, config, x_chunks=8)

    sequential = session.run(grid, overlapped=False)
    overlapped = session.run(grid, overlapped=True)

    render(sequential.schedule,
           "Fig. 5 style: synchronous write -> execute -> read")
    render(overlapped.schedule,
           "Fig. 6 style: chunked, event-chained, bulk-registered")

    print(f"\nsequential: {sequential.gflops:6.2f} GFLOPS "
          f"(transfer busy {sequential.transfer_seconds * 1e3:.0f} ms, "
          f"kernel busy {sequential.kernel_seconds * 1e3:.0f} ms)")
    print(f"overlapped: {overlapped.gflops:6.2f} GFLOPS "
          f"(transfer busy {overlapped.transfer_seconds * 1e3:.0f} ms, "
          f"kernel busy {overlapped.kernel_seconds * 1e3:.0f} ms)")
    print(f"speedup from overlap: "
          f"{overlapped.gflops / sequential.gflops:.2f}x")
    print("\nNote how the kernel row is fully hidden inside the H2D stream "
          "in the overlapped schedule: the advection kernel is PCIe-bound "
          "end to end, the paper's core observation in Section IV.")


if __name__ == "__main__":
    main()
