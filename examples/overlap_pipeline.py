#!/usr/bin/env python3
"""Visualise the paper's transfer/compute overlap as an ASCII timeline.

Builds the Fig. 5 (sequential) and Fig. 6 (overlapped, event-chained)
schedules for a 16M-cell problem on the Alveo U280 model and renders each
engine's activity over time, making it obvious *why* overlap transforms
end-to-end performance.

Besides the ASCII view, the overlapped run is also exported as a
Chrome/Perfetto trace (``overlap_pipeline_trace.json``) together with a
cycle-level engine trace of a small kernel simulation — load the file at
https://ui.perfetto.dev to scrub through both timelines interactively.

Run:  python examples/overlap_pipeline.py
"""

from repro.core import Grid
from repro.core.wind import random_wind
from repro.hardware import ALVEO_U280
from repro.kernel import KernelConfig
from repro.kernel.simulate import simulate_kernel
from repro.observe import Tracer, write_trace
from repro.runtime import AdvectionSession
from repro.runtime.gantt import render_gantt


def render(schedule, title: str) -> None:
    print()
    print(render_gantt(schedule, width=88, title=title))


def main() -> None:
    grid = Grid.from_cells(16 * 1024 * 1024)
    config = KernelConfig(grid=grid)
    session = AdvectionSession(ALVEO_U280, config, x_chunks=8)

    sequential = session.run(grid, overlapped=False)
    overlapped = session.run(grid, overlapped=True)

    render(sequential.schedule,
           "Fig. 5 style: synchronous write -> execute -> read")
    render(overlapped.schedule,
           "Fig. 6 style: chunked, event-chained, bulk-registered")

    print(f"\nsequential: {sequential.gflops:6.2f} GFLOPS "
          f"(transfer busy {sequential.transfer_seconds * 1e3:.0f} ms, "
          f"kernel busy {sequential.kernel_seconds * 1e3:.0f} ms)")
    print(f"overlapped: {overlapped.gflops:6.2f} GFLOPS "
          f"(transfer busy {overlapped.transfer_seconds * 1e3:.0f} ms, "
          f"kernel busy {overlapped.kernel_seconds * 1e3:.0f} ms)")
    print(f"speedup from overlap: "
          f"{overlapped.gflops / sequential.gflops:.2f}x")
    print("\nNote how the kernel row is fully hidden inside the H2D stream "
          "in the overlapped schedule: the advection kernel is PCIe-bound "
          "end to end, the paper's core observation in Section IV.")

    # Merged Perfetto export: the host schedule above plus a cycle-level
    # engine trace of a small simulated kernel run on shared tracks.
    small = Grid(nx=16, ny=16, nz=16)
    tracer = Tracer()
    simulate_kernel(KernelConfig(grid=small),
                    random_wind(small, seed=7, magnitude=2.0),
                    tracer=tracer)
    clock_mhz = ALVEO_U280.clock.frequency_mhz(overlapped.num_kernels)
    path = write_trace("overlap_pipeline_trace.json", tracer,
                       overlapped.schedule,
                       process_name="u280-overlap-example",
                       cycle_time_us=1.0 / clock_mhz)
    print(f"\nwrote {path} - open it at https://ui.perfetto.dev "
          f"(engine spans in pid 1, schedule events in pid 2)")


if __name__ == "__main__":
    main()
