"""Property tests: BenchRecord/BenchSuite survive a to_dict round-trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.perf.bench import BenchRecord, BenchSuite, SCHEMA_VERSION

names = st.text(st.characters(codec="utf-8", exclude_categories=("Cs",)),
                min_size=1, max_size=30)
json_scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e9, max_value=1e9),
    st.text(max_size=20),
)
records = st.builds(
    BenchRecord,
    name=names,
    wall_seconds=st.floats(min_value=1e-6, max_value=1e6,
                           allow_nan=False),
    cycles=st.integers(min_value=0, max_value=10**12),
    cells=st.integers(min_value=0, max_value=10**9),
    mode=st.sampled_from(["exact", "fast"]),
    extra=st.dictionaries(names, json_scalars, max_size=4),
)
suites = st.builds(
    BenchSuite,
    records=st.lists(records, max_size=6),
    context=st.dictionaries(names, json_scalars, max_size=4),
)


@settings(max_examples=60, deadline=None)
@given(records)
def test_record_round_trips(record):
    clone = BenchRecord.from_dict(record.to_dict())
    assert clone == record


@settings(max_examples=60, deadline=None)
@given(suites)
def test_suite_round_trips(suite):
    clone = BenchSuite.from_dict(suite.to_dict())
    assert clone.context == suite.context
    assert clone.records == suite.records


@settings(max_examples=60, deadline=None)
@given(suites)
def test_suite_dict_carries_schema(suite):
    assert suite.to_dict()["schema"] == SCHEMA_VERSION


def test_wrong_schema_rejected():
    data = BenchSuite(records=[]).to_dict()
    data["schema"] = SCHEMA_VERSION + 1
    with pytest.raises(ConfigurationError, match="schema"):
        BenchSuite.from_dict(data)
