"""The paper's theoretical-performance metric."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.theoretical import percent_of_theoretical, theoretical_gflops


class TestTheoreticalGflops:
    def test_paper_values(self):
        assert theoretical_gflops(300.0) == pytest.approx(18.8625)
        assert theoretical_gflops(398.0) == pytest.approx(25.02425)

    def test_scales_with_kernels(self):
        assert theoretical_gflops(300.0, num_kernels=6) == pytest.approx(
            6 * 18.8625)

    def test_column_height_matters(self):
        # A taller column has fewer top cells per column: higher average.
        assert theoretical_gflops(300.0, column_height=128) > \
            theoretical_gflops(300.0, column_height=32)

    def test_infinite_column_limit(self):
        # As columns grow, the average tends to 63 ops/cycle.
        assert theoretical_gflops(300.0, column_height=100_000) == \
            pytest.approx(63 * 0.3, rel=1e-4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theoretical_gflops(0.0)
        with pytest.raises(ConfigurationError):
            theoretical_gflops(300.0, num_kernels=0)


class TestPercentOfTheoretical:
    def test_paper_percentages(self):
        assert percent_of_theoretical(14.50, 300.0) == pytest.approx(76.9,
                                                                     abs=0.1)
        assert percent_of_theoretical(20.8, 398.0) == pytest.approx(83.1,
                                                                    abs=0.1)

    def test_hundred_percent(self):
        peak = theoretical_gflops(300.0)
        assert percent_of_theoretical(peak, 300.0) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            percent_of_theoretical(-1.0, 300.0)
