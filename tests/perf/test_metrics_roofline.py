"""Metric containers, paper comparisons, and the roofline helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.metrics import KernelMetrics, compare_to_paper
from repro.perf.roofline import RooflinePoint, arithmetic_intensity, roofline_gflops


class TestKernelMetrics:
    def test_efficiency_derived(self):
        m = KernelMetrics(device="x", grid_cells=100, gflops=10.0,
                          runtime_seconds=1.0, watts=50.0)
        assert m.gflops_per_watt == pytest.approx(0.2)

    def test_efficiency_none_without_watts(self):
        m = KernelMetrics(device="x", grid_cells=100, gflops=10.0,
                          runtime_seconds=1.0)
        assert m.gflops_per_watt is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            KernelMetrics(device="x", grid_cells=1, gflops=-1.0,
                          runtime_seconds=1.0)


class TestPaperComparison:
    def test_ratio_and_error(self):
        c = compare_to_paper("x", measured=11.0, paper=10.0)
        assert c.ratio == pytest.approx(1.1)
        assert c.percent_error == pytest.approx(10.0)
        assert c.within(10.01)
        assert not c.within(9.0)

    def test_zero_paper_value_rejected(self):
        with pytest.raises(ConfigurationError):
            _ = compare_to_paper("x", 1.0, 0.0).ratio

    def test_str_contains_both_values(self):
        text = str(compare_to_paper("thing", 1.5, 2.0))
        assert "thing" in text and "1.5" in text and "2" in text


class TestRoofline:
    def test_advection_intensity_is_low(self):
        """~1.3 FLOP/byte end-to-end: transfer-bound on every device."""
        assert arithmetic_intensity() == pytest.approx(62.875 / 48.0)

    def test_one_directional_intensity(self):
        assert arithmetic_intensity(bytes_per_cell=24.0) == pytest.approx(
            62.875 / 24.0)

    def test_roofline_min(self):
        assert roofline_gflops(compute_peak_gflops=100.0, bandwidth_gbs=10.0,
                               intensity=1.3) == pytest.approx(13.0)
        assert roofline_gflops(compute_peak_gflops=5.0, bandwidth_gbs=10.0,
                               intensity=1.3) == pytest.approx(5.0)

    def test_point_bandwidth_bound_detection(self):
        point = RooflinePoint(device="x", compute_peak_gflops=100.0,
                              bandwidth_gbs=10.0, intensity=1.3)
        assert point.bandwidth_bound
        assert point.attainable_gflops == pytest.approx(13.0)

    def test_every_paper_device_is_pcie_bound_end_to_end(self):
        """The structural conclusion of Figs. 5/6: with 48 B/cell over
        PCIe, even ~13 GB/s caps out below any device's kernel rate."""
        intensity = arithmetic_intensity()
        for peak, pcie_gbs in [(87.0, 13.0), (60.0, 12.0), (367.2, 15.0)]:
            point = RooflinePoint(device="d", compute_peak_gflops=peak,
                                  bandwidth_gbs=pcie_gbs,
                                  intensity=intensity)
            assert point.bandwidth_bound

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            arithmetic_intensity(bytes_per_cell=0.0)
        with pytest.raises(ConfigurationError):
            roofline_gflops(compute_peak_gflops=0.0, bandwidth_gbs=1.0,
                            intensity=1.0)
