"""Property tests: the roofline identity and the calibration registry.

The roofline model has one defining identity — attainable performance is
``min(compute peak, intensity x bandwidth)`` — and one structural
consequence: the bound classification flips exactly at the ridge point
``peak / bandwidth``.  Example-based tests check a few handpicked
devices; these properties check the identity over the whole input space.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.perf.calibration import CALIBRATION, paper_value
from repro.perf.roofline import (RooflinePoint, arithmetic_intensity,
                                 roofline_gflops)

positive = st.floats(min_value=1e-3, max_value=1e6,
                     allow_nan=False, allow_infinity=False)


class TestRooflineIdentity:
    @settings(max_examples=200, deadline=None)
    @given(peak=positive, bandwidth=positive, intensity=positive)
    def test_attainable_is_min_of_ceilings(self, peak, bandwidth,
                                           intensity):
        point = RooflinePoint(device="p", compute_peak_gflops=peak,
                              bandwidth_gbs=bandwidth, intensity=intensity)
        assert point.attainable_gflops == min(peak, intensity * bandwidth)
        assert point.attainable_gflops == roofline_gflops(
            compute_peak_gflops=peak, bandwidth_gbs=bandwidth,
            intensity=intensity)

    @settings(max_examples=200, deadline=None)
    @given(peak=positive, bandwidth=positive, intensity=positive)
    def test_attainable_never_exceeds_either_ceiling(self, peak, bandwidth,
                                                     intensity):
        attainable = roofline_gflops(compute_peak_gflops=peak,
                                     bandwidth_gbs=bandwidth,
                                     intensity=intensity)
        assert 0 < attainable <= peak
        assert attainable <= intensity * bandwidth

    @settings(max_examples=200, deadline=None)
    @given(peak=positive, bandwidth=positive, intensity=positive)
    def test_classification_flips_at_ridge_point(self, peak, bandwidth,
                                                 intensity):
        point = RooflinePoint(device="p", compute_peak_gflops=peak,
                              bandwidth_gbs=bandwidth, intensity=intensity)
        ridge = peak / bandwidth
        if intensity < ridge:
            assert point.bandwidth_bound
            assert point.attainable_gflops == intensity * bandwidth
        else:
            assert not point.bandwidth_bound
            assert point.attainable_gflops == peak

    @settings(max_examples=100, deadline=None)
    @given(peak=positive, bandwidth=positive,
           low=positive, high=positive)
    def test_attainable_monotone_in_intensity(self, peak, bandwidth,
                                              low, high):
        lo, hi = sorted((low, high))
        assert roofline_gflops(
            compute_peak_gflops=peak, bandwidth_gbs=bandwidth,
            intensity=lo,
        ) <= roofline_gflops(
            compute_peak_gflops=peak, bandwidth_gbs=bandwidth,
            intensity=hi,
        )

    @settings(max_examples=100, deadline=None)
    @given(column_height=st.integers(min_value=2, max_value=4096),
           low=positive, high=positive)
    def test_intensity_monotone_in_traffic(self, column_height, low, high):
        lo, hi = sorted((low, high))
        assert arithmetic_intensity(
            column_height=column_height, bytes_per_cell=hi,
        ) <= arithmetic_intensity(
            column_height=column_height, bytes_per_cell=lo,
        )

    @settings(max_examples=60, deadline=None)
    @given(bad=st.floats(max_value=0.0, allow_nan=False))
    def test_non_positive_inputs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            arithmetic_intensity(bytes_per_cell=bad)
        with pytest.raises(ConfigurationError):
            roofline_gflops(compute_peak_gflops=bad, bandwidth_gbs=1.0,
                            intensity=1.0)
        with pytest.raises(ConfigurationError):
            roofline_gflops(compute_peak_gflops=1.0, bandwidth_gbs=bad,
                            intensity=1.0)
        with pytest.raises(ConfigurationError):
            roofline_gflops(compute_peak_gflops=1.0, bandwidth_gbs=1.0,
                            intensity=bad)


class TestCalibrationRegistry:
    def test_keys_are_consistent(self):
        for key, entry in CALIBRATION.items():
            assert entry.key == key

    def test_values_positive_with_units_and_sources(self):
        for entry in CALIBRATION.values():
            assert entry.paper_value > 0
            assert entry.unit
            assert entry.source
            assert entry.pins

    @settings(max_examples=30, deadline=None)
    @given(key=st.sampled_from(sorted(CALIBRATION)))
    def test_paper_value_returns_the_entry(self, key):
        assert paper_value(key) == CALIBRATION[key].paper_value

    def test_unknown_key_raises_with_catalog(self):
        with pytest.raises(KeyError, match="unknown calibration key"):
            paper_value("table9.না")

    def test_kernel_count_anchors_present(self):
        # The tuner's sanity anchors trace back to these entries.
        assert paper_value("multi.u280_kernels") == 6
        assert paper_value("multi.stratix_kernels") == 5
