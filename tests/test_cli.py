"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.device == "u280"
        assert args.cells == "16M"
        assert not args.no_overlap


class TestValidate:
    def test_validate_passes(self, capsys):
        assert main(["validate", "--nx", "4", "--ny", "5", "--nz", "4"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK (bitwise)") == 4


class TestRun:
    def test_run_overlapped(self, capsys):
        assert main(["run", "--device", "u280", "--cells", "16M"]) == 0
        out = capsys.readouterr().out
        assert "GFLOPS overall" in out
        assert "engine timeline" in out
        assert "memory=hbm2" in out

    def test_run_sequential_ddr(self, capsys):
        assert main(["run", "--device", "u280", "--cells", "16M",
                     "--no-overlap", "--memory", "ddr"]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out
        assert "memory=ddr" in out

    def test_run_cpu(self, capsys):
        assert main(["run", "--device", "cpu", "--cells", "16M"]) == 0
        out = capsys.readouterr().out
        assert "Xeon" in out

    def test_unknown_size_is_error(self, capsys):
        assert main(["run", "--cells", "12M"]) == 2

    def test_capacity_error_reported(self, capsys):
        assert main(["run", "--device", "v100", "--cells", "536M"]) == 1
        assert "error:" in capsys.readouterr().err


class TestDevices:
    def test_catalog_printed(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "6 kernels fit" in out
        assert "5 kernels fit" in out
        assert "V100" in out


class TestExperiments:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "paper-vs-measured" in out


class TestScorecard:
    def test_scorecard_passes(self, capsys, tmp_path):
        json_path = tmp_path / "summary.json"
        assert main(["scorecard", "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "ordering claims" in out
        assert json_path.exists()

    def test_impossible_tolerance_fails(self, capsys):
        assert main(["scorecard", "--tolerance", "0.0001"]) == 1


class TestReport:
    def test_report_to_file(self, capsys, tmp_path):
        path = tmp_path / "report.md"
        assert main(["report", str(path)]) == 0
        assert path.read_text().startswith("# Reproduction report")


class TestTraceOption:
    def test_run_writes_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert main(["run", "--device", "u280", "--cells", "16M",
                     "--trace", str(trace)]) == 0
        assert trace.exists()
        assert "chrome://tracing" in capsys.readouterr().out
