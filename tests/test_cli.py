"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.device == "u280"
        assert args.cells == "16M"
        assert not args.no_overlap


class TestValidate:
    def test_validate_passes(self, capsys):
        assert main(["validate", "--nx", "4", "--ny", "5", "--nz", "4"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK (bitwise)") == 4


class TestRun:
    def test_run_overlapped(self, capsys):
        assert main(["run", "--device", "u280", "--cells", "16M"]) == 0
        out = capsys.readouterr().out
        assert "GFLOPS overall" in out
        assert "engine timeline" in out
        assert "memory=hbm2" in out

    def test_run_sequential_ddr(self, capsys):
        assert main(["run", "--device", "u280", "--cells", "16M",
                     "--no-overlap", "--memory", "ddr"]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out
        assert "memory=ddr" in out

    def test_run_cpu(self, capsys):
        assert main(["run", "--device", "cpu", "--cells", "16M"]) == 0
        out = capsys.readouterr().out
        assert "Xeon" in out

    def test_unknown_size_is_error(self, capsys):
        assert main(["run", "--cells", "12M"]) == 2

    def test_capacity_error_reported(self, capsys):
        assert main(["run", "--device", "v100", "--cells", "536M"]) == 1
        assert "error:" in capsys.readouterr().err


class TestDevices:
    def test_catalog_printed(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "6 kernels fit" in out
        assert "5 kernels fit" in out
        assert "V100" in out


class TestExperiments:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "paper-vs-measured" in out


class TestScorecard:
    def test_scorecard_passes(self, capsys, tmp_path):
        json_path = tmp_path / "summary.json"
        assert main(["scorecard", "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "ordering claims" in out
        assert json_path.exists()

    def test_impossible_tolerance_fails(self, capsys):
        assert main(["scorecard", "--tolerance", "0.0001"]) == 1


class TestReport:
    def test_report_to_file(self, capsys, tmp_path):
        path = tmp_path / "report.md"
        assert main(["report", str(path)]) == 0
        assert path.read_text().startswith("# Reproduction report")


class TestTraceOption:
    def test_run_writes_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert main(["run", "--device", "u280", "--cells", "16M",
                     "--trace", str(trace)]) == 0
        assert trace.exists()
        assert "chrome://tracing" in capsys.readouterr().out


class TestTraceCommand:
    def test_trace_writes_merged_file(self, capsys, tmp_path):
        out = tmp_path / "merged.json"
        assert main(["trace", "--nx", "8", "--ny", "12", "--nz", "6",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "wrote chrome://tracing / Perfetto file" in text
        import json

        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        assert {e["pid"] for e in events} == {1, 2}
        cats = {e.get("cat") for e in events}
        assert "chunk" in cats and "stage" in cats  # engine spans
        assert "pcie_h2d" in cats  # schedule transfers

    def test_trace_exact_mode(self, capsys, tmp_path):
        out = tmp_path / "exact.json"
        assert main(["trace", "--nx", "6", "--ny", "9", "--nz", "5",
                     "--mode", "exact", "--chunk-width", "4",
                     "--out", str(out)]) == 0
        assert out.exists()

    def test_trace_unknown_device_is_error(self, capsys, tmp_path):
        assert main(["trace", "--nx", "6", "--ny", "9", "--nz", "5",
                     "--device", "nosuch",
                     "--out", str(tmp_path / "t.json")]) == 1
        assert "error:" in capsys.readouterr().err


class TestMetricsCommand:
    def test_metrics_text_report(self, capsys):
        assert main(["metrics", "--nx", "6", "--ny", "9", "--nz", "5"]) == 0
        text = capsys.readouterr().out
        assert "ops/cycle:" in text
        assert "theoretical" in text
        assert "engine_cycles" in text  # registry dump rides along

    def test_metrics_json_with_clock(self, capsys):
        assert main(["metrics", "--nx", "6", "--ny", "9", "--nz", "5",
                     "--clock-mhz", "300", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["grid"] == [6, 9, 5]
        assert payload["ops_per_cycle"]["achieved_ops_per_cycle"] > 0
        assert payload["achieved_gflops"] > 0
        assert "engine_cycles" in payload["metrics"]

    def test_metrics_default_grid_reports_62_875(self, capsys):
        # nz=64 is the paper's column height; only check the theoretical
        # figure, the run itself would be slow at the full 64^3.
        assert main(["metrics", "--nx", "6", "--ny", "6", "--nz", "64",
                     "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        theory = payload["ops_per_cycle"]["theoretical_ops_per_cycle"]
        assert theory == 62.875


class TestServeCommand:
    ARGS = ["serve", "--jobs", "6", "--rate", "400", "--nx", "6",
            "--ny", "9", "--nz", "5"]

    def test_serve_text_report(self, capsys):
        assert main(self.ARGS) == 0
        text = capsys.readouterr().out
        assert "jobs" in text
        assert "p99" in text

    def test_serve_json_report(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["completed"] == 6
        assert payload["failed"] == 0
        assert payload["fleet"]["lanes"]
        assert payload["invariant_ok"] is None  # no chaos leg requested

    def test_serve_chaos_upholds_invariant(self, capsys):
        assert main(self.ARGS + ["--chaos", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["invariant_ok"] is True

    def test_serve_writes_trace_and_metrics(self, capsys, tmp_path):
        out = tmp_path / "serve-trace.json"
        assert main(self.ARGS + ["--trace", str(out), "--metrics"]) == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "serve_jobs_total" in text

    def test_serve_bad_fleet_is_error(self, capsys):
        assert main(["serve", "--fleet", "2*u280"]) == 1
        assert "error:" in capsys.readouterr().err
