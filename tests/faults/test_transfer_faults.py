"""Injected PCIe transfer faults through the schedule simulator.

A fail with no retry policy is a typed TransferError; with a policy the
link is charged for every doomed attempt plus backoff; a stall delays
the one attempt; a hang (stall with no duration) trips the schedule
watchdog.  Multi-bank kernels spread chunk compute across resources.
"""

import pytest

from repro.errors import (
    RetryExhaustedError,
    ScheduleError,
    TransferError,
    WatchdogTimeout,
)
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.hardware.pcie import PCIeLink
from repro.runtime.overlap import ChunkWork, build_overlapped_schedule
from repro.runtime.queue import CommandQueue
from repro.runtime.simulator import simulate_schedule


@pytest.fixture
def link():
    return PCIeLink(streamed_bandwidth=10e9, synchronous_bandwidth=5e9,
                    latency=0.0)


def chunks(n=4):
    return [ChunkWork(index=i, in_bytes=1e9, out_bytes=0.5e9,
                      kernel_seconds=0.05) for i in range(n)]


def single_transfer_queue():
    queue = CommandQueue("one")
    queue.enqueue_write("h2d[0]", 0.1)
    return queue


class TestTransferFail:
    def test_fail_without_policy_is_typed(self):
        plan = FaultPlan([FaultSpec("transfer", "fail", match="h2d*")])
        with pytest.raises(TransferError, match="injected"):
            simulate_schedule(single_transfer_queue(), fault_plan=plan)

    def test_fail_with_policy_charges_attempts_and_backoff(self):
        golden = simulate_schedule(single_transfer_queue())
        plan = FaultPlan([FaultSpec("transfer", "fail", match="h2d*",
                                    count=1)])
        retry = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
        result = simulate_schedule(single_transfer_queue(),
                                   fault_plan=plan, retry=retry)
        assert result.retries == {"h2d[0]": 1}
        # One doomed full-duration attempt plus the first backoff delay.
        assert result.makespan == pytest.approx(
            golden.makespan + 0.1 + retry.delay(0))

    def test_persistent_fail_exhausts_budget(self):
        plan = FaultPlan([FaultSpec("transfer", "fail", match="h2d*",
                                    count=None)])
        with pytest.raises(RetryExhaustedError, match="attempts") as info:
            simulate_schedule(single_transfer_queue(), fault_plan=plan,
                              retry=RetryPolicy(max_attempts=2))
        assert isinstance(info.value.__cause__, TransferError)

    def test_faults_only_strike_pcie_resources(self):
        plan = FaultPlan([FaultSpec("transfer", "fail", match="*",
                                    count=None)])
        queue = CommandQueue()
        queue.enqueue_kernel("kernel[0]", 0.2)
        result = simulate_schedule(queue, fault_plan=plan)
        assert result.makespan == pytest.approx(0.2)
        assert len(plan.trace) == 0


class TestTransferStall:
    def test_stall_adds_its_delay(self):
        golden = simulate_schedule(single_transfer_queue())
        plan = FaultPlan([FaultSpec("transfer", "stall", match="h2d*",
                                    seconds=0.25)])
        result = simulate_schedule(single_transfer_queue(),
                                   fault_plan=plan)
        assert result.makespan == pytest.approx(golden.makespan + 0.25)

    def test_hang_raises_watchdog_not_a_hang(self):
        plan = FaultPlan([FaultSpec("transfer", "stall", match="h2d*",
                                    seconds=None)])
        with pytest.raises(WatchdogTimeout, match="hang"):
            simulate_schedule(single_transfer_queue(), fault_plan=plan)


class TestScheduleWatchdog:
    def test_budget_breach_is_typed(self, link):
        queue = build_overlapped_schedule(chunks(), link)
        with pytest.raises(WatchdogTimeout, match="watchdog"):
            simulate_schedule(queue, watchdog_seconds=1e-6)

    def test_generous_budget_never_fires(self, link):
        queue = build_overlapped_schedule(chunks(), link)
        golden = build_overlapped_schedule(chunks(), link)
        budget = simulate_schedule(golden).makespan * 10
        result = simulate_schedule(queue, watchdog_seconds=budget)
        assert result.makespan < budget

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ScheduleError, match="watchdog_seconds"):
            simulate_schedule(single_transfer_queue(),
                              watchdog_seconds=0.0)


class TestKernelBanks:
    def test_banks_split_the_kernel_resource(self, link):
        queue = build_overlapped_schedule(chunks(4), link, kernel_banks=2)
        result = simulate_schedule(queue)
        assert "kernel0" in result.busy and "kernel1" in result.busy
        assert "kernel" not in result.busy

    def test_two_banks_never_slower(self, link):
        one = simulate_schedule(build_overlapped_schedule(chunks(6), link))
        two = simulate_schedule(build_overlapped_schedule(
            chunks(6), link, kernel_banks=2))
        assert two.makespan <= one.makespan + 1e-12

    def test_invalid_bank_count_rejected(self, link):
        from repro.errors import ConfigurationError

        with pytest.raises((ConfigurationError, ScheduleError)):
            build_overlapped_schedule(chunks(2), link, kernel_banks=0)


class TestClosedFormRetryCost:
    def test_link_model_matches_simulator_charging(self, link):
        policy = RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0)
        once = link.transfer_time(1e9, streamed=False)
        expected = 3 * once + policy.total_delay(2)
        assert link.transfer_time_with_retries(
            1e9, streamed=False, failures=2, policy=policy,
        ) == pytest.approx(expected)

    def test_zero_failures_is_plain_transfer(self, link):
        policy = RetryPolicy()
        assert link.transfer_time_with_retries(
            1e9, streamed=False, failures=0, policy=policy,
        ) == pytest.approx(link.transfer_time(1e9, streamed=False))
