"""Recovery machinery end to end: checkpoint/restart, quarantine, respawn.

Transient faults must leave the numerical output bit-identical to the
fault-free golden run; persistent faults must exhaust the retry budget
with a typed error rather than hang or corrupt.
"""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.reference import advect_reference
from repro.core.wind import random_wind
from repro.distributed import DistributedAdvection, ProcessGrid
from repro.errors import ReplicaLostError, RetryExhaustedError
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.kernel.config import KernelConfig
from repro.kernel.multi_simulate import simulate_multi_kernel
from repro.kernel.simulate import simulate_kernel


@pytest.fixture
def setup():
    grid = Grid(nx=6, ny=6, nz=4)
    fields = random_wind(grid, seed=3)
    config = KernelConfig(grid=grid, chunk_width=3)
    return grid, fields, config


def assert_bit_identical(sources, golden):
    np.testing.assert_array_equal(sources.su, golden.su)
    np.testing.assert_array_equal(sources.sv, golden.sv)
    np.testing.assert_array_equal(sources.sw, golden.sw)


class TestCheckpointRestart:
    def test_transient_corruption_recovers_bit_identical(self, setup):
        grid, fields, config = setup
        golden = simulate_kernel(config, fields)
        plan = FaultPlan([FaultSpec("fifo", "corrupt", match="*",
                                    probability=0.05, count=1)], seed=1)
        result = simulate_kernel(config, fields, fault_plan=plan)
        assert result.chunk_retries >= 1
        assert_bit_identical(result.sources, golden.sources)

    def test_transient_drop_recovers_bit_identical(self, setup):
        grid, fields, config = setup
        golden = simulate_kernel(config, fields)
        plan = FaultPlan([FaultSpec("fifo", "drop", match="*",
                                    probability=0.05, count=1)], seed=2)
        result = simulate_kernel(config, fields, fault_plan=plan)
        assert result.chunk_retries >= 1
        assert_bit_identical(result.sources, golden.sources)

    def test_persistent_fault_exhausts_retry_budget(self, setup):
        grid, fields, config = setup
        plan = FaultPlan([FaultSpec("fifo", "corrupt", match="*",
                                    probability=0.05, count=None)], seed=1)
        with pytest.raises(RetryExhaustedError, match="attempts"):
            simulate_kernel(config, fields, fault_plan=plan,
                            retry=RetryPolicy(max_attempts=2))

    def test_fault_free_plan_costs_no_retries(self, setup):
        grid, fields, config = setup
        golden = simulate_kernel(config, fields)
        result = simulate_kernel(config, fields, fault_plan=FaultPlan([]),
                                 retry=RetryPolicy())
        assert result.chunk_retries == 0
        assert result.total_cycles == golden.total_cycles
        assert_bit_identical(result.sources, golden.sources)


class TestReplicaQuarantine:
    def test_killed_replica_quarantined_work_rescheduled(self, setup):
        grid, fields, config = setup
        golden = simulate_multi_kernel(config, fields, num_kernels=2)
        plan = FaultPlan([FaultSpec("replica", "kill", match="k1:*",
                                    count=1)])
        result = simulate_multi_kernel(config, fields, num_kernels=2,
                                       fault_plan=plan)
        assert result.quarantined == [1]
        assert result.rescheduled_chunks >= 1
        assert result.total_cycles > golden.total_cycles
        assert_bit_identical(result.sources, golden.sources)

    def test_slow_replica_degrades_but_stays_correct(self, setup):
        grid, fields, config = setup
        golden = simulate_multi_kernel(config, fields, num_kernels=2)
        plan = FaultPlan([FaultSpec("replica", "slow", match="k0:*",
                                    count=1, factor=4.0)])
        result = simulate_multi_kernel(config, fields, num_kernels=2,
                                       fault_plan=plan)
        assert result.quarantined == []
        assert result.total_cycles > golden.total_cycles
        assert_bit_identical(result.sources, golden.sources)

    def test_all_replicas_dead_raises_typed_error(self, setup):
        grid, fields, config = setup
        plan = FaultPlan([FaultSpec("replica", "kill", match="*",
                                    count=None)])
        with pytest.raises(ReplicaLostError):
            simulate_multi_kernel(config, fields, num_kernels=2,
                                  fault_plan=plan)


class TestRankRespawn:
    def make(self):
        grid = Grid(nx=6, ny=9, nz=4)
        fields = random_wind(grid, seed=5)
        topo = ProcessGrid(global_grid=grid, px=2, py=3)
        return grid, fields, topo

    def test_dropped_rank_respawns_bit_identical(self):
        grid, fields, topo = self.make()
        golden = advect_reference(fields)
        plan = FaultPlan([FaultSpec("rank", "drop", match="rank2",
                                    count=1)])
        driver = DistributedAdvection(topo, fault_plan=plan)
        sources = driver.compute(fields)
        assert driver.last_report.recovered_ranks == 1
        assert_bit_identical(sources, golden)

    def test_respawned_rank_charged_for_recompute(self):
        grid, fields, topo = self.make()
        clean = DistributedAdvection(topo)
        clean.compute(fields)
        plan = FaultPlan([FaultSpec("rank", "drop", match="rank2",
                                    count=1)])
        faulty = DistributedAdvection(topo, fault_plan=plan)
        faulty.compute(fields)
        assert (faulty.last_report.compute_seconds
                > clean.last_report.compute_seconds)

    def test_persistent_rank_drop_exhausts(self):
        grid, fields, topo = self.make()
        plan = FaultPlan([FaultSpec("rank", "drop", match="rank0",
                                    count=None)])
        driver = DistributedAdvection(
            topo, fault_plan=plan, retry=RetryPolicy(max_attempts=2))
        with pytest.raises(RetryExhaustedError) as info:
            driver.compute(fields)
        assert isinstance(info.value.__cause__, ReplicaLostError)
