"""The fault plan's decision primitive: deterministic, traced, capped."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultPlan, FaultSpec


class TestSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError, match="site"):
            FaultSpec("dma", "fail")

    def test_kind_must_be_legal_for_site(self):
        with pytest.raises(ConfigurationError, match="kind"):
            FaultSpec("fifo", "fail")

    @pytest.mark.parametrize("probability", [0.0, -0.5, 1.5])
    def test_probability_bounds(self, probability):
        with pytest.raises(ConfigurationError, match="probability"):
            FaultSpec("fifo", "corrupt", probability=probability)

    def test_count_zero_rejected(self):
        with pytest.raises(ConfigurationError, match="count"):
            FaultSpec("fifo", "corrupt", count=0)

    def test_factor_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="factor"):
            FaultSpec("replica", "slow", factor=0.5)


class TestDraws:
    def test_certain_spec_fires_and_is_traced(self):
        plan = FaultPlan([FaultSpec("fifo", "corrupt")])
        spec = plan.draw("fifo", "s1")
        assert spec is plan.specs[0]
        assert len(plan.trace) == 1
        event = plan.trace[0]
        assert (event.site, event.name, event.kind) == ("fifo", "s1",
                                                        "corrupt")

    def test_count_caps_firings(self):
        plan = FaultPlan([FaultSpec("fifo", "corrupt", count=2)])
        hits = [plan.draw("fifo", "s") for _ in range(5)]
        assert sum(spec is not None for spec in hits) == 2
        assert hits[2] is None  # inert after the cap

    def test_glob_scopes_the_spec(self):
        plan = FaultPlan([FaultSpec("fifo", "drop", match="k1.*",
                                    count=None)])
        assert plan.draw("fifo", "k0.read_to_shift") is None
        assert plan.draw("fifo", "k1.read_to_shift") is not None
        assert plan.matches("fifo", "k1.x")
        assert not plan.matches("fifo", "k0.x")

    def test_sites_are_independent(self):
        plan = FaultPlan([FaultSpec("fifo", "corrupt", count=None)])
        assert plan.targets("fifo")
        assert not plan.targets("rank")
        assert plan.draw("rank", "rank0") is None

    def test_inactive_plan(self):
        plan = FaultPlan([])
        assert not plan.active
        assert plan.draw("fifo", "s") is None


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def sweep(seed):
            plan = FaultPlan([FaultSpec("fifo", "corrupt",
                                        probability=0.3, count=None)],
                             seed=seed)
            for i in range(50):
                plan.draw("fifo", f"s{i % 4}")
            return plan.trace_key()

        assert sweep(7) == sweep(7)
        assert sweep(7) != sweep(8)

    def test_draws_are_order_independent(self):
        """The decision for (site, name, occurrence) does not depend on
        what other opportunities were consumed in between."""
        plan_a = FaultPlan([FaultSpec("fifo", "corrupt", probability=0.5,
                                      count=None)], seed=3)
        plan_b = FaultPlan([FaultSpec("fifo", "corrupt", probability=0.5,
                                      count=None)], seed=3)
        fires_a = [plan_a.draw("fifo", "target") is not None
                   for _ in range(20)]
        fires_b = []
        for i in range(20):
            plan_b.draw("fifo", f"noise{i}")  # interleaved other names
            fires_b.append(plan_b.draw("fifo", "target") is not None)
        assert fires_a == fires_b

    def test_reset_replays_identically(self):
        plan = FaultPlan([FaultSpec("fifo", "drop", probability=0.4,
                                    count=3)], seed=11)
        for i in range(30):
            plan.draw("fifo", f"s{i % 3}")
        first = plan.trace_key()
        plan.reset()
        assert plan.trace == []
        for i in range(30):
            plan.draw("fifo", f"s{i % 3}")
        assert plan.trace_key() == first

    def test_transient_spec_stays_inert_across_retries(self):
        """Occurrence counters advance monotonically, so a count-capped
        spec that struck once does not strike the recovery re-attempt."""
        plan = FaultPlan([FaultSpec("fifo", "corrupt", count=1)])
        assert plan.draw("fifo", "s") is not None
        assert plan.draw("fifo", "s") is None  # the retry sees no fault


class TestConveniences:
    def test_stream_hook_none_when_unmatched(self):
        plan = FaultPlan([FaultSpec("fifo", "corrupt", match="other")])
        assert plan.stream_hook("this") is None

    def test_freeze_window_finite_and_permanent(self):
        plan = FaultPlan([
            FaultSpec("stage", "freeze", match="a", at_cycle=10, cycles=5),
            FaultSpec("stage", "freeze", match="b", at_cycle=0),
        ])
        assert plan.freeze_window("a") == (10, 15)
        assert plan.freeze_window("b") == (0, None)
        assert plan.freeze_window("c") is None

    def test_replica_and_rank_naming(self):
        plan = FaultPlan([
            FaultSpec("replica", "kill", match="k1:chunk2", count=None),
            FaultSpec("rank", "drop", match="rank3", count=None),
        ])
        assert plan.replica_fault(1, 2) is not None
        assert plan.replica_fault(0, 2) is None
        assert plan.rank_fault(3) is not None
        assert plan.rank_fault(2) is None
