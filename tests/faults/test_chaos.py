"""The chaos harness and its invariant.

Every seeded scenario must either complete bit-identical to the golden
run or raise a typed ReproError within its watchdog budget — and the
same seed must replay the same outcome and fault trace.
"""

import pytest

from repro.errors import ConfigurationError
from repro.faults.chaos import (
    CHAOS_FAMILIES,
    SMOKE_FAMILIES,
    ChaosReport,
    run_chaos,
)


class TestSweep:
    def test_smoke_families_uphold_invariant(self):
        report = run_chaos(families=SMOKE_FAMILIES, seeds=2)
        assert isinstance(report, ChaosReport)
        assert len(report.outcomes) == 2 * len(SMOKE_FAMILIES)
        assert report.ok, report.render_text()
        assert report.violations == []

    def test_recovery_families_actually_inject(self):
        report = run_chaos(families=("fifo-corrupt", "replica-kill"),
                           seeds=2)
        assert report.ok, report.render_text()
        assert any(outcome.events > 0 for outcome in report.outcomes)

    def test_persistent_family_errors_typed(self):
        report = run_chaos(families=("fifo-persistent",), seeds=1)
        assert report.ok, report.render_text()
        outcome = report.outcomes[0]
        assert outcome.status == "error"
        assert outcome.error == "RetryExhaustedError"

    def test_hang_family_hits_watchdog_not_a_hang(self):
        report = run_chaos(families=("transfer-hang",), seeds=2)
        assert report.ok, report.render_text()
        for outcome in report.outcomes:
            assert outcome.status in ("error", "completed", "identical")
            if outcome.status == "error":
                assert outcome.error == "WatchdogTimeout"


class TestDeterminism:
    def test_same_seeds_same_report(self):
        first = run_chaos(families=("fifo-corrupt", "rank-drop"), seeds=2)
        second = run_chaos(families=("fifo-corrupt", "rank-drop"), seeds=2)
        assert first.to_dict() == second.to_dict()


class TestValidation:
    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError, match="family"):
            run_chaos(families=("warp-core-breach",), seeds=1)

    def test_zero_seeds_rejected(self):
        with pytest.raises(ConfigurationError, match="seeds"):
            run_chaos(seeds=0)

    def test_family_list_is_complete(self):
        assert set(SMOKE_FAMILIES) <= set(CHAOS_FAMILIES)
        assert len(set(CHAOS_FAMILIES)) == len(CHAOS_FAMILIES)


class TestRendering:
    def test_report_text_counts_scenarios(self):
        report = run_chaos(families=("transfer-fail",), seeds=1)
        text = report.render_text()
        assert "1/1 scenarios uphold the invariant" in text
        assert "transfer-fail" in text

    def test_to_dict_round_trip_fields(self):
        report = run_chaos(families=("transfer-fail",), seeds=1)
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["scenarios"] == 1
        outcome = payload["outcomes"][0]
        assert {"family", "seed", "status", "error", "events",
                "ok", "detail"} <= set(outcome)


class TestDeviceFamilies:
    def test_device_families_are_registered(self):
        assert "device-loss" in CHAOS_FAMILIES
        assert "device-blip" in CHAOS_FAMILIES
        assert "device-loss" in SMOKE_FAMILIES

    def test_device_loss_upholds_fleet_invariant(self):
        report = run_chaos(families=("device-loss",), seeds=2)
        assert report.ok, report.render_text()
        for outcome in report.outcomes:
            assert outcome.status == "identical"
            assert "jobs" in outcome.detail

    def test_device_blip_recovers_every_job(self):
        report = run_chaos(families=("device-blip",), seeds=1)
        assert report.ok, report.render_text()

    def test_device_family_replays_deterministically(self):
        first = run_chaos(families=("device-loss",), seeds=1)
        second = run_chaos(families=("device-loss",), seeds=1)
        assert first.to_dict() == second.to_dict()


class TestBatchFallbackReason:
    def test_outcome_dict_carries_fallback_field(self):
        report = run_chaos(families=("transfer-fail",), seeds=1)
        outcome = report.to_dict()["outcomes"][0]
        assert "batch_fallback_reason" in outcome

    def test_planned_fifo_faults_do_not_force_a_fallback(self):
        # The event calendar caps analytic windows at the provably
        # strike-free prefix, so planned fifo strikes land on scalar
        # cycles and batching never has to bail out.
        report = run_chaos(families=("fifo-corrupt",), seeds=2)
        assert report.ok, report.render_text()
        for outcome in report.outcomes:
            assert outcome.batch_fallback_reason is None

    def test_fallback_reason_rendered_when_present(self):
        from repro.faults.chaos import ChaosOutcome

        report = ChaosReport()
        report.outcomes.append(ChaosOutcome(
            family="fifo-corrupt", seed=0, status="identical", error=None,
            events=1, ok=True,
            batch_fallback_reason="monitor samples every cycle"))
        text = report.render_text()
        assert "fallback=monitor samples every cycle" in text
        payload = report.to_dict()["outcomes"][0]
        assert payload["batch_fallback_reason"] == (
            "monitor samples every cycle")
