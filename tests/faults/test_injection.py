"""Fault injection through the dataflow engine.

FIFO corruption must be detected at the consumer (never silently
consumed), dropped words must surface as a typed error rather than a
quiet short-count, frozen stages must trip the deadlock guard or the
watchdog, and any active plan must demote fast-forward mode with a
user-visible reason.
"""

import pytest

from repro.dataflow.engine import DataflowEngine
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.stage import FunctionStage, SinkStage, SourceStage
from repro.dataflow.stream import DROP_WORD, CorruptedWord, Stream
from repro.errors import DataflowError, FaultError, WatchdogTimeout
from repro.faults import FaultPlan, FaultSpec


def pipeline(n_items=60):
    g = DataflowGraph("p")
    src = g.add(SourceStage("src", range(n_items)))
    fn = g.add(FunctionStage("fn", lambda x: 2 * x, ii=1, latency=4))
    sink = g.add(SinkStage("sink"))
    g.connect(src, "out", fn, "in", depth=4)
    g.connect(fn, "out", sink, "in", depth=4)
    return g


class TestStreamHooks:
    def test_corrupted_word_detected_at_pop(self):
        stream = Stream("s", depth=4)
        stream.fault_hook = lambda item: CorruptedWord(item)
        stream.push(1)
        with pytest.raises(FaultError, match="corrupted word"):
            stream.pop()

    def test_dropped_word_counts_the_push_but_vanishes(self):
        stream = Stream("s", depth=4)
        stream.fault_hook = lambda item: DROP_WORD
        stream.push(1)
        assert stream.stats.pushes == 1
        assert len(stream) == 0

    def test_no_hook_no_interference(self):
        stream = Stream("s", depth=4)
        stream.push(5)
        assert stream.pop() == 5


class TestEngineInjection:
    def test_corrupt_fault_raises_typed_error(self):
        plan = FaultPlan([FaultSpec("fifo", "corrupt", match="src.*")])
        with pytest.raises(FaultError, match="corrupted word"):
            DataflowEngine(pipeline(), fault_plan=plan).run()
        assert len(plan.trace) == 1

    def test_drop_fault_never_silently_corrupts(self):
        plan = FaultPlan([FaultSpec("fifo", "drop", match="src.*")])
        with pytest.raises((FaultError, DataflowError)):
            DataflowEngine(pipeline(), fault_plan=plan).run()

    def test_fault_free_plan_changes_nothing(self):
        golden_g = pipeline()
        golden = DataflowEngine(golden_g).run()
        g = pipeline()
        stats = DataflowEngine(g, fault_plan=FaultPlan([])).run()
        assert stats.cycles == golden.cycles
        assert g.stage("sink").collected == golden_g.stage("sink").collected

    def test_transient_freeze_completes_identically(self):
        golden_g = pipeline()
        golden = DataflowEngine(golden_g).run()
        plan = FaultPlan([FaultSpec("stage", "freeze", match="fn",
                                    at_cycle=5, cycles=3)])
        g = pipeline()
        stats = DataflowEngine(g, fault_plan=plan).run()
        assert g.stage("sink").collected == golden_g.stage("sink").collected
        assert stats.cycles >= golden.cycles

    def test_permanent_freeze_trips_deadlock_guard(self):
        plan = FaultPlan([FaultSpec("stage", "freeze", match="fn",
                                    at_cycle=5)])
        with pytest.raises(DataflowError, match="deadlock"):
            DataflowEngine(pipeline(), fault_plan=plan).run()


class TestWatchdog:
    def test_watchdog_raises_typed_timeout(self):
        # The watchdog budget is tighter than the deadlock grace, so it
        # fires first and wins the race against the deadlock guard.
        plan = FaultPlan([FaultSpec("stage", "freeze", match="fn",
                                    at_cycle=0)])
        with pytest.raises(WatchdogTimeout, match="watchdog"):
            DataflowEngine(pipeline(), fault_plan=plan, watchdog=5).run()

    def test_generous_watchdog_never_fires(self):
        stats = DataflowEngine(pipeline(), watchdog=100_000).run()
        assert stats.cycles < 100_000

    def test_invalid_watchdog_rejected(self):
        with pytest.raises(DataflowError, match="watchdog"):
            DataflowEngine(pipeline(), watchdog=0)


class TestFastModeDemotion:
    def test_active_plan_demotes_with_reason(self):
        plan = FaultPlan([FaultSpec("fifo", "corrupt", match="nomatch")])
        stats = DataflowEngine(pipeline(), mode="fast",
                               fault_plan=plan).run()
        assert stats.ff_advances == 0
        assert stats.ff_veto_reason is not None
        assert "fault injection" in stats.ff_veto_reason

    def test_monitors_demote_with_reason(self):
        from repro.dataflow.monitors import StreamProbe

        probe = StreamProbe("src.out->fn.in")
        stats = DataflowEngine(pipeline(), mode="fast",
                               monitors=[probe]).run()
        assert stats.ff_veto_reason is not None
        assert "monitor" in stats.ff_veto_reason

    def test_clean_fast_run_has_no_reason(self):
        stats = DataflowEngine(pipeline(300), mode="fast").run()
        assert stats.ff_veto_reason is None
        assert stats.ff_advances > 0

    def test_summary_mentions_demotion(self):
        plan = FaultPlan([FaultSpec("fifo", "corrupt", match="nomatch")])
        stats = DataflowEngine(pipeline(), mode="fast",
                               fault_plan=plan).run()
        assert "demoted" in stats.summary()
