"""Retry policy: deterministic backoff and budget-capped execution."""

import pytest

from repro.errors import (
    ConfigurationError,
    FaultError,
    RetryExhaustedError,
    TransferError,
)
from repro.faults import RetryPolicy


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_rejects_backoff_below_one(self):
        with pytest.raises(ConfigurationError, match="backoff"):
            RetryPolicy(backoff=0.5)

    def test_rejects_jitter_of_one(self):
        with pytest.raises(ConfigurationError, match="jitter"):
            RetryPolicy(jitter=1.0)


class TestDelays:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, backoff=2.0,
                             jitter=0.0)
        assert list(policy.delays()) == [1.0, 2.0, 4.0]

    def test_max_delay_caps_the_sequence(self):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, backoff=10.0,
                             jitter=0.0, max_delay=3.0)
        assert list(policy.delays()) == [1.0, 3.0, 3.0, 3.0]

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(max_attempts=6, base_delay=1.0, backoff=1.0,
                             jitter=0.25, seed=5)
        first = list(policy.delays())
        again = list(policy.delays())
        assert first == again  # same seed, same jitter factors
        for delay in first:
            assert 0.75 <= delay <= 1.25

    def test_different_seeds_differ(self):
        a = list(RetryPolicy(jitter=0.3, seed=1).delays())
        b = list(RetryPolicy(jitter=0.3, seed=2).delays())
        assert a != b

    def test_total_delay_sums_failures(self):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, backoff=2.0,
                             jitter=0.0)
        assert policy.total_delay(3) == pytest.approx(1.0 + 2.0 + 4.0)


class TestCall:
    def test_success_passes_through(self):
        assert RetryPolicy().call(lambda: 42) == 42

    def test_transient_failure_recovers(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise FaultError("boom")
            return "ok"

        assert RetryPolicy(max_attempts=3).call(flaky) == "ok"
        assert len(attempts) == 3

    def test_exhaustion_raises_typed_error_with_cause(self):
        def always():
            raise TransferError("link down")

        with pytest.raises(RetryExhaustedError, match="3 attempts") as info:
            RetryPolicy(max_attempts=3).call(always, describe="h2d")
        assert isinstance(info.value.__cause__, TransferError)

    def test_unlisted_exceptions_propagate_unwrapped(self):
        def broken():
            raise ValueError("not a fault")

        with pytest.raises(ValueError):
            RetryPolicy().call(broken)

    def test_on_retry_sees_each_failure(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise FaultError("x")
            return None

        RetryPolicy(max_attempts=4).call(
            flaky, on_retry=lambda k, err: seen.append((k, str(err))))
        assert seen == [(0, "x"), (1, "x")]


class TestForJob:
    def test_keyed_policy_is_deterministic(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.3, seed=7)
        first = list(policy.for_job("job-0001").delays())
        again = list(policy.for_job("job-0001").delays())
        assert first == again

    def test_distinct_jobs_get_distinct_streams(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.3, seed=7)
        a = list(policy.for_job("job-0001").delays())
        b = list(policy.for_job("job-0002").delays())
        assert a != b

    def test_base_policy_stream_is_untouched(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.3, seed=7)
        before = list(policy.delays())
        policy.for_job("job-0001")
        assert list(policy.delays()) == before

    def test_keyed_policy_preserves_shape(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.5, backoff=3.0,
                             jitter=0.2, max_delay=9.0, seed=11)
        keyed = policy.for_job("job-9")
        assert keyed.max_attempts == policy.max_attempts
        assert keyed.base_delay == policy.base_delay
        assert keyed.backoff == policy.backoff
        assert keyed.jitter == policy.jitter
        assert keyed.max_delay == policy.max_delay
        assert keyed.seed != policy.seed

    def test_jitter_free_policy_is_key_invariant(self):
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, backoff=2.0,
                             jitter=0.0)
        assert (list(policy.for_job("a").delays())
                == list(policy.for_job("b").delays())
                == list(policy.delays()))
