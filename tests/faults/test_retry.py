"""Retry policy: deterministic backoff and budget-capped execution."""

import pytest

from repro.errors import (
    ConfigurationError,
    FaultError,
    RetryExhaustedError,
    TransferError,
)
from repro.faults import RetryPolicy


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_rejects_backoff_below_one(self):
        with pytest.raises(ConfigurationError, match="backoff"):
            RetryPolicy(backoff=0.5)

    def test_rejects_jitter_of_one(self):
        with pytest.raises(ConfigurationError, match="jitter"):
            RetryPolicy(jitter=1.0)


class TestDelays:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, backoff=2.0,
                             jitter=0.0)
        assert list(policy.delays()) == [1.0, 2.0, 4.0]

    def test_max_delay_caps_the_sequence(self):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, backoff=10.0,
                             jitter=0.0, max_delay=3.0)
        assert list(policy.delays()) == [1.0, 3.0, 3.0, 3.0]

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(max_attempts=6, base_delay=1.0, backoff=1.0,
                             jitter=0.25, seed=5)
        first = list(policy.delays())
        again = list(policy.delays())
        assert first == again  # same seed, same jitter factors
        for delay in first:
            assert 0.75 <= delay <= 1.25

    def test_different_seeds_differ(self):
        a = list(RetryPolicy(jitter=0.3, seed=1).delays())
        b = list(RetryPolicy(jitter=0.3, seed=2).delays())
        assert a != b

    def test_total_delay_sums_failures(self):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, backoff=2.0,
                             jitter=0.0)
        assert policy.total_delay(3) == pytest.approx(1.0 + 2.0 + 4.0)


class TestCall:
    def test_success_passes_through(self):
        assert RetryPolicy().call(lambda: 42) == 42

    def test_transient_failure_recovers(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise FaultError("boom")
            return "ok"

        assert RetryPolicy(max_attempts=3).call(flaky) == "ok"
        assert len(attempts) == 3

    def test_exhaustion_raises_typed_error_with_cause(self):
        def always():
            raise TransferError("link down")

        with pytest.raises(RetryExhaustedError, match="3 attempts") as info:
            RetryPolicy(max_attempts=3).call(always, describe="h2d")
        assert isinstance(info.value.__cause__, TransferError)

    def test_unlisted_exceptions_propagate_unwrapped(self):
        def broken():
            raise ValueError("not a fault")

        with pytest.raises(ValueError):
            RetryPolicy().call(broken)

    def test_on_retry_sees_each_failure(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise FaultError("x")
            return None

        RetryPolicy(max_attempts=4).call(
            flaky, on_retry=lambda k, err: seen.append((k, str(err))))
        assert seen == [(0, "x"), (1, "x")]
