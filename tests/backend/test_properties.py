"""Property: every registered backend prices every registered scenario.

The scenarios CLI's ``--backend`` pricing section and the serve layer's
admission path both assume any (backend, scenario) pair resolves to a
feasible deployment on the scenario's small grid.  Hypothesis sweeps
the full cross product so a new backend or scenario cannot silently
break the contract.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.scenarios as scenarios
from repro.backend import backend_names, get_backend


@settings(max_examples=30, deadline=None)
@given(backend_name=st.sampled_from(backend_names()),
       scenario_name=st.sampled_from(scenarios.names()))
def test_every_backend_prices_every_scenario(backend_name, scenario_name):
    backend = get_backend(backend_name)
    scenario = scenarios.get(scenario_name)
    evaluation = backend.price_scenario(scenario)
    assert evaluation.feasible
    assert evaluation.kernel_gflops > 0
    assert evaluation.watts > 0
    # The priced point must belong to the backend's own design space
    # (round-trips through the backend's dict codec).
    assert backend.point_from_dict(evaluation.point.to_dict()) == \
        evaluation.point


@settings(max_examples=20, deadline=None)
@given(backend_name=st.sampled_from(backend_names()),
       scenario_name=st.sampled_from(scenarios.names()))
def test_pricing_is_deterministic(backend_name, scenario_name):
    backend = get_backend(backend_name)
    scenario = scenarios.get(scenario_name)
    first = backend.price_scenario(scenario)
    second = backend.price_scenario(scenario)
    assert first.to_dict() == second.to_dict()
