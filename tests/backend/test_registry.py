"""Backend registry and ABC contract."""

import pytest

from repro.backend import (DEFAULT_BACKEND, Backend, BackendError,
                           backend_names, get_backend)


class TestRegistry:
    def test_builtins_are_registered(self):
        assert backend_names() == ("fpga_shiftbuffer", "versal_aie")

    def test_none_resolves_the_default_backend(self):
        assert get_backend(None).id == DEFAULT_BACKEND
        assert get_backend().id == "fpga_shiftbuffer"

    def test_unknown_backend_is_a_typed_error(self):
        with pytest.raises(BackendError, match="unknown backend"):
            get_backend("tpu_systolic")

    def test_duplicate_registration_rejected(self):
        from repro.backend.base import register_backend

        with pytest.raises(BackendError, match="already registered"):
            register_backend(get_backend("versal_aie"))

    def test_backends_are_backend_instances(self):
        for name in backend_names():
            backend = get_backend(name)
            assert isinstance(backend, Backend)
            assert backend.id == name
            assert backend.title
            assert backend.default_device in backend.device_names()


class TestDeviceResolution:
    def test_each_backend_resolves_its_catalog(self):
        for name in backend_names():
            backend = get_backend(name)
            for device_name in backend.device_names():
                device = backend.resolve_device(device_name)
                assert device is backend.resolve_device(device)

    def test_default_device_used_when_unnamed(self):
        backend = get_backend("versal_aie")
        assert backend.resolve_device().name == "Xilinx Versal VC1902"

    def test_foreign_device_rejected(self):
        with pytest.raises(BackendError):
            get_backend("versal_aie").resolve_device("u280")
        with pytest.raises(BackendError):
            get_backend("fpga_shiftbuffer").resolve_device("vc1902")


class TestDeprecatedProjectionAlias:
    def test_projection_importable_from_backend(self):
        from repro.backend import AIEngineProjection as from_backend
        from repro.hardware.versal import AIEngineProjection as legacy

        # One class, two import homes; repro.backend is canonical and
        # repro.hardware.versal remains a deprecated alias.
        assert from_backend is legacy
