"""The fpga_shiftbuffer backend must wrap the direct path bit-identically.

Routing U280/Stratix 10 work through the backend seam is only safe if
every surface — space, cost model, lint, lowering — returns exactly what
calling the underlying objects directly returns.  These tests pin that
equivalence object-by-object (the golden CLI fixtures pin it end to
end).
"""

from repro.backend import get_backend
from repro.core.grid import Grid
from repro.hardware.devices import ALVEO_U280, STRATIX10_GX2800
from repro.kernel.config import KernelConfig
from repro.lint.builders import build_structural_graph
from repro.lint.runner import lint_kernel
from repro.tune.cost import CostModel
from repro.tune.space import ParameterSpace, TunePoint

GRID = Grid(nx=16, ny=64, nz=16)
BACKEND = get_backend("fpga_shiftbuffer")


class TestSpaceIdentity:
    def test_parameter_space_matches_direct_derivation(self):
        for device in (ALVEO_U280, STRATIX10_GX2800):
            via_backend = BACKEND.parameter_space(device, GRID)
            direct = ParameterSpace.derive(device, GRID)
            assert via_backend == direct
            assert list(via_backend.points()) == list(direct.points())

    def test_wide_precision_passthrough(self):
        wide = BACKEND.parameter_space(ALVEO_U280, GRID,
                                       wide_precision=True)
        assert wide == ParameterSpace.derive(ALVEO_U280, GRID,
                                             wide_precision=True)


class TestCostIdentity:
    def test_every_point_evaluates_identically(self):
        model = BACKEND.cost_model(ALVEO_U280, GRID)
        direct = CostModel(ALVEO_U280, GRID)
        space = ParameterSpace.derive(ALVEO_U280, GRID)
        for point in space.points():
            assert model.evaluate(point).to_dict() == \
                direct.evaluate(point).to_dict()

    def test_flops_scale_passthrough(self):
        point = next(iter(ParameterSpace.derive(ALVEO_U280, GRID).points()))
        scaled = BACKEND.cost_model(ALVEO_U280, GRID, flops_scale=2.5)
        direct = CostModel(ALVEO_U280, GRID, flops_scale=2.5)
        assert scaled.evaluate(point).to_dict() == \
            direct.evaluate(point).to_dict()

    def test_point_round_trips_through_dict(self):
        point = TunePoint(chunk_width=32, num_kernels=2, stream_depth=4,
                          precision="float64", memory="hbm2", x_chunks=16,
                          overlapped=True)
        assert BACKEND.point_from_dict(point.to_dict()) == point


class TestLintIdentity:
    def test_lint_matches_lint_kernel(self):
        config = KernelConfig(grid=GRID)
        via_backend = BACKEND.lint(GRID, device=ALVEO_U280,
                                   num_kernels=4, subject="s")
        direct = lint_kernel(config, ALVEO_U280, 4, subject="s")
        assert [d.code for d in via_backend.diagnostics] == \
            [d.code for d in direct.diagnostics]
        assert via_backend.to_dict() == direct.to_dict()


class TestLoweringIdentity:
    def test_structural_graph_matches_direct_build(self):
        config = KernelConfig(grid=GRID)
        via_backend = BACKEND.structural_graph(GRID, read_ii=2)
        direct = build_structural_graph(config, read_ii=2)
        assert [s.name for s in via_backend.stages] == \
            [s.name for s in direct.stages]
        assert {(c.src.name, c.src_port, c.dst.name, c.dst_port,
                 c.stream.depth)
                for c in via_backend.connections()} == \
            {(c.src.name, c.src_port, c.dst.name, c.dst_port,
              c.stream.depth)
                for c in direct.connections()}
