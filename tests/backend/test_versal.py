"""The Versal AI-engine backend: cost model, BK lint family, roofline."""

import pytest

from repro.backend import BackendError, get_backend
from repro.backend.versal_aie import (
    VERSAL_VC1902_DEVICE,
    VersalCostModel,
    VersalDevice,
    VersalPoint,
    VersalSpace,
)
from repro.core.grid import Grid
from repro.errors import TuneError

GRID = Grid(nx=64, ny=64, nz=64)
BACKEND = get_backend("versal_aie")


def peak_point(**overrides) -> VersalPoint:
    values = dict(tile_columns=50, engines_per_column=8, vector_lanes=8,
                  buffering="double")
    values.update(overrides)
    return VersalPoint(**values)


class TestPoint:
    def test_key_and_round_trip(self):
        point = peak_point()
        assert point.key() == "tc50-ec8-vl8-double"
        assert BACKEND.point_from_dict(point.to_dict()) == point

    def test_num_kernels_is_tile_columns(self):
        # The CLI's --expect-kernels anchor reads num_kernels off the
        # winning point; for Versal that is the active tile columns.
        assert peak_point(tile_columns=25).num_kernels == 25

    def test_unknown_buffering_rejected(self):
        with pytest.raises(TuneError, match="buffering"):
            VersalPoint(tile_columns=1, engines_per_column=1,
                        vector_lanes=2, buffering="triple")


class TestSpace:
    def test_axes_respect_device_geometry(self):
        space = VersalSpace.derive(VERSAL_VC1902_DEVICE, GRID)
        assert max(space.tile_columns) == VERSAL_VC1902_DEVICE.columns
        assert max(space.engines_per_column) == VERSAL_VC1902_DEVICE.rows
        assert max(space.vector_lanes) == \
            VERSAL_VC1902_DEVICE.vector_lanes_max
        assert space.buffering == ("single", "double")

    def test_small_device_narrows_every_axis(self):
        small = VersalDevice(
            name="toy", columns=4, rows=2, clock_ghz=1.0,
            vector_lanes_max=4, plio_streams=12, plio_bytes_per_cycle=4,
            tile_local_bytes=32768, tile_neighbour_bytes=32768,
            static_watts=10.0, engine_watts=0.1, stream_watts=0.01,
        )
        space = VersalSpace.derive(small, GRID)
        assert space.tile_columns == (1, 2, 4)
        assert space.engines_per_column == (1, 2)
        assert space.vector_lanes == (2, 4)

    def test_strategies_see_the_axis_space_surface(self):
        space = VersalSpace.derive(VERSAL_VC1902_DEVICE, GRID)
        assert space.size == len(list(space.points()))
        first = space.point_at(0)
        assert first in set(space.points())
        assert all(n in set(space.points())
                   for n in space.neighbours(first))


class TestCostModel:
    def test_peak_point_is_feed_bound_at_projection_rate(self):
        model = VersalCostModel(VERSAL_VC1902_DEVICE, GRID)
        evaluation = model.evaluate(peak_point())
        assert evaluation.feasible
        assert evaluation.memory_bound  # feed-bound
        projection = VERSAL_VC1902_DEVICE.projection()
        assert evaluation.kernel_gflops == pytest.approx(
            projection.attainable_gflops(GRID.nz), rel=1e-9)

    def test_double_buffering_beats_single(self):
        model = VersalCostModel(VERSAL_VC1902_DEVICE, GRID)
        double = model.evaluate(peak_point())
        single = model.evaluate(peak_point(buffering="single"))
        assert double.kernel_gflops > single.kernel_gflops

    def test_narrow_vectors_go_compute_bound(self):
        model = VersalCostModel(VERSAL_VC1902_DEVICE, GRID)
        narrow = model.evaluate(peak_point(engines_per_column=1,
                                           vector_lanes=2))
        assert narrow.feasible
        assert not narrow.memory_bound
        assert narrow.kernel_gflops < \
            model.evaluate(peak_point()).kernel_gflops

    def test_flops_scale_moves_the_balance_point(self):
        device = VERSAL_VC1902_DEVICE
        base = VersalCostModel(device, GRID)
        scaled = VersalCostModel(device, GRID, flops_scale=2.0)
        assert base.evaluate(peak_point()).memory_bound  # feed-bound
        heavy = scaled.evaluate(peak_point())
        # Doubling the ops per cell at a fixed feed rate tips the peak
        # point over to compute-bound: it lands on the engine ceiling
        # (engines x lanes x clock), not on twice the feed roofline.
        assert not heavy.memory_bound
        compute_peak = device.engines * device.vector_lanes_max \
            * device.clock_hz / 1e9
        assert heavy.kernel_gflops == pytest.approx(compute_peak)

    def test_invalid_flops_scale_rejected(self):
        with pytest.raises(TuneError, match="flops_scale"):
            VersalCostModel(VERSAL_VC1902_DEVICE, GRID, flops_scale=0.0)


class TestBkLintFamily:
    def lint_codes(self, grid=GRID, **overrides):
        model = VersalCostModel(VERSAL_VC1902_DEVICE, grid)
        return model.lint_gate(peak_point(**overrides))

    def test_canonical_deployment_is_clean(self):
        assert self.lint_codes() == ()

    def test_bk101_non_power_of_two_lanes(self):
        assert "BK101" in self.lint_codes(vector_lanes=3)

    def test_bk101_lanes_beyond_datapath(self):
        assert "BK101" in self.lint_codes(vector_lanes=16)

    def test_bk102_single_buffering_is_a_warning_not_a_gate(self):
        # Single buffering costs throughput but is legal: the gate
        # (errors only) passes, while a full lint run surfaces BK102.
        assert self.lint_codes(buffering="single") == ()
        report = BACKEND.lint(GRID)
        assert not any(d.code == "BK102" for d in report.warnings)
        model = VersalCostModel(VERSAL_VC1902_DEVICE, GRID)
        from repro.lint.registry import LintContext
        from repro.lint.runner import run_lint

        report = run_lint(LintContext(backend_deployment=model.deployment(
            peak_point(buffering="single"))))
        assert any(d.code == "BK102" for d in report.warnings)

    def test_bk201_plio_budget(self):
        starved = VersalDevice(
            name="starved", columns=50, rows=8, clock_ghz=1.0,
            vector_lanes_max=8, plio_streams=90, plio_bytes_per_cycle=4,
            tile_local_bytes=32768, tile_neighbour_bytes=32768,
            static_watts=45.0, engine_watts=0.12, stream_watts=0.02,
        )
        model = VersalCostModel(starved, GRID)
        assert "BK201" in model.lint_gate(peak_point())
        assert "BK201" not in model.lint_gate(peak_point(tile_columns=25))

    def test_bk202_tall_columns_overflow_the_tile(self):
        # nz=96 at full vector width needs 2 x 3 x 4 x 96 x 4 x 8 =
        # 73728 bytes against a 65536-byte local+neighbour budget.
        tall = Grid(nx=64, ny=64, nz=96)
        assert "BK202" in self.lint_codes(grid=tall)
        # Narrowing the vectors shrinks the resident window back in.
        assert "BK202" not in self.lint_codes(grid=tall, vector_lanes=4)

    def test_bk301_geometry(self):
        assert "BK301" in self.lint_codes(tile_columns=64)

    def test_infeasible_points_reject_with_codes(self):
        model = VersalCostModel(VERSAL_VC1902_DEVICE,
                                Grid(nx=64, ny=64, nz=96))
        evaluation = model.evaluate(peak_point())
        assert not evaluation.feasible
        assert evaluation.reject_codes == ("BK202",)


class TestBackendSurface:
    def test_unique_best_point_under_tuning(self):
        from repro.tune.tuner import tune

        report = tune(None, GRID, backend="versal_aie", strategy="grid")
        assert report.backend == "versal_aie"
        assert report.best is not None
        assert report.best.point == peak_point()
        # Exactly one optimum: nothing else on the front matches its
        # kernel rate at equal-or-lower power.
        ties = [e for e in report.front
                if e.kernel_gflops == report.best.kernel_gflops
                and e.watts <= report.best.watts]
        assert ties == [report.best]

    def test_roofline_projection_consistency(self):
        roofline = BACKEND.roofline()
        assert roofline["projection_consistent"]
        assert roofline["attainable_gflops"] == pytest.approx(
            roofline["projection_attainable_gflops"], rel=1e-9)
        assert roofline["feed_bound"]

    def test_roofline_tracks_column_height(self):
        # Taller columns amortise the column-edge operations, so ops per
        # cell falls and so does the feed-bound attainable rate.
        shorter = BACKEND.roofline(column_height=32)
        taller = BACKEND.roofline(column_height=128)
        assert shorter["projection_consistent"]
        assert taller["projection_consistent"]
        assert shorter["attainable_gflops"] != \
            taller["attainable_gflops"]

    def test_lint_entry_point_uses_the_canonical_deployment(self):
        report = BACKEND.lint(GRID, num_kernels=25)
        assert "tc25-ec8-vl8-double" in report.subject
        assert not report.errors

    def test_structural_graph_is_verifier_clean(self):
        graph = BACKEND.structural_graph(GRID)
        graph.validate()
        assert not graph.structural_diagnostics()
        names = [stage.name for stage in graph.stages]
        assert "plio_u" in names and "mem_tile_out" in names

    def test_describe_carries_the_cross_check(self):
        model = VersalCostModel(VERSAL_VC1902_DEVICE, GRID)
        context = model.describe()
        assert context["projection_consistent"]
        assert context["model_attainable_gflops"] == \
            context["projection_attainable_gflops"]

    def test_price_scenario_infeasible_raises_backend_error(self):
        class Starved:
            pass

        starved = VersalDevice(
            name="starved", columns=1, rows=1, clock_ghz=1.0,
            vector_lanes_max=2, plio_streams=3, plio_bytes_per_cycle=4,
            tile_local_bytes=16, tile_neighbour_bytes=16,
            static_watts=1.0, engine_watts=0.1, stream_watts=0.01,
        )
        from repro.scenarios import get as get_scenario

        scenario = get_scenario("diffusion")
        with pytest.raises(BackendError, match="no feasible deployment"):
            BACKEND.price_scenario(scenario, device=starved)
