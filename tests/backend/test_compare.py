"""The cross-architecture Pareto front (GFLOPS vs watts)."""

import pytest

from repro.backend import get_backend
from repro.backend.compare import ArchitecturePoint, cross_architecture_front
from repro.backend.versal_aie import VERSAL_VC1902_DEVICE
from repro.core.grid import Grid

GRID = Grid(nx=64, ny=64, nz=64)


def versal_best():
    backend = get_backend("versal_aie")
    model = backend.cost_model(VERSAL_VC1902_DEVICE, GRID)
    return model.evaluate(backend.canonical_point(VERSAL_VC1902_DEVICE))


class TestFront:
    def test_all_five_architectures_present(self):
        front = cross_architecture_front(versal_best(), GRID)
        assert [p.architecture for p in front] == \
            ["versal", "gpu", "u280", "stratix10", "cpu"]

    def test_versal_is_pareto_optimal(self):
        front = cross_architecture_front(versal_best(), GRID)
        by_arch = {p.architecture: p for p in front}
        assert by_arch["versal"].on_front
        assert by_arch["versal"].kernel_gflops == \
            pytest.approx(versal_best().kernel_gflops)
        # The fastest entry is trivially on the front; dominated entries
        # (slower and hungrier than some other point) are not.
        fastest = front[0]
        assert fastest.on_front
        assert not by_arch["cpu"].on_front  # dominated by the U280

    def test_front_without_versal(self):
        front = cross_architecture_front(None, GRID)
        assert "versal" not in {p.architecture for p in front}
        assert len(front) == 4

    def test_flops_scale_rescales_every_architecture(self):
        base = {p.architecture: p.kernel_gflops
                for p in cross_architecture_front(None, GRID)}
        scaled = {p.architecture: p.kernel_gflops
                  for p in cross_architecture_front(None, GRID,
                                                    flops_scale=2.0)}
        # Host models are pure rate scalings; FPGA replicas re-price
        # but never get faster under a heavier kernel.
        assert scaled["cpu"] == pytest.approx(2.0 * base["cpu"])
        assert scaled["gpu"] == pytest.approx(2.0 * base["gpu"])

    def test_dominance_is_strict(self):
        # Two identical points must both stay on the front (neither
        # strictly dominates the other).
        a = ArchitecturePoint("a", "b", "d", 10.0, 5.0)
        b = ArchitecturePoint("b", "b", "d", 10.0, 5.0)
        points = [a, b]
        for entry in points:
            entry.on_front = not any(
                other is not entry
                and other.kernel_gflops >= entry.kernel_gflops
                and other.watts <= entry.watts
                and (other.kernel_gflops > entry.kernel_gflops
                     or other.watts < entry.watts)
                for other in points
            )
        assert a.on_front and b.on_front

    def test_to_dict_rounding(self):
        entry = cross_architecture_front(versal_best(), GRID)[0].to_dict()
        assert set(entry) == {"architecture", "backend", "device",
                              "kernel_gflops", "watts", "gflops_per_watt",
                              "detail", "on_front"}
