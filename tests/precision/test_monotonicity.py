"""Property: advection error is monotone in datapath precision."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import Grid
from repro.core.reference import advect_reference
from repro.core.wind import random_wind
from repro.precision.formats import FloatFormat
from repro.precision.kernel import advect_quantised


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000),
       coarse_bits=st.integers(8, 20))
def test_more_mantissa_bits_never_increase_error(seed, coarse_bits):
    """For any wind field, a datapath with more mantissa bits produces a
    result at least as close to the float64 reference (up to a small
    cross-rounding allowance: rounding error is stochastic per element,
    the norm comparison needs headroom of ~2x)."""
    grid = Grid(nx=4, ny=4, nz=4)
    fields = random_wind(grid, seed=seed, magnitude=2.0)
    reference = advect_reference(fields)

    coarse = FloatFormat("coarse", mantissa_bits=coarse_bits)
    fine = FloatFormat("fine", mantissa_bits=coarse_bits + 8)

    err_coarse = advect_quantised(fields, coarse).max_abs_difference(
        reference)
    err_fine = advect_quantised(fields, fine).max_abs_difference(reference)
    assert err_fine <= 2.0 * err_coarse / 2**7
    # And the coarse error itself is bounded by the format's granularity
    # times the number of rounded operations.
    scale = max(np.abs(reference.su).max(), np.abs(reference.sv).max(),
                np.abs(reference.sw).max(), 1e-30)
    assert err_coarse <= 64.0 * scale * 2.0 ** (-coarse_bits)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000), bits=st.integers(10, 44))
def test_quantised_path_deterministic(seed, bits):
    """The quantised datapath is a function: identical inputs, identical
    rounded outputs."""
    grid = Grid(nx=4, ny=4, nz=4)
    fields = random_wind(grid, seed=seed)
    fmt = FloatFormat("f", mantissa_bits=bits)
    a = advect_quantised(fields, fmt)
    b = advect_quantised(fields, fmt)
    assert a.max_abs_difference(b) == 0.0
