"""The reduced-precision advection datapath."""

import numpy as np
import pytest

from repro.core.coefficients import AdvectionCoefficients
from repro.core.grid import Grid
from repro.core.reference import advect_reference
from repro.core.wind import random_wind, thermal_bubble
from repro.precision import (
    BFLOAT16,
    FLOAT32,
    FLOAT64,
    FixedPointFormat,
    advect_quantised,
    precision_error_study,
)
from repro.precision.analysis import integration_drift


@pytest.fixture
def setup():
    grid = Grid(nx=6, ny=6, nz=6)
    fields = random_wind(grid, seed=5, magnitude=3.0)
    coeffs = AdvectionCoefficients.isothermal(grid)
    return grid, fields, coeffs


class TestQuantisedKernel:
    def test_float64_reproduces_reference_bitwise(self, setup):
        """With no rounding the quantised datapath IS the reference —
        pinning its operation ordering to the specification."""
        _, fields, coeffs = setup
        assert advect_quantised(fields, FLOAT64, coeffs).max_abs_difference(
            advect_reference(fields, coeffs)) == 0.0

    def test_float32_error_small(self, setup):
        _, fields, coeffs = setup
        report = precision_error_study(fields, FLOAT32, coeffs)
        assert 0.0 < report.max_rel_error < 1e-4
        assert report.max_abs_error < 1e-6 * report.reference_scale * 1e3

    def test_error_grows_as_precision_drops(self, setup):
        _, fields, coeffs = setup
        errors = [
            precision_error_study(fields, fmt, coeffs).rms_error
            for fmt in (FLOAT32, BFLOAT16)
        ]
        assert errors[1] > 100 * errors[0]

    def test_structural_zeros_preserved(self, setup):
        """Bottom-level and top-W zeros survive any quantisation."""
        _, fields, coeffs = setup
        out = advect_quantised(fields, BFLOAT16, coeffs)
        assert np.all(out.su[:, :, 0] == 0.0)
        assert np.all(out.sw[:, :, 0] == 0.0)
        assert np.all(out.sw[:, :, -1] == 0.0)

    def test_fixed_point_reasonable(self, setup):
        _, fields, coeffs = setup
        fmt = FixedPointFormat("q8.23", integer_bits=8, fraction_bits=23)
        report = precision_error_study(fields, fmt, coeffs)
        assert report.max_abs_error < 1e-4

    def test_mismatched_coeffs_rejected(self, setup):
        grid, fields, _ = setup
        wrong = AdvectionCoefficients.uniform(grid.with_size(nz=grid.nz + 1))
        with pytest.raises(ValueError):
            advect_quantised(fields, FLOAT32, wrong)


class TestErrorStudy:
    def test_report_fields(self, setup):
        _, fields, coeffs = setup
        report = precision_error_study(fields, FLOAT32, coeffs)
        assert report.format_name == "float32"
        assert report.bits == 32
        assert report.rms_error <= report.max_abs_error
        assert report.significant_digits > 4

    def test_float64_sixteen_digits(self, setup):
        _, fields, coeffs = setup
        report = precision_error_study(fields, FLOAT64, coeffs)
        assert report.max_abs_error == 0.0
        assert report.significant_digits == 16.0


class TestIntegrationDrift:
    def test_drift_zero_for_float64(self):
        grid = Grid(nx=5, ny=5, nz=5)
        fields = thermal_bubble(grid)
        drift = integration_drift(grid, fields, FLOAT64, steps=3, dt=0.5)
        assert drift == 0.0

    def test_drift_compounds_with_steps(self):
        grid = Grid(nx=5, ny=5, nz=5)
        fields = thermal_bubble(grid)
        d1 = integration_drift(grid, fields, BFLOAT16, steps=1, dt=0.5)
        d5 = integration_drift(grid, fields, BFLOAT16, steps=5, dt=0.5)
        assert d5 > d1 > 0.0

    def test_float32_drift_below_bfloat16(self):
        grid = Grid(nx=5, ny=5, nz=5)
        fields = thermal_bubble(grid)
        d32 = integration_drift(grid, fields, FLOAT32, steps=4, dt=0.5)
        d16 = integration_drift(grid, fields, BFLOAT16, steps=4, dt=0.5)
        assert d16 > 100 * d32
