"""Number-format quantisers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.precision.formats import (
    BFLOAT16,
    FLOAT32,
    FLOAT64,
    FixedPointFormat,
    FloatFormat,
)


class TestFloatFormats:
    def test_float64_is_identity(self):
        values = np.array([1.0, -2.5, 1e-300, 3.14159265358979])
        np.testing.assert_array_equal(FLOAT64.quantise(values), values)

    def test_float32_matches_numpy_cast(self):
        values = np.random.default_rng(0).normal(size=100)
        expected = values.astype(np.float32).astype(np.float64)
        np.testing.assert_array_equal(FLOAT32.quantise(values), expected)

    def test_bfloat16_error_bounded_by_ulp(self):
        values = np.random.default_rng(1).uniform(0.5, 2.0, size=1000)
        q = BFLOAT16.quantise(values)
        # 7 explicit mantissa bits: relative error <= 2^-8 for values in
        # [0.5, 2) after round-to-nearest.
        assert np.abs(q - values).max() <= 2.0**-8 * 2.0

    def test_zero_preserved_exactly(self):
        assert FLOAT32.quantise(0.0) == 0.0
        assert BFLOAT16.quantise(np.array([0.0]))[0] == 0.0

    def test_sign_symmetry(self):
        values = np.random.default_rng(2).normal(size=50)
        np.testing.assert_array_equal(
            BFLOAT16.quantise(-values), -BFLOAT16.quantise(values))

    def test_scalar_returns_float(self):
        out = FLOAT32.quantise(1.23456789)
        assert isinstance(out, float)

    def test_bit_counts(self):
        assert FLOAT64.bits == 64
        assert FLOAT32.bits == 32
        assert BFLOAT16.bits == 16

    def test_idempotent(self):
        values = np.random.default_rng(3).normal(size=200)
        once = BFLOAT16.quantise(values)
        np.testing.assert_array_equal(BFLOAT16.quantise(once), once)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FloatFormat("bad", mantissa_bits=0)
        with pytest.raises(ConfigurationError):
            FloatFormat("bad", mantissa_bits=10, exponent_bits=1)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=-1e6, max_value=1e6,
                     allow_nan=False, allow_subnormal=False),
           st.integers(5, 45))
    def test_property_error_within_half_ulp(self, value, mantissa_bits):
        fmt = FloatFormat("t", mantissa_bits=mantissa_bits)
        q = fmt.quantise(value)
        if value == 0.0:
            assert q == 0.0
            return
        ulp = abs(value) * 2.0 ** (-mantissa_bits)
        assert abs(q - value) <= ulp


class TestFixedPoint:
    def test_q_format_rounding(self):
        fmt = FixedPointFormat("q4.4", integer_bits=4, fraction_bits=4)
        assert fmt.scale == pytest.approx(1 / 16)
        assert fmt.quantise(1.03) == pytest.approx(1.0)      # nearest 1/16
        assert fmt.quantise(1.04) == pytest.approx(1.0625)   # next tick up
        assert fmt.quantise(1.0) == 1.0

    def test_saturation(self):
        fmt = FixedPointFormat("q2.2", integer_bits=2, fraction_bits=2)
        assert fmt.quantise(100.0) == fmt.max_value == pytest.approx(3.75)
        assert fmt.quantise(-100.0) == fmt.min_value == pytest.approx(-4.0)

    def test_representable(self):
        fmt = FixedPointFormat("q2.2", integer_bits=2, fraction_bits=2)
        assert fmt.representable(np.array([1.0, -3.0]))
        assert not fmt.representable(np.array([1.0, 5.0]))

    def test_bits(self):
        assert FixedPointFormat("q8.23", 8, 23).bits == 32

    def test_idempotent(self):
        fmt = FixedPointFormat("q8.8", 8, 8)
        values = np.random.default_rng(4).uniform(-200, 200, size=100)
        once = fmt.quantise(values)
        np.testing.assert_array_equal(fmt.quantise(once), once)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedPointFormat("bad", -1, 4)
        with pytest.raises(ConfigurationError):
            FixedPointFormat("bad", 0, 0)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=-100, max_value=100, allow_nan=False),
           st.integers(0, 20))
    def test_property_error_within_half_lsb(self, value, fraction_bits):
        fmt = FixedPointFormat("t", integer_bits=8,
                               fraction_bits=fraction_bits)
        q = fmt.quantise(value)
        assert abs(q - value) <= fmt.scale / 2 + 1e-15
