"""Precision-dependent resource projection (the §V question)."""

import pytest

from repro.core.grid import Grid
from repro.hardware import ALVEO_U280, STRATIX10_GX2800
from repro.kernel.config import KernelConfig
from repro.precision import (
    BFLOAT16,
    FLOAT32,
    FLOAT64,
    precision_fit_report,
    precision_kernel_resources,
)
from repro.precision.resources import sanity_check_float64


@pytest.fixture(scope="module")
def config():
    return KernelConfig(grid=Grid.from_cells(16 * 1024 * 1024))


class TestResourceScaling:
    def test_float64_is_identity(self, config):
        assert sanity_check_float64(config, ALVEO_U280)
        assert sanity_check_float64(config, STRATIX10_GX2800)

    def test_narrower_formats_shrink_everything(self, config):
        base = precision_kernel_resources(config, ALVEO_U280, FLOAT64)
        f32 = precision_kernel_resources(config, ALVEO_U280, FLOAT32)
        bf16 = precision_kernel_resources(config, ALVEO_U280, BFLOAT16)
        assert bf16.dsp < f32.dsp < base.dsp
        assert bf16.luts < f32.luts < base.luts
        assert bf16.bram_bytes < f32.bram_bytes < base.bram_bytes

    def test_buffer_scales_linearly_with_bits(self, config):
        base = precision_kernel_resources(config, ALVEO_U280, FLOAT64)
        f32 = precision_kernel_resources(config, ALVEO_U280, FLOAT32)
        assert f32.bram_bytes == pytest.approx(base.bram_bytes / 2, rel=0.01)

    def test_multipliers_scale_quadratically(self, config):
        base = precision_kernel_resources(config, ALVEO_U280, FLOAT64)
        f32 = precision_kernel_resources(config, ALVEO_U280, FLOAT32)
        # DSP cost is 80% quadratic-multiplier dominated: float32's
        # (24/53)^2 ~ 0.205 gives roughly a 3.5-4x reduction.
        assert base.dsp / f32.dsp > 3.0


class TestFitReports:
    def test_paper_motivation_more_kernels_fit(self, config):
        """§V: reduced precision 'enabling more kernels to be fitted'."""
        for device in (ALVEO_U280, STRATIX10_GX2800):
            report = precision_fit_report(config, device, FLOAT32)
            assert report.kernels_fit > report.kernels_fit_float64
            assert report.extra_kernels > 0

    def test_float64_report_matches_baseline(self, config):
        report = precision_fit_report(config, ALVEO_U280, FLOAT64)
        assert report.kernels_fit == report.kernels_fit_float64 == 6

    def test_projected_peak_scales_with_fit(self, config):
        f64 = precision_fit_report(config, ALVEO_U280, FLOAT64)
        f32 = precision_fit_report(config, ALVEO_U280, FLOAT32)
        assert f32.projected_peak_gflops > 2 * f64.projected_peak_gflops

    def test_bfloat16_fits_dozens(self, config):
        report = precision_fit_report(config, ALVEO_U280, BFLOAT16)
        assert report.kernels_fit >= 20
