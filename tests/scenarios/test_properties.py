"""Property tests: random scenario configurations stay bit-identical.

Hypothesis draws random grid shapes from each scenario's grid-family
bounds (plus random field seeds) and asserts the engine invariant on
every draw: batched exact equals forced-scalar equals the NumPy
reference, byte for byte.  Random shapes have no structure for an
off-by-one to hide behind.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.fields import SOURCE_NAMES
from repro.core.grid import Grid
from repro.scenarios import get

_SLOW = (HealthCheck.too_slow,)


def grid_for(scenario_name: str, draw) -> Grid:
    """A random grid inside the scenario's declared family bounds."""
    bounds = get(scenario_name).grids.bounds
    dims = [draw(st.integers(min_value=lo, max_value=hi))
            for lo, hi in bounds]
    return Grid(nx=dims[0], ny=dims[1], nz=dims[2])


def assert_modes_agree(scenario_name: str, grid: Grid, seed: int) -> None:
    scenario = get(scenario_name)
    scalar = scenario.run(grid, seed=seed, mode="exact", batched=False)
    batched = scenario.run(grid, seed=seed, mode="exact", batched=True)
    references = scenario.reference(grid, seed=seed)
    assert scalar.total_cycles == batched.total_cycles
    for out_s, out_b, ref in zip(scalar.batches, batched.batches,
                                 references):
        for name in SOURCE_NAMES:
            np.testing.assert_array_equal(getattr(out_s, name),
                                          getattr(out_b, name))
            np.testing.assert_array_equal(getattr(out_s, name),
                                          getattr(ref, name))


class TestRandomConfigurations:
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None, suppress_health_check=_SLOW)
    def test_diffusion(self, data, seed):
        grid = grid_for("diffusion", data.draw)
        assert_modes_agree("diffusion", grid, seed)

    @given(data=st.data(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None, suppress_health_check=_SLOW)
    def test_buoyancy(self, data, seed):
        grid = grid_for("buoyancy", data.draw)
        assert_modes_agree("buoyancy", grid, seed)

    @given(data=st.data(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=4, deadline=None, suppress_health_check=_SLOW)
    def test_advection_cubic(self, data, seed):
        grid = grid_for("pw-advection", data.draw)
        assert_modes_agree("pw-advection", grid, seed)

    @given(data=st.data(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=4, deadline=None, suppress_health_check=_SLOW)
    def test_advection_open_boundary(self, data, seed):
        grid = grid_for("pw-advection-open", data.draw)
        assert_modes_agree("pw-advection-open", grid, seed)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=4, deadline=None, suppress_health_check=_SLOW)
    def test_batch_scenario(self, seed):
        scenario = get("diffusion-batch")
        assert_modes_agree("diffusion-batch", scenario.small_grid(), seed)

    @given(data=st.data())
    @settings(max_examples=10, deadline=None, suppress_health_check=_SLOW)
    def test_derived_peak_matches_family_height(self, data):
        """ops/cycle derives from whatever column height is drawn."""
        grid = grid_for("pw-advection-tall", data.draw)
        model = get("pw-advection-tall").kernel.op_model
        expected = ((grid.nz - 1) * 63 + 55) / grid.nz
        assert model.ops_per_cycle(grid.nz) == expected
