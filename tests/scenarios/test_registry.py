"""The scenario registry: builtins, validation, and CLI coverage."""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    GridFamily,
    Scenario,
    get,
    names,
    register,
    scenarios,
    unregistered_cli_kernels,
)
from repro.scenarios.registry import CLI_KERNEL_MODULES

EXPECTED_BUILTINS = (
    "buoyancy",
    "diffusion",
    "diffusion-batch",
    "pw-advection",
    "pw-advection-open",
    "pw-advection-tall",
)


class TestRegistry:
    def test_builtin_suite(self):
        assert names() == EXPECTED_BUILTINS

    def test_suite_spans_the_required_axes(self):
        kinds = {s.kernel.kind for s in scenarios()}
        assert kinds == {"advection", "diffusion", "buoyancy"}
        assert any(s.boundary == "open" for s in scenarios())
        assert any(s.batch > 1 for s in scenarios())
        heights = {s.grids.column_height for s in scenarios()}
        assert len(heights) >= 3  # cubic, tall, flat families

    def test_get_unknown_is_a_helpful_error(self):
        with pytest.raises(ConfigurationError, match="registered:"):
            get("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        existing = get("diffusion")
        with pytest.raises(ConfigurationError, match="already registered"):
            register(existing)
        # Explicit replacement is allowed (and is a no-op here).
        assert register(existing, replace=True) is existing

    def test_grids_construct_and_respect_bounds(self):
        """Both named shapes build; the conformance (small) shape must
        fall inside the property-test draw bounds.  The CLI default may
        exceed them — bounds price forced-scalar runs, defaults don't."""
        for scenario in scenarios():
            default = scenario.default_grid()
            small = scenario.small_grid()
            assert scenario.grids.contains(small)
            assert small.num_cells <= default.num_cells

    def test_to_dict_shape(self):
        payload = get("pw-advection").to_dict()
        for key in ("name", "kind", "boundary", "wind", "batch",
                    "fast_admissible", "op_model", "ops_per_cycle",
                    "grid_family"):
            assert key in payload
        assert payload["kind"] == "advection"
        assert payload["fast_admissible"] is True

    def test_open_boundary_rebuilds_zero_halos(self):
        scenario = get("pw-advection-open")
        fields = scenario.make_fields(scenario.small_grid())
        assert float(abs(fields.u[0, :, :]).max()) == 0.0
        assert float(abs(fields.u[-1, :, :]).max()) == 0.0

    def test_batches_draw_distinct_fields(self):
        scenario = get("diffusion-batch")
        grid = scenario.small_grid()
        first = scenario.make_fields(grid, seed=0, batch_index=0)
        second = scenario.make_fields(grid, seed=0, batch_index=1)
        assert not (first.u == second.u).all()


class TestScenarioValidation:
    def _family(self):
        return GridFamily("t", default=(4, 4, 4), small=(3, 3, 3),
                          bounds=((3, 8), (3, 8), (3, 8)))

    def test_bad_boundary(self):
        with pytest.raises(ConfigurationError, match="boundary"):
            Scenario(name="x", title="t", description="d",
                     kernel=get("diffusion").kernel, grids=self._family(),
                     boundary="reflecting")

    def test_bad_wind(self):
        with pytest.raises(ConfigurationError, match="wind"):
            Scenario(name="x", title="t", description="d",
                     kernel=get("diffusion").kernel, grids=self._family(),
                     wind="hurricane")

    def test_bad_batch(self):
        with pytest.raises(ConfigurationError, match="batch"):
            Scenario(name="x", title="t", description="d",
                     kernel=get("diffusion").kernel, grids=self._family(),
                     batch=0)

    def test_grid_family_needs_vertical_stencil_room(self):
        with pytest.raises(ConfigurationError, match="nz"):
            GridFamily("bad", default=(4, 4, 2), small=(3, 3, 3),
                       bounds=((3, 8), (3, 8), (3, 8)))


class TestCliCoverage:
    def test_every_cli_kernel_is_registered(self):
        """A kernel reachable from ``repro`` must be in the suite."""
        assert unregistered_cli_kernels() == ()

    def test_module_map_names_real_modules(self):
        import importlib

        for module in CLI_KERNEL_MODULES:
            importlib.import_module(module)
