"""The derived ops-per-cycle model: 62.875 is a theorem, not a constant.

The paper quotes 62.875 operations per cycle for the advection kernel at
the MONC default column height of 64.  The reproduction *derives* that
figure from the per-cell operation model and the column height
(:func:`repro.constants.derived_ops_per_cycle`); these tests pin the
derivation at the paper's point and check it composes for every kernel
in the scenario suite.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants
from repro.core.buoyancy import (
    BUOYANCY_OPS_PER_CELL,
    BUOYANCY_OPS_PER_TOP_CELL,
)
from repro.core.diffusion import DIFFUSION_OPS_PER_CELL
from repro.core.grid import Grid
from repro.errors import ConfigurationError
from repro.lint.registry import LintContext
from repro.lint.runner import run_lint
from repro.observe.opscycle import OpsPerCycleReport
from repro.scenarios import OpModel, get


class TestDerivedOpsPerCycle:
    def test_paper_figure_at_default_height(self):
        """The quoted 62.875 falls out of the 63/55 model at h = 64."""
        assert constants.derived_ops_per_cycle(64) == 62.875
        assert constants.derived_ops_per_cycle(
            constants.DEFAULT_COLUMN_HEIGHT) == 62.875

    def test_historical_alias_stays_in_lock_step(self):
        for height in (2, 3, 8, 64, 96, 128):
            assert constants.average_ops_per_cycle(height) == \
                constants.derived_ops_per_cycle(height)

    @given(height=st.integers(min_value=2, max_value=4096))
    @settings(max_examples=60, deadline=None)
    def test_composes_from_the_operation_model(self, height):
        derived = constants.derived_ops_per_cycle(height)
        composed = ((height - 1) * constants.OPS_PER_CELL
                    + constants.OPS_PER_TOP_CELL) / height
        assert derived == composed
        # The one-sided top only ever costs, never gains.
        assert derived <= constants.OPS_PER_CELL

    def test_tends_to_interior_count_on_tall_columns(self):
        """Deep columns amortise the top saving toward the 63-op cell."""
        shallow = constants.derived_ops_per_cycle(4)
        deep = constants.derived_ops_per_cycle(1024)
        assert shallow < deep < constants.OPS_PER_CELL

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            constants.derived_ops_per_cycle(1)
        with pytest.raises(ConfigurationError):
            constants.derived_ops_per_cycle(64, ops_per_cell=0)

    def test_lint_rule_ac305_passes(self):
        """The accounting family pins the derivation in every lint run."""
        report = run_lint(LintContext(), select=["AC305"])
        assert not report.diagnostics


class TestOpModel:
    def test_advection_model_reproduces_the_paper(self):
        model = OpModel(63, 55)
        assert model.ops_per_cycle(64) == 62.875
        assert model.flops_scale == 1.0
        grid = Grid(nx=4, ny=5, nz=64)
        assert model.grid_flops(grid) == 20 * (63 * 63 + 55)

    def test_scenario_models_scale(self):
        diffusion = get("diffusion").kernel.op_model
        buoyancy = get("buoyancy").kernel.op_model
        assert diffusion.ops_per_cell == DIFFUSION_OPS_PER_CELL
        assert buoyancy.ops_per_cell == BUOYANCY_OPS_PER_CELL
        assert buoyancy.ops_per_top_cell == BUOYANCY_OPS_PER_TOP_CELL
        # Ops intensity spans both sides of unity across the suite.
        assert buoyancy.flops_scale < diffusion.flops_scale < 1.0

    def test_column_height_is_a_live_axis(self):
        """Different grid families yield different derived peaks."""
        cubic = get("pw-advection")
        tall = get("pw-advection-tall")
        assert cubic.ops_per_cycle != tall.ops_per_cycle
        assert tall.ops_per_cycle == \
            constants.derived_ops_per_cycle(tall.grids.column_height)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OpModel(0, 55)
        with pytest.raises(ConfigurationError):
            OpModel(63, 55).column_flops(1)


class TestReportUsesTheModel:
    def test_theoretical_peak_derives_per_kernel(self):
        report = OpsPerCycleReport(cycles=100, flops=500, column_height=64)
        assert report.theoretical_ops_per_cycle == 62.875
        scenario = OpsPerCycleReport(
            cycles=100, flops=500, column_height=10,
            ops_per_cell=45, ops_per_top_cell=45)
        assert scenario.theoretical_ops_per_cycle == 45.0
        assert scenario.to_dict()["ops_per_cell"] == 45
