"""The cross-mode conformance harness, run over the whole registry.

This is the suite's enforcement arm: every registered scenario must be
bit-identical across forced-scalar exact, batched exact and fast modes
(against the NumPy reference), agree under an injected fault plan, pass
lint, and carry a static deadlock-freedom proof.  A scenario that fails
any leg cannot ship.
"""

import dataclasses

import pytest

from repro.dataflow.engine import RunStats
from repro.scenarios import get, names, run_conformance, run_suite
from repro.scenarios.conformance import CHECKS, STATS_BATCH_KEYS


@pytest.mark.parametrize("name", names())
class TestEveryScenarioConforms:
    def test_all_checks_pass(self, name):
        entry = run_conformance(get(name))
        failures = [f"{r.check}: {r.detail}" for r in entry.results
                    if not r.ok]
        assert entry.ok, f"{name} failed conformance: {failures}"
        assert [r.check for r in entry.results] == list(CHECKS)


class TestHarnessMechanics:
    def test_stats_batch_keys_exist(self):
        """The exclusion list must track RunStats' actual dict shape."""
        keys = set(RunStats(cycles=0).to_dict())
        assert STATS_BATCH_KEYS <= keys

    def test_suite_report_shapes(self):
        report = run_suite(("buoyancy",))
        assert report.ok
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["scenarios"][0]["scenario"] == "buoyancy"
        text = report.render_text()
        assert "1/1 scenarios" in text

    def test_failures_render_with_detail(self):
        report = run_suite(("buoyancy",))
        entry = report.entries[0]
        entry.results[0] = dataclasses.replace(
            entry.results[0], ok=False, detail="synthetic failure")
        assert not report.ok
        assert "synthetic failure" in report.render_text()

    def test_seed_changes_the_fault_leg_deterministically(self):
        """Same scenario, same seed: identical fault traces each time."""
        scenario = get("diffusion")
        first = scenario.fault_plan(seed=3)
        second = scenario.fault_plan(seed=3)
        grid = scenario.small_grid()
        for plan in (first, second):
            try:
                scenario.run(grid, mode="exact", batched=False,
                             fault_plan=plan)
            except Exception:
                pass
        assert first.trace_key() == second.trace_key()

    def test_fast_inadmissible_kernels_record_their_veto(self):
        """The harness asserts the veto *fires*; double-check directly."""
        scenario = get("diffusion")
        result = scenario.run(scenario.small_grid(), mode="fast",
                              batched=False)
        assert not scenario.kernel.fast_admissible
        assert result.stats.ff_veto_reason

    def test_advection_fast_forward_is_admissible(self):
        scenario = get("pw-advection")
        result = scenario.run(scenario.small_grid(), mode="fast",
                              batched=False)
        assert scenario.kernel.fast_admissible
        assert not result.stats.ff_veto_reason
        assert result.stats.ff_advances > 0
