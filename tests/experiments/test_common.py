"""Experiment-harness plumbing: workloads, runner, run_all."""

import pytest

from repro import constants
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.common import (
    MULTI_KERNEL_SIZES,
    TABLE2_SIZES,
    paper_grid,
    standard_config,
)
from repro.experiments.run_all import main as run_all_main


class TestWorkloads:
    def test_paper_grid_sizes_match_labels(self):
        for label, cells in constants.PAPER_GRID_LABELS.items():
            grid = paper_grid(label)
            assert abs(grid.num_cells - cells) / cells < 0.01

    def test_unknown_label_rejected(self):
        with pytest.raises(ExperimentError):
            paper_grid("3M")

    def test_standard_config_defaults(self):
        config = standard_config()
        assert config.grid.nz == constants.DEFAULT_COLUMN_HEIGHT
        assert config.shift_buffer_ii == 1
        assert config.word_bytes == 8

    def test_sweep_sizes_are_paper_sizes(self):
        assert set(MULTI_KERNEL_SIZES) <= set(constants.PAPER_GRID_LABELS)
        assert set(TABLE2_SIZES) <= set(constants.PAPER_GRID_LABELS)


class TestRunAll:
    def test_run_all_single(self, capsys):
        assert run_all_main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "paper-vs-measured" in out

    def test_run_all_everything(self, capsys):
        assert run_all_main([]) == 0
        out = capsys.readouterr().out
        for marker in ("Table I", "Table II", "Fig. 5", "Fig. 6",
                       "Fig. 7", "Fig. 8"):
            assert marker in out


class TestConstants:
    def test_average_ops_rejects_short_column(self):
        with pytest.raises(ConfigurationError):
            constants.average_ops_per_cycle(1)

    def test_transfer_payload_constant(self):
        # 6 fields x 8 bytes x ~16.78M cells ~= 800 MB (section IV).
        assert constants.PAPER_16M_TRANSFER_BYTES == pytest.approx(
            805e6, rel=0.01)
