"""Report rendering helpers."""

from repro.experiments.report import comparison_table, csv_table, text_table
from repro.perf.metrics import compare_to_paper


class TestTextTable:
    def test_alignment_and_headers(self):
        out = text_table(["a", "bb"], [(1, 2.5), (10, 3.25)])
        lines = out.splitlines()
        assert lines[0].endswith("bb")
        assert "----" in lines[1].replace("  ", "----")[:4] or "-" in lines[1]
        assert "2.50" in out and "3.25" in out

    def test_title_prepended(self):
        out = text_table(["x"], [(1,)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_none_rendered_as_dashes(self):
        out = text_table(["x", "y"], [("row", None)])
        assert "--" in out

    def test_precision(self):
        out = text_table(["x"], [(3.14159,)], precision=4)
        assert "3.1416" in out

    def test_empty_rows(self):
        out = text_table(["a", "b"], [])
        assert "a" in out and "b" in out


class TestCsvTable:
    def test_header_and_rows(self):
        out = csv_table(["a", "b"], [(1, 2.0)])
        lines = out.splitlines()
        assert lines[0] == "a,b"
        assert lines[1].startswith("1,2")

    def test_none_as_dashes(self):
        assert "--" in csv_table(["a"], [(None,)])


class TestComparisonTable:
    def test_contains_deviation_column(self):
        out = comparison_table([compare_to_paper("x", 11.0, 10.0)])
        assert "+10.0%" in out
        assert "measured" in out and "paper" in out
