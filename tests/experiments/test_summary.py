"""The JSON summary and reproduction scorecard."""

import json

import pytest

from repro.experiments.summary import (
    build_scorecard,
    build_summary,
    write_summary,
)


@pytest.fixture(scope="module")
def summary():
    return build_summary()


class TestSummary:
    def test_all_experiments_present(self, summary):
        assert set(summary["experiments"]) == {
            "table1", "table2", "fig5", "fig6", "fig7", "fig8",
        }

    def test_rows_and_headers_consistent(self, summary):
        for experiment in summary["experiments"].values():
            for row in experiment["rows"]:
                assert len(row) == len(experiment["headers"])

    def test_comparisons_have_kinds(self, summary):
        kinds = {
            c["kind"]
            for e in summary["experiments"].values()
            for c in e["comparisons"]
        }
        assert kinds == {"quantitative", "ordering"}

    def test_json_serialisable(self, summary, tmp_path):
        path = write_summary(tmp_path / "summary.json")
        loaded = json.loads(path.read_text())
        assert set(loaded["experiments"]) == set(summary["experiments"])


class TestScorecard:
    def test_full_reproduction(self, summary):
        """The headline: every published number within 15%, every ordering
        claim holding."""
        card = build_scorecard(summary)
        assert card.match_fraction == 1.0
        assert card.within_tolerance == card.quantitative
        assert card.orderings_holding == card.orderings

    def test_counts(self, summary):
        card = build_scorecard(summary)
        assert card.experiments == 6
        assert card.quantitative >= 10
        assert card.orderings >= 4

    def test_tight_tolerance_flags_worst(self, summary):
        card = build_scorecard(summary, tolerance_pct=0.01)
        assert card.within_tolerance < card.quantitative
        assert card.worst_error_pct != 0.0
        assert card.worst_label

    def test_summary_line_readable(self, summary):
        line = build_scorecard(summary).summary_line()
        assert "ordering claims" in line
        assert "artefacts" in line
