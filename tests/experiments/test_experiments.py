"""The experiment harness: every table/figure regenerates with the paper's
qualitative shape."""

import pytest

from repro.experiments.registry import (
    EXPERIMENTS,
    all_experiment_ids,
    run_experiment,
)
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def results():
    return {eid: run_experiment(eid) for eid in all_experiment_ids()}


class TestRegistry:
    def test_all_artefacts_registered(self, results):
        assert set(results) == {"table1", "table2", "fig5", "fig6", "fig7",
                                "fig8"}

    def test_unknown_id_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("table9")

    def test_duplicate_registration_rejected(self):
        from repro.experiments.registry import register

        with pytest.raises(ExperimentError):
            register("table1")(lambda: None)

    def test_results_have_text_and_rows(self, results):
        for result in results.values():
            assert result.text
            assert result.rows
            assert len(result.headers) == len(result.rows[0])

    def test_row_dict(self, results):
        rows = results["table1"].row_dict()
        assert rows[0]["description"] == "1 core of Xeon CPU"


class TestTable1Shape:
    def test_row_ordering_matches_paper(self, results):
        descriptions = [row[0] for row in results["table1"].rows]
        assert descriptions == [
            "1 core of Xeon CPU", "24 core Xeon CPU", "NVIDIA V100 GPU",
            "Xilinx Alveo U280", "Intel Stratix 10",
        ]

    def test_all_within_two_percent_of_paper(self, results):
        for comparison in results["table1"].comparisons:
            assert comparison.within(2.0), str(comparison)

    def test_gpu_dominates_kernel_only(self, results):
        by_name = {row[0]: row[1] for row in results["table1"].rows}
        assert by_name["NVIDIA V100 GPU"] > 10 * by_name["Intel Stratix 10"]


class TestTable2Shape:
    def test_hbm_beats_ddr_at_every_size(self, results):
        for _, hbm, ddr, overhead in results["table2"].rows:
            assert hbm > ddr
            assert 30.0 < overhead < 50.0  # paper: 39-46%

    def test_within_twelve_percent_of_paper(self, results):
        for comparison in results["table2"].comparisons:
            assert comparison.within(12.0), str(comparison)


class TestFig5Shape:
    def test_stratix_beats_u280_without_overlap(self, results):
        for row in results["fig5"].rows:
            by = dict(zip(results["fig5"].headers, row))
            assert by["Stratix 10"] > by["Alveo U280"]

    def test_cpu_competitive_without_overlap(self, results):
        """Without overlap the accelerators drown in PCIe transfer; the
        host-resident CPU needs none."""
        for row in results["fig5"].rows:
            by = dict(zip(results["fig5"].headers, row))
            assert by["24-core Xeon"] > by["Stratix 10"]

    def test_transfer_ratio_near_two(self, results):
        (comparison,) = results["fig5"].comparisons
        assert comparison.within(15.0)

    def test_no_gpu_at_536m(self, results):
        last = dict(zip(results["fig5"].headers, results["fig5"].rows[-1]))
        assert last["grid cells"] == "536M"
        assert last["V100 GPU"] is None


class TestFig6Shape:
    def test_gpu_wins_everywhere_it_fits(self, results):
        for row in results["fig6"].rows:
            by = dict(zip(results["fig6"].headers, row))
            if by["V100 GPU"] is None:
                continue
            assert by["V100 GPU"] > by["Alveo U280"]
            assert by["V100 GPU"] > by["Stratix 10"]
            assert by["V100 GPU"] > by["24-core Xeon"]

    def test_u280_beats_stratix_until_ddr(self, results):
        rows = {row[0]: dict(zip(results["fig6"].headers, row))
                for row in results["fig6"].rows}
        assert rows["16M"]["Alveo U280"] > rows["16M"]["Stratix 10"]
        assert rows["67M"]["Alveo U280"] > rows["67M"]["Stratix 10"]
        assert rows["268M"]["Alveo U280"] < rows["268M"]["Stratix 10"]
        assert rows["536M"]["Alveo U280"] < rows["536M"]["Stratix 10"]

    def test_u280_drops_sharply_at_ddr_sizes(self, results):
        rows = {row[0]: dict(zip(results["fig6"].headers, row))
                for row in results["fig6"].rows}
        assert rows["268M"]["Alveo U280"] < 0.6 * rows["67M"]["Alveo U280"]

    def test_fpgas_considerably_outperform_cpu(self, results):
        """The abstract's headline claim, true only with overlap."""
        for row in results["fig6"].rows:
            by = dict(zip(results["fig6"].headers, row))
            assert by["Stratix 10"] > 1.5 * by["24-core Xeon"]

    def test_overlap_beats_no_overlap_everywhere(self, results):
        fig5 = {row[0]: dict(zip(results["fig5"].headers, row))
                for row in results["fig5"].rows}
        fig6 = {row[0]: dict(zip(results["fig6"].headers, row))
                for row in results["fig6"].rows}
        for size in fig5:
            for device in ("V100 GPU", "Alveo U280", "Stratix 10"):
                if fig5[size][device] is None:
                    continue
                assert fig6[size][device] > fig5[size][device]


class TestFig7Shape:
    def test_fpgas_draw_least(self, results):
        for row in results["fig7"].rows:
            by = dict(zip(results["fig7"].headers, row))
            assert by["Alveo U280"] < by["Stratix 10"]
            assert by["Stratix 10"] < by["24-core Xeon"]
            if by["V100 GPU"] is not None:
                assert by["Alveo U280"] < by["V100 GPU"]

    def test_stratix_about_fifty_percent_more_than_alveo(self, results):
        first = dict(zip(results["fig7"].headers, results["fig7"].rows[0]))
        ratio = first["Stratix 10"] / first["Alveo U280"]
        assert 1.4 < ratio < 1.7

    def test_u280_ddr_step_of_12w(self, results):
        rows = {row[0]: dict(zip(results["fig7"].headers, row))
                for row in results["fig7"].rows}
        delta = rows["268M"]["Alveo U280"] - rows["16M"]["Alveo U280"]
        assert delta == pytest.approx(12.0, abs=1.0)


class TestFig8Shape:
    def test_cpu_least_efficient(self, results):
        for row in results["fig8"].rows:
            by = dict(zip(results["fig8"].headers, row))
            for device in ("V100 GPU", "Alveo U280", "Stratix 10"):
                if by[device] is not None:
                    assert by["24-core Xeon"] < by[device]

    def test_u280_about_double_stratix_until_ddr(self, results):
        rows = {row[0]: dict(zip(results["fig8"].headers, row))
                for row in results["fig8"].rows}
        for size in ("16M", "67M"):
            ratio = rows[size]["Alveo U280"] / rows[size]["Stratix 10"]
            assert 1.5 < ratio < 2.5
        # After the DDR fallback the U280 drops below the Stratix.
        assert rows["268M"]["Alveo U280"] < rows["268M"]["Stratix 10"]

    def test_stratix_vs_gpu_crossover(self, results):
        rows = {row[0]: dict(zip(results["fig8"].headers, row))
                for row in results["fig8"].rows}
        assert rows["16M"]["Stratix 10"] > rows["16M"]["V100 GPU"]
        assert rows["268M"]["V100 GPU"] >= rows["268M"]["Stratix 10"]
