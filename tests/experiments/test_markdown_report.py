"""The generated markdown reproduction report."""

import pytest

from repro.experiments.markdown_report import (
    main,
    render_markdown_report,
    write_markdown_report,
)


@pytest.fixture(scope="module")
def report():
    return render_markdown_report()


class TestReportContent:
    def test_all_artefacts_present(self, report):
        for title in ("Table I", "Table II", "Fig. 5", "Fig. 6", "Fig. 7",
                      "Fig. 8"):
            assert title in report

    def test_scorecard_at_top(self, report):
        head = report.splitlines()[:8]
        assert any("Scorecard" in line for line in head)

    def test_tables_are_markdown(self, report):
        assert "|---|" in report
        assert "| grid cells |" in report

    def test_missing_gpu_point_rendered_as_dash(self, report):
        # The 536M V100 cell.
        lines = [line for line in report.splitlines()
                 if line.startswith("| 536M")]
        assert lines and all("—" in line for line in lines)

    def test_ordering_claims_marked(self, report):
        assert "holds" in report
        assert "VIOLATED" not in report


class TestOutput:
    def test_write_to_file(self, tmp_path, report):
        path = write_markdown_report(tmp_path / "report.md")
        assert path.read_text().startswith("# Reproduction report")

    def test_main_with_path(self, tmp_path, capsys):
        assert main([str(tmp_path / "r.md")]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_main_to_stdout(self, capsys):
        assert main([]) == 0
        assert "# Reproduction report" in capsys.readouterr().out
