"""Tests for the 3D shift buffer: the paper's central data structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShiftBufferError
from repro.shiftbuffer.buffer3d import ShiftBuffer3D
from repro.shiftbuffer.ports import MemoryPortTracker


def labelled_block(nx, ny, nz):
    return np.arange(nx * ny * nz, dtype=float).reshape(nx, ny, nz)


def check_all_windows(block, windows):
    """Every emitted window must match the true 27-neighbourhood."""
    for w in windows:
        cx, cy, cz = w.center
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                for dk in (-1, 0, 1):
                    if w.top and dk == 1:
                        continue
                    assert w.at(di, dj, dk) == block[cx + di, cy + dj, cz + dk], (
                        w.center, (di, dj, dk), w.top
                    )


class TestConstruction:
    @pytest.mark.parametrize("bad", [(2, 3, 3), (3, 2, 3), (3, 3, 2)])
    def test_rejects_undersized_extents(self, bad):
        with pytest.raises(ShiftBufferError):
            ShiftBuffer3D(*bad)

    def test_memory_word_accounting(self):
        buf = ShiftBuffer3D(4, 5, 6)
        # slab 3*5*6 + lines 3*3*6.
        assert buf.memory_words == 90 + 54
        assert buf.register_words == 27


class TestStencilCorrectness:
    @pytest.mark.parametrize("extents", [(3, 3, 3), (5, 4, 3), (4, 6, 5),
                                         (3, 8, 4)])
    def test_every_window_matches_neighbourhood(self, extents):
        block = labelled_block(*extents)
        buf = ShiftBuffer3D(*extents)
        windows = buf.feed_block(block)
        assert len(windows) == buf.expected_emissions
        check_all_windows(block, windows)

    def test_coverage_of_interior_centers(self):
        nx, ny, nz = 5, 6, 4
        buf = ShiftBuffer3D(nx, ny, nz)
        windows = buf.feed_block(labelled_block(nx, ny, nz))
        centers = sorted(w.center for w in windows)
        expected = sorted(
            (i, j, k)
            for i in range(1, nx - 1)
            for j in range(1, ny - 1)
            for k in range(1, nz)
        )
        assert centers == expected

    def test_each_center_emitted_exactly_once(self):
        buf = ShiftBuffer3D(4, 4, 4)
        windows = buf.feed_block(labelled_block(4, 4, 4))
        centers = [w.center for w in windows]
        assert len(centers) == len(set(centers))

    def test_top_windows_flagged(self):
        nx, ny, nz = 4, 4, 5
        buf = ShiftBuffer3D(nx, ny, nz)
        windows = buf.feed_block(labelled_block(nx, ny, nz))
        tops = [w for w in windows if w.top]
        assert len(tops) == (nx - 2) * (ny - 2)
        assert all(w.center[2] == nz - 1 for w in tops)

    def test_no_bottom_level_emissions(self):
        buf = ShiftBuffer3D(4, 4, 4)
        windows = buf.feed_block(labelled_block(4, 4, 4))
        assert all(w.center[2] != 0 for w in windows)

    def test_double_emission_at_column_top_only(self):
        """Per fed value at most two windows, and two only at column tops."""
        nx, ny, nz = 4, 4, 4
        buf = ShiftBuffer3D(nx, ny, nz)
        block = labelled_block(nx, ny, nz)
        for index, value in enumerate(block.reshape(-1)):
            emitted = buf.feed(float(value))
            z = index % nz
            if len(emitted) == 2:
                assert z == nz - 1
            else:
                assert len(emitted) <= 1

    @settings(max_examples=20, deadline=None)
    @given(
        nx=st.integers(3, 5), ny=st.integers(3, 6), nz=st.integers(3, 5),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_random_blocks(self, nx, ny, nz, seed):
        rng = np.random.default_rng(seed)
        block = rng.normal(size=(nx, ny, nz))
        buf = ShiftBuffer3D(nx, ny, nz)
        windows = buf.feed_block(block)
        assert len(windows) == buf.expected_emissions
        check_all_windows(block, windows)


class TestStreamingProtocol:
    def test_position_advances_z_fastest(self):
        buf = ShiftBuffer3D(3, 3, 3)
        assert buf.position == (0, 0, 0)
        buf.feed(0.0)
        assert buf.position == (0, 0, 1)
        buf.feed(0.0)
        buf.feed(0.0)
        assert buf.position == (0, 1, 0)

    def test_overfeeding_rejected(self):
        buf = ShiftBuffer3D(3, 3, 3)
        buf.feed_block(np.zeros((3, 3, 3)))
        with pytest.raises(ShiftBufferError):
            buf.feed(1.0)

    def test_wrong_block_shape_rejected(self):
        buf = ShiftBuffer3D(3, 3, 3)
        with pytest.raises(ShiftBufferError):
            buf.feed_block(np.zeros((3, 3, 4)))

    def test_reset_allows_reuse(self):
        block = labelled_block(3, 4, 3)
        buf = ShiftBuffer3D(3, 4, 3)
        first = buf.feed_block(block)
        buf.reset()
        second = buf.feed_block(block)
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert a.center == b.center
            np.testing.assert_array_equal(a.raw, b.raw)


class TestPortPressure:
    def test_partitioned_never_exceeds_two(self):
        tracker = MemoryPortTracker(enforce=True)
        buf = ShiftBuffer3D(4, 5, 4, tracker=tracker)
        buf.feed_block(labelled_block(4, 5, 4))  # would raise on violation
        assert tracker.worst_case == 2
        assert tracker.achievable_ii() == 1

    def test_unpartitioned_forces_higher_ii(self):
        tracker = MemoryPortTracker(enforce=False)
        buf = ShiftBuffer3D(4, 5, 4, partitioned=False, tracker=tracker)
        buf.feed_block(labelled_block(4, 5, 4))
        assert tracker.worst_case == 5  # slab: 2 reads + 3 writes
        assert tracker.achievable_ii() > 1
        assert tracker.conflicts > 0

    def test_partition_banks_are_separate_memories(self):
        tracker = MemoryPortTracker(enforce=True)
        buf = ShiftBuffer3D(3, 3, 3, tracker=tracker, name="u")
        buf.feed_block(np.zeros((3, 3, 3)))
        names = set(tracker.reports())
        assert "u.slab[0]" in names and "u.slab[2]" in names
        assert "u.lines[0][0]" in names
