"""The radius-r generalisation of the shift buffer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShiftBufferError
from repro.shiftbuffer.general import GeneralShiftBuffer, GeneralWindow
from repro.shiftbuffer.ports import MemoryPortTracker


def labelled(nx, ny, nz):
    return np.arange(nx * ny * nz, dtype=float).reshape(nx, ny, nz)


class TestConstruction:
    def test_rejects_radius_zero(self):
        with pytest.raises(ShiftBufferError):
            GeneralShiftBuffer(5, 5, 5, radius=0)

    def test_rejects_undersized_block(self):
        with pytest.raises(ShiftBufferError):
            GeneralShiftBuffer(4, 5, 5, radius=2)  # needs >= 5 everywhere

    def test_memory_words_scale_with_radius(self):
        r1 = GeneralShiftBuffer(8, 8, 8, radius=1)
        r2 = GeneralShiftBuffer(8, 8, 8, radius=2)
        assert r2.memory_words > r1.memory_words

    def test_window_shape_validation(self):
        with pytest.raises(ShiftBufferError):
            GeneralWindow(raw=np.zeros((3, 3, 3)), center=(0, 0, 0),
                          radius=2)


class TestCorrectness:
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_every_window_matches_neighbourhood(self, radius):
        side = 2 * radius + 1
        nx, ny, nz = side + 1, side + 2, side + 1
        block = labelled(nx, ny, nz)
        buf = GeneralShiftBuffer(nx, ny, nz, radius=radius)
        windows = buf.feed_block(block)
        assert len(windows) == buf.expected_emissions
        for w in windows:
            cx, cy, cz = w.center
            for di in (-radius, 0, radius):
                for dj in (-radius, 0, radius):
                    for dk in (-radius, 0, radius):
                        assert w.at(di, dj, dk) == block[cx + di, cy + dj,
                                                         cz + dk]

    def test_radius1_matches_paper_buffer_full_windows(self):
        """At r=1 the general buffer's full windows agree with
        ShiftBuffer3D's non-top windows, value for value."""
        from repro.shiftbuffer.buffer3d import ShiftBuffer3D

        nx, ny, nz = 5, 6, 5
        block = labelled(nx, ny, nz)
        general = GeneralShiftBuffer(nx, ny, nz, radius=1)
        paper = ShiftBuffer3D(nx, ny, nz)
        general_windows = {w.center: w for w in general.feed_block(block)}
        for w in paper.feed_block(block):
            if w.top:
                continue
            match = general_windows[w.center]
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    for dk in (-1, 0, 1):
                        assert match.at(di, dj, dk) == w.at(di, dj, dk)

    def test_offset_out_of_radius_rejected(self):
        buf = GeneralShiftBuffer(5, 5, 5, radius=1)
        (window,) = buf.feed_block(labelled(5, 5, 5))[:1]
        with pytest.raises(ShiftBufferError):
            window.at(2, 0, 0)

    def test_as_array_layout(self):
        block = labelled(5, 5, 5)
        buf = GeneralShiftBuffer(5, 5, 5, radius=1)
        w = buf.feed_block(block)[0]
        arr = w.as_array()
        cx, cy, cz = w.center
        assert arr[1, 1, 1] == block[cx, cy, cz]
        assert arr[2, 1, 1] == block[cx + 1, cy, cz]

    def test_overfeed_rejected(self):
        buf = GeneralShiftBuffer(3, 3, 3, radius=1)
        buf.feed_block(np.zeros((3, 3, 3)))
        with pytest.raises(ShiftBufferError):
            buf.feed(0.0)

    def test_wrong_block_shape_rejected(self):
        buf = GeneralShiftBuffer(3, 3, 3, radius=1)
        with pytest.raises(ShiftBufferError):
            buf.feed_block(np.zeros((3, 4, 3)))


class TestPortPressure:
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_dual_port_property_radius_independent(self, radius):
        """The paper's <=2-accesses claim survives any radius: partition
        granularity grows with the radius, per-bank pressure does not."""
        side = 2 * radius + 1
        nx = ny = nz = side + 1
        tracker = MemoryPortTracker(enforce=True)
        buf = GeneralShiftBuffer(nx, ny, nz, radius=radius, tracker=tracker)
        buf.feed_block(labelled(nx, ny, nz))
        assert tracker.worst_case == 2
        assert tracker.achievable_ii() == 1


@settings(max_examples=15, deadline=None)
@given(radius=st.integers(1, 2), extra=st.integers(0, 2),
       seed=st.integers(0, 10_000))
def test_property_random_blocks(radius, extra, seed):
    side = 2 * radius + 1
    nx, ny, nz = side + extra, side + extra + 1, side + extra
    block = np.random.default_rng(seed).normal(size=(nx, ny, nz))
    buf = GeneralShiftBuffer(nx, ny, nz, radius=radius)
    windows = buf.feed_block(block)
    assert len(windows) == buf.expected_emissions
    for w in windows:
        cx, cy, cz = w.center
        assert w.at(0, 0, 0) == block[cx, cy, cz]
        assert w.at(-radius, radius, 0) == block[cx - radius, cy + radius, cz]
