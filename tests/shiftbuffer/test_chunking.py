"""Tests for the Y/X chunk planner (Fig. 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChunkingError
from repro.shiftbuffer.chunking import HALO, Chunk, ChunkPlan, plan_chunks


class TestPlanning:
    def test_single_chunk_covers_all(self):
        plan = plan_chunks(10, 16)
        assert plan.num_chunks == 1
        chunk = plan.chunks[0]
        assert chunk.write_width == 10
        assert chunk.read_width == 12

    def test_even_split(self):
        plan = plan_chunks(12, 4)
        assert plan.num_chunks == 3
        assert [c.write_width for c in plan.chunks] == [4, 4, 4]

    def test_remainder_chunk_is_last(self):
        plan = plan_chunks(10, 4)
        assert [c.write_width for c in plan.chunks] == [4, 4, 2]

    def test_neighbouring_reads_overlap_by_two(self):
        """The paper's Fig. 4: one halo cell from each side of the seam."""
        plan = plan_chunks(12, 4)
        for left, right in zip(plan.chunks, plan.chunks[1:]):
            assert left.read_stop - right.read_start == 2 * HALO

    def test_writes_tile_exactly(self):
        plan = plan_chunks(13, 5)
        cursor = HALO
        for chunk in plan.chunks:
            assert chunk.write_start == cursor
            cursor = chunk.write_stop
        assert cursor == 13 + HALO

    def test_rejects_bad_inputs(self):
        with pytest.raises(ChunkingError):
            plan_chunks(0, 4)
        with pytest.raises(ChunkingError):
            plan_chunks(4, 0)


class TestOverheadAccounting:
    def test_no_overlap_single_chunk(self):
        plan = plan_chunks(20, 64)
        assert plan.overlap_cells == 0
        assert plan.redundancy == 1.0

    def test_overlap_grows_with_chunk_count(self):
        fine = plan_chunks(64, 4)
        coarse = plan_chunks(64, 16)
        assert fine.overlap_cells > coarse.overlap_cells

    def test_overlap_formula(self):
        plan = plan_chunks(64, 8)
        # 8 chunks -> 7 seams, 2 extra cells per seam.
        assert plan.overlap_cells == 7 * 2

    def test_total_read_cells(self):
        plan = plan_chunks(6, 3)
        assert plan.total_read_cells == sum(c.read_width for c in plan.chunks)


class TestValidation:
    def test_chunk_rejects_too_narrow_read(self):
        with pytest.raises(ChunkingError):
            Chunk(index=0, read_start=0, read_stop=2, write_start=1,
                  write_stop=1)

    def test_chunk_rejects_write_outside_read(self):
        with pytest.raises(ChunkingError):
            Chunk(index=0, read_start=2, read_stop=8, write_start=1,
                  write_stop=5)

    def test_chunk_width_not_above_halo_rejected_up_front(self):
        # The tuner probes degenerate corners; the planner must reject
        # them with an actionable message, not emit an all-halo plan.
        with pytest.raises(ChunkingError, match="must exceed the halo"):
            plan_chunks(6, 1)
        with pytest.raises(ChunkingError, match="chunk_width \\(2\\)"):
            plan_chunks(16, 2, halo=2)

    def test_coverage_gap_detected(self):
        good = plan_chunks(8, 4)
        broken = ChunkPlan(
            interior=8, chunk_width=4,
            chunks=(good.chunks[0],),  # second chunk missing
        )
        with pytest.raises(ChunkingError):
            broken.validate_coverage()


class TestCoverageDiagnostics:
    """Edge cases of the collect-all coverage checker."""

    def test_clean_plan_has_no_errors(self):
        diags = plan_chunks(64, 16).coverage_diagnostics()
        assert not [d for d in diags if d.severity.value == "error"]

    def test_chunk_width_below_seam_overlap_warns_not_raises(self):
        # width 3 > halo (legal) but < 2*halo = 4: halo cells dominate
        # every read — a warning, never a ChunkingError.
        plan = plan_chunks(16, 3, halo=2)
        plan.validate_coverage()
        codes = [d.code for d in plan.coverage_diagnostics()]
        assert "KC101" in codes

    def test_single_chunk_domain_is_informational(self):
        plan = plan_chunks(10, 64)
        (diag,) = [d for d in plan.coverage_diagnostics()
                   if d.code == "KC108"]
        assert diag.severity.value == "info"
        plan.validate_coverage()

    def test_indivisible_interior_notes_ragged_tail(self):
        plan = plan_chunks(10, 4)  # 4 + 4 + 2
        (diag,) = [d for d in plan.coverage_diagnostics()
                   if d.code == "KC109"]
        assert "tail chunk 2" in diag.message
        plan.validate_coverage()

    def test_divisible_interior_has_no_tail_note(self):
        codes = [d.code for d in plan_chunks(12, 4).coverage_diagnostics()]
        assert "KC109" not in codes

    def test_empty_plan_is_an_error(self):
        broken = ChunkPlan(interior=8, chunk_width=4, chunks=())
        codes = [d.code for d in broken.coverage_diagnostics()]
        assert codes == ["KC103"]
        with pytest.raises(ChunkingError):
            broken.validate_coverage()

    def test_all_violations_collected_in_one_pass(self):
        good = plan_chunks(12, 4)
        # Keep only the middle chunk: a leading gap AND short coverage.
        broken = ChunkPlan(interior=12, chunk_width=4,
                           chunks=(good.chunks[1],))
        codes = [d.code for d in broken.coverage_diagnostics()]
        assert "KC102" in codes and "KC103" in codes
        with pytest.raises(ChunkingError) as err:
            broken.validate_coverage()
        assert "gap" in str(err.value) and "cover" in str(err.value)


class TestWiderHalo:
    """plan_chunks(halo=r) serves the general radius-r shift buffer."""

    def test_reads_overlap_by_two_halos(self):
        plan = plan_chunks(16, 4, halo=2)
        for left, right in zip(plan.chunks, plan.chunks[1:]):
            assert left.read_stop - right.read_start == 4
        plan.validate_coverage()

    def test_halo_recorded_on_plan(self):
        assert plan_chunks(16, 4, halo=3).halo == 3
        assert plan_chunks(16, 4).halo == HALO

    def test_redundancy_accounts_for_halo(self):
        narrow = plan_chunks(16, 4, halo=2)
        assert narrow.overlap_cells == 3 * 4  # 3 seams, 2*halo each
        assert narrow.redundancy > 1.0

    def test_rejects_nonpositive_halo(self):
        with pytest.raises(ChunkingError):
            plan_chunks(16, 4, halo=0)


@settings(max_examples=50, deadline=None)
@given(interior=st.integers(1, 400), chunk_width=st.integers(2, 96))
def test_property_plans_always_valid(interior, chunk_width):
    """Any legal (interior, chunk_width) yields a covering, overlapping plan."""
    plan = plan_chunks(interior, chunk_width)
    plan.validate_coverage()
    assert sum(c.write_width for c in plan.chunks) == interior
    for chunk in plan.chunks:
        assert chunk.read_start == chunk.write_start - HALO
        assert chunk.read_stop == chunk.write_stop + HALO
    assert plan.redundancy >= 1.0
