"""Tests for the 27-point stencil window."""

import numpy as np
import pytest

from repro.shiftbuffer.window import StencilWindow


def labelled_raw():
    """raw[s, dy, dz] = 100*s + 10*dy + dz for unambiguous addressing."""
    raw = np.zeros((3, 3, 3))
    for s in range(3):
        for dy in range(3):
            for dz in range(3):
                raw[s, dy, dz] = 100 * s + 10 * dy + dz
    return raw


class TestNormalWindow:
    def test_center_maps_to_middle_registers(self):
        w = StencilWindow(raw=labelled_raw(), center=(5, 5, 5))
        assert w.at(0, 0, 0) == 111.0  # s=1, dy=1, dz=1
        assert w.center_value == 111.0

    @pytest.mark.parametrize("offset,expected", [
        ((+1, 0, 0), 11.0),    # newer x plane -> s=0
        ((-1, 0, 0), 211.0),   # older x plane -> s=2
        ((0, +1, 0), 101.0),   # newer y -> dy=0
        ((0, -1, 0), 121.0),   # older y -> dy=2
        ((0, 0, +1), 110.0),   # newer z -> dz=0
        ((0, 0, -1), 112.0),   # older z -> dz=2
        ((+1, +1, +1), 0.0),
        ((-1, -1, -1), 222.0),
    ])
    def test_offset_addressing(self, offset, expected):
        w = StencilWindow(raw=labelled_raw(), center=(5, 5, 5))
        assert w.at(*offset) == expected

    def test_rejects_out_of_range_offsets(self):
        w = StencilWindow(raw=labelled_raw(), center=(0, 0, 0))
        with pytest.raises(ValueError):
            w.at(2, 0, 0)
        with pytest.raises(ValueError):
            w.at(0, -2, 0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            StencilWindow(raw=np.zeros((3, 3)), center=(0, 0, 0))

    def test_as_array_layout(self):
        w = StencilWindow(raw=labelled_raw(), center=(0, 0, 0))
        arr = w.as_array()
        assert arr[1, 1, 1] == 111.0
        assert arr[2, 1, 1] == 11.0  # di=+1


class TestTopWindow:
    def test_center_at_dz0(self):
        w = StencilWindow(raw=labelled_raw(), center=(5, 5, 9), top=True)
        assert w.at(0, 0, 0) == 110.0  # dz shifted by one register
        assert w.at(0, 0, -1) == 111.0

    def test_dk_plus_one_rejected(self):
        w = StencilWindow(raw=labelled_raw(), center=(5, 5, 9), top=True)
        with pytest.raises(ValueError, match="stale"):
            w.at(0, 0, 1)

    def test_as_array_nan_at_stale_plane(self):
        w = StencilWindow(raw=labelled_raw(), center=(5, 5, 9), top=True)
        arr = w.as_array()
        assert np.all(np.isnan(arr[:, :, 2]))
        assert not np.any(np.isnan(arr[:, :, :2]))
