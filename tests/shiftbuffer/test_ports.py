"""Tests for the dual-port memory access tracker."""

import pytest

from repro.errors import PortConflictError
from repro.shiftbuffer.ports import MemoryPortTracker


class TestAccounting:
    def test_within_budget(self):
        t = MemoryPortTracker()
        t.begin_cycle()
        t.access("m", 2)
        t.end_cycle()
        assert t.worst_case == 2
        assert t.conflicts == 0

    def test_enforcing_raises_on_third_access(self):
        t = MemoryPortTracker(enforce=True)
        t.begin_cycle()
        t.access("m", 2)
        with pytest.raises(PortConflictError, match="partition"):
            t.access("m", 1)

    def test_non_enforcing_records_conflicts(self):
        t = MemoryPortTracker(enforce=False)
        t.begin_cycle()
        t.access("m", 5)
        t.end_cycle()
        assert t.conflicts == 1
        assert t.worst_case == 5

    def test_separate_memories_tracked_separately(self):
        t = MemoryPortTracker()
        t.begin_cycle()
        t.access("a", 2)
        t.access("b", 2)
        t.end_cycle()
        assert t.report("a").max_accesses_per_cycle == 2
        assert t.report("b").max_accesses_per_cycle == 2

    def test_access_outside_cycle_rejected(self):
        t = MemoryPortTracker()
        with pytest.raises(PortConflictError):
            t.access("m")

    def test_rejects_bad_ports(self):
        with pytest.raises(ValueError):
            MemoryPortTracker(ports=0)


class TestReports:
    def test_mean_accesses(self):
        t = MemoryPortTracker()
        for count in (1, 2, 1):
            t.begin_cycle()
            t.access("m", count)
            t.end_cycle()
        report = t.report("m")
        assert report.total_accesses == 4
        assert report.cycles == 3
        assert report.mean_accesses_per_cycle == pytest.approx(4 / 3)

    def test_unknown_memory_empty_report(self):
        t = MemoryPortTracker()
        report = t.report("ghost")
        assert report.total_accesses == 0
        assert report.mean_accesses_per_cycle == 0.0


class TestAchievableII:
    def test_ii_one_when_within_ports(self):
        t = MemoryPortTracker()
        t.begin_cycle()
        t.access("m", 2)
        t.end_cycle()
        assert t.achievable_ii() == 1

    @pytest.mark.parametrize("accesses,expected_ii", [(3, 2), (4, 2), (5, 3)])
    def test_ii_ceil_of_pressure(self, accesses, expected_ii):
        t = MemoryPortTracker(enforce=False)
        t.begin_cycle()
        t.access("m", accesses)
        t.end_cycle()
        assert t.achievable_ii() == expected_ii

    def test_ii_one_when_untouched(self):
        assert MemoryPortTracker().achievable_ii() == 1
