"""SA-family lint rules: proved facts from the static verifier."""

import time

from repro.dataflow.graph import DataflowGraph
from repro.lint import Severity, lint_graph, load_builtin_rules
from repro.lint.spec import SpecStage


def fork_join_graph(*, fast_depth: int, slow_latency: int = 20,
                    depth: int = 2) -> DataflowGraph:
    graph = DataflowGraph("forkjoin")
    graph.add(SpecStage("src", outputs=("out",), latency=1))
    graph.add(SpecStage("fork", inputs=("in",), outputs=("a", "b"),
                        latency=1))
    graph.add(SpecStage("slow", inputs=("in",), outputs=("out",),
                        latency=slow_latency))
    graph.add(SpecStage("join", inputs=("a", "b"), outputs=("out",),
                        latency=1))
    graph.add(SpecStage("sink", inputs=("in",)))
    graph.connect("src", "out", "fork", "in", depth=depth)
    graph.connect("fork", "a", "join", "a", depth=fast_depth)
    graph.connect("fork", "b", "slow", "in", depth=depth)
    graph.connect("slow", "out", "join", "b", depth=depth)
    graph.connect("join", "out", "sink", "in", depth=depth)
    return graph


class TestRegistration:
    def test_sa_rules_are_registered(self):
        registry = load_builtin_rules()
        codes = {rule.code for rule in registry}
        assert {"SA401", "SA402", "SA403"} <= codes
        for rule in registry:
            if rule.code.startswith("SA"):
                assert rule.family == "analysis"


class TestSA401:
    def test_under_depth_reconvergence_is_a_proved_error(self):
        report = lint_graph(fork_join_graph(fast_depth=2))
        assert "SA401" in report.codes
        (diag,) = [d for d in report.diagnostics if d.code == "SA401"]
        assert diag.severity is Severity.ERROR
        assert "proved throughput collapse" in diag.message
        assert "backpressure witness" in diag.message
        assert "fork.a->join.a" in diag.message
        assert str(diag.location) == "stream:fork.a->join.a"
        assert "fork.a->join.a: 21" in diag.hint
        assert not report.ok

    def test_well_depthed_graph_is_silent(self):
        report = lint_graph(fork_join_graph(fast_depth=21))
        assert "SA401" not in report.codes
        assert "SA402" not in report.codes

    def test_sa401_complements_heuristic_df004(self):
        """DF004 flags the *risk* structurally; SA401 proves the loss."""
        report = lint_graph(fork_join_graph(fast_depth=2))
        assert "DF004" in report.codes  # heuristic, WARNING
        assert "SA401" in report.codes  # proved, ERROR


class TestSA402:
    def test_one_warning_per_under_stream(self):
        report = lint_graph(fork_join_graph(fast_depth=2))
        diags = [d for d in report.diagnostics if d.code == "SA402"]
        assert [str(d.location) for d in diags] == [
            "stream:fork.a->join.a"]
        assert "below the proved minimal stall-free depth 21" \
            in diags[0].message
        assert diags[0].severity is Severity.WARNING

    def test_cascaded_fullness_is_not_blamed(self):
        """src.out->fork.in fills behind the blocked fork, but only the
        root-cause stream is under-depth."""
        report = lint_graph(fork_join_graph(fast_depth=2))
        locations = {str(d.location) for d in report.diagnostics
                     if d.code == "SA402"}
        assert "stream:src.out->fork.in" not in locations


class TestSA403:
    def test_overprovisioned_fifo_is_an_info(self):
        graph = DataflowGraph("deep")
        graph.add(SpecStage("src", outputs=("out",)))
        graph.add(SpecStage("sink", inputs=("in",)))
        graph.connect("src", "out", "sink", "in", depth=64)
        report = lint_graph(graph)
        (diag,) = [d for d in report.diagnostics if d.code == "SA403"]
        assert diag.severity is Severity.INFO
        assert report.ok  # info never fails the run
        assert "exceeds the proved worst-case occupancy 1" in diag.message

    def test_modest_headroom_is_tolerated(self):
        graph = DataflowGraph("ok")
        graph.add(SpecStage("src", outputs=("out",)))
        graph.add(SpecStage("sink", inputs=("in",)))
        graph.connect("src", "out", "sink", "in", depth=4)
        report = lint_graph(graph)
        assert "SA403" not in report.codes


class TestStructurallyBrokenGraphs:
    def test_sa_rules_stay_silent_on_unanalyzable_graphs(self):
        graph = DataflowGraph("broken")
        graph.add(SpecStage("src", outputs=("out",)))
        graph.add(SpecStage("dst", inputs=("in",)))
        report = lint_graph(graph)
        assert "DF001" in report.codes
        assert not any(d.code.startswith("SA") for d in report.diagnostics)

    def test_cyclic_graph_reports_df003_not_sa(self):
        graph = DataflowGraph("loop")
        graph.add(SpecStage("a", inputs=("in",), outputs=("out",)))
        graph.add(SpecStage("b", inputs=("in",), outputs=("out",)))
        graph.connect("a", "out", "b", "in")
        graph.connect("b", "out", "a", "in")
        report = lint_graph(graph)
        assert "DF003" in report.codes
        assert not any(d.code.startswith("SA") for d in report.diagnostics)


def diamond_lattice(stages: int = 30) -> DataflowGraph:
    """A chain of ~``stages`` diamonds: exponentially many simple paths."""
    graph = DataflowGraph("lattice")
    graph.add(SpecStage("src", outputs=("out",)))
    previous = ("src", "out")
    for index in range(stages):
        fork = f"f{index}"
        join = f"j{index}"
        graph.add(SpecStage(fork, inputs=("in",), outputs=("a", "b")))
        graph.add(SpecStage(join, inputs=("a", "b"), outputs=("out",)))
        graph.connect(previous[0], previous[1], fork, "in", depth=4)
        graph.connect(fork, "a", join, "a", depth=4)
        graph.connect(fork, "b", join, "b", depth=4)
        previous = (join, "out")
    graph.add(SpecStage("sink", inputs=("in",)))
    graph.connect(previous[0], previous[1], "sink", "in", depth=4)
    return graph


class TestLatticeScalability:
    def test_thirty_diamond_lattice_lints_in_under_a_second(self):
        """2^30 simple src->sink paths: only memoised aggregates survive."""
        graph = diamond_lattice(30)
        start = time.perf_counter()
        report = lint_graph(graph)
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0, f"lint took {elapsed:.2f}s"
        assert not any(d.severity is Severity.ERROR
                       for d in report.diagnostics)
