"""The `repro lint` CLI: exit codes, JSON schema, spec loading.

Includes the acceptance fixture from the linter's design brief: one
deliberately broken spec (unconnected port, over-budget kernel count, bad
chunk width) must produce at least three distinct diagnostic codes in a
single invocation and exit non-zero, while the example specs shipped under
examples/graphs/ must lint clean.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import LintError
from repro.lint.spec import load_spec

EXAMPLES = sorted(
    str(p) for p in (Path(__file__).resolve().parents[2]
                     / "examples" / "graphs").glob("*.json")
)

BROKEN_SPEC = {
    "name": "deliberately-broken",
    "device": "u280",
    "num_kernels": 7,            # RS201: one over the paper's U280 limit
    "kernel": {
        "cells": "16M",
        "chunk_width": 1,        # KC100: planner rejects width <= halo
    },
    "graph": {
        "stages": [
            {"name": "read", "outputs": ["out"]},
            {"name": "sink", "inputs": ["a", "b"]},   # DF001: b dangles
        ],
        "streams": [
            {"src": "read.out", "dst": "sink.a", "depth": 4},
        ],
    },
}


@pytest.fixture
def broken_spec(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text(json.dumps(BROKEN_SPEC))
    return str(path)


class TestAcceptance:
    def test_examples_exist(self):
        assert len(EXAMPLES) >= 2

    def test_example_specs_lint_clean(self, capsys):
        assert main(["lint", *EXAMPLES]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_broken_spec_reports_three_codes_and_fails(self, capsys,
                                                       broken_spec):
        assert main(["lint", "--json", broken_spec]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        (report,) = payload["reports"]
        codes = set(report["summary"]["codes"])
        assert len(codes) >= 3
        assert "DF001" in codes   # graph family
        assert "RS201" in codes   # resource family
        assert "KC100" in codes   # chunking family (invalid geometry)


class TestJsonSchema:
    def test_report_schema(self, capsys, broken_spec):
        main(["lint", "--json", broken_spec])
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"ok", "reports"}
        (report,) = payload["reports"]
        assert report["subject"] == "deliberately-broken"
        summary = report["summary"]
        assert set(summary) == {"errors", "warnings", "infos", "codes", "ok"}
        assert summary["errors"] >= 2 and summary["ok"] is False
        for diag in report["diagnostics"]:
            assert set(diag) == {"code", "severity", "message", "location",
                                 "hint", "rule", "family"}
            assert diag["severity"] in ("error", "warning", "info")
            assert diag["family"] is not None

    def test_diagnostics_sorted_by_code_location_message(self, capsys,
                                                         broken_spec):
        main(["lint", "--json", broken_spec])
        payload = json.loads(capsys.readouterr().out)
        keys = [(d["code"], d["location"] or "", d["message"])
                for d in payload["reports"][0]["diagnostics"]]
        assert keys == sorted(keys)


class TestFlagDrivenLint:
    def test_paper_deployments_pass(self, capsys):
        assert main(["lint", "--device", "u280", "--kernels", "6"]) == 0
        assert main(["lint", "--device", "stratix10", "--kernels", "5"]) == 0

    def test_over_budget_kernel_count_fails(self, capsys):
        assert main(["lint", "--device", "u280", "--kernels", "7"]) == 1
        assert "RS201" in capsys.readouterr().out
        assert main(["lint", "--device", "stratix10", "--kernels", "6"]) == 1

    def test_explicit_grid_flags(self, capsys):
        assert main(["lint", "--nx", "8", "--ny", "64", "--nz", "8"]) == 0

    def test_partial_grid_flags_are_an_error(self, capsys):
        assert main(["lint", "--nx", "8"]) == 2
        assert "together" in capsys.readouterr().err

    def test_strict_promotes_warnings(self, capsys):
        # Width 4 is legal but below the burst-efficiency floor (KC106).
        argv = ["lint", "--chunk-width", "4", "--ignore", "RS"]
        assert main(argv) == 0
        assert main([*argv, "--strict"]) == 1

    def test_select_and_ignore(self, capsys):
        assert main(["lint", "--device", "u280", "--kernels", "7",
                     "--ignore", "RS201"]) == 0
        assert main(["lint", "--device", "u280", "--kernels", "7",
                     "--select", "graph"]) == 0

    def test_non_fpga_device_is_usage_error(self, capsys):
        assert main(["lint", "--device", "cpu"]) == 2
        assert "not an FPGA" in capsys.readouterr().err

    def test_list_rules_prints_catalogue(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DF001", "KC101", "RS201", "AC301"):
            assert code in out


class TestSpecLoading:
    def test_invalid_json_is_lint_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(LintError, match="not valid JSON"):
            load_spec(bad)
        assert main(["lint", str(bad)]) == 2

    def test_unknown_keys_rejected(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"kernel": {"cells": "16M"},
                                    "frobnicate": 1}))
        with pytest.raises(LintError, match="unknown spec keys"):
            load_spec(path)

    def test_unknown_size_label_rejected(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"kernel": {"cells": "12M"}}))
        with pytest.raises(LintError, match="unknown problem size"):
            load_spec(path)

    def test_bad_stream_endpoint_rejected(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"graph": {
            "stages": [{"name": "a", "outputs": ["out"]}],
            "streams": [{"src": "a", "dst": "a.out"}],
        }}))
        with pytest.raises(LintError, match="stage.port"):
            load_spec(path)

    def test_spec_name_defaults_to_filename(self, tmp_path):
        path = tmp_path / "mydesign.json"
        path.write_text(json.dumps({"kernel": {"cells": "16M"}}))
        assert load_spec(path).name == "mydesign"
