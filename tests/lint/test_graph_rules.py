"""Graph-family lint rules (DF001-DF006) and the collect-all refactor."""

import pytest

from repro.dataflow.engine import DataflowEngine
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.stage import SinkStage, SourceStage
from repro.errors import GraphError, LintError
from repro.lint import Severity, lint_graph
from repro.lint.rules_graph import reconvergent_paths
from repro.lint.spec import SpecStage


def two_stage_graph(*, connect: bool = True) -> DataflowGraph:
    graph = DataflowGraph("pair")
    graph.add(SpecStage("src", outputs=("out",)))
    graph.add(SpecStage("dst", inputs=("in",)))
    if connect:
        graph.connect("src", "out", "dst", "in")
    return graph


def fork_join_graph(*, fast_depth: int, slow_latency: int) -> DataflowGraph:
    """A reconvergent pair of branches with a configurable latency skew."""
    graph = DataflowGraph("forkjoin")
    graph.add(SpecStage("fork", outputs=("a", "b")))
    graph.add(SpecStage("slow", inputs=("in",), outputs=("out",),
                        latency=slow_latency))
    graph.add(SpecStage("join", inputs=("a", "b")))
    graph.connect("fork", "a", "join", "a", depth=fast_depth)
    graph.connect("fork", "b", "slow", "in", depth=2)
    graph.connect("slow", "out", "join", "b", depth=2)
    return graph


class TestStructuralDiagnostics:
    def test_clean_graph_has_no_findings(self):
        assert two_stage_graph().structural_diagnostics() == []

    def test_all_unconnected_ports_collected_at_once(self):
        """Unlike the old first-failure raise, every violation is reported."""
        graph = two_stage_graph(connect=False)
        diags = graph.structural_diagnostics()
        assert [d.code for d in diags] == ["DF001", "DF001"]
        locations = {str(d.location) for d in diags}
        assert locations == {"stage:src.out", "stage:dst.in"}

    def test_validate_raises_with_every_message(self):
        graph = two_stage_graph(connect=False)
        with pytest.raises(GraphError) as err:
            graph.validate()
        assert "unconnected" in str(err.value)
        assert "src" in str(err.value) and "dst" in str(err.value)

    def test_empty_graph_is_df002(self):
        diags = DataflowGraph("empty").structural_diagnostics()
        assert [d.code for d in diags] == ["DF002"]

    def test_cycle_is_df003(self):
        graph = DataflowGraph("loop")
        graph.add(SpecStage("a", inputs=("in",), outputs=("out",)))
        graph.add(SpecStage("b", inputs=("in",), outputs=("out",)))
        graph.connect("a", "out", "b", "in")
        graph.connect("b", "out", "a", "in")
        codes = [d.code for d in graph.structural_diagnostics()]
        assert codes == ["DF003"]
        with pytest.raises(GraphError, match="cycle"):
            graph.validate()


class TestGraphRules:
    def test_clean_graph_lints_ok(self):
        report = lint_graph(two_stage_graph())
        assert report.ok
        assert "DF001" not in report.codes

    def test_unconnected_ports_are_errors(self):
        report = lint_graph(two_stage_graph(connect=False))
        assert not report.ok
        assert len(report.errors) == 2
        assert all(d.code == "DF001" for d in report.errors)

    def test_skewed_fork_join_warns_df004(self):
        # Fast branch buffers 2 tokens; the sibling lags by 100 cycles.
        report = lint_graph(fork_join_graph(fast_depth=2, slow_latency=100))
        assert "DF004" in report.codes
        (diag,) = [d for d in report.diagnostics if d.code == "DF004"]
        assert diag.severity is Severity.WARNING
        assert "deepen the branch FIFOs" in diag.hint

    def test_deep_fifo_absorbs_the_skew(self):
        report = lint_graph(fork_join_graph(fast_depth=128, slow_latency=100))
        assert "DF004" not in report.codes

    def test_reconvergent_paths_found(self):
        graph = fork_join_graph(fast_depth=2, slow_latency=100)
        ((fork, join, paths),) = list(reconvergent_paths(graph))
        assert fork.name == "fork" and join.name == "join"
        assert len(paths) == 2

    def test_isolated_stage_warns_df005(self):
        graph = two_stage_graph()
        graph.add(SpecStage("orphan", inputs=("in",), outputs=("out",)))
        report = lint_graph(graph)
        assert "DF005" in report.codes

    def test_depth_one_stream_is_df006_info(self):
        graph = DataflowGraph("shallow")
        graph.add(SpecStage("src", outputs=("out",)))
        graph.add(SpecStage("dst", inputs=("in",)))
        graph.connect("src", "out", "dst", "in", depth=1)
        report = lint_graph(graph)
        assert "DF006" in report.codes
        assert report.ok  # info only — still passes


class TestEnginePreflight:
    def test_lint_preflight_raises_on_broken_graph(self):
        engine = DataflowEngine(two_stage_graph(connect=False), lint=True)
        with pytest.raises(LintError, match="DF001"):
            engine.run()

    def test_lint_off_still_raises_graph_error(self):
        engine = DataflowEngine(two_stage_graph(connect=False))
        with pytest.raises(GraphError):
            engine.run()

    def test_clean_graph_runs_with_lint_on(self):
        graph = DataflowGraph("ok")
        graph.add(SourceStage("src", items=iter(range(4))))
        sink = graph.add(SinkStage("sink"))
        graph.connect("src", "out", "sink", "in", depth=4)
        stats = DataflowEngine(graph, lint=True).run()
        assert sink.collected == [0, 1, 2, 3]
        assert stats.fires["src"] == 4
