"""Kernel/chunking-family lint rules (KC101-KC109)."""

from repro.core.grid import Grid
from repro.kernel.config import KernelConfig
from repro.lint import LintContext, Severity, run_lint
from repro.lint.runner import lint_kernel
from repro.shiftbuffer.chunking import Chunk, ChunkPlan, plan_chunks


def config(ny: int = 64, chunk_width: int = 16, **kwargs) -> KernelConfig:
    return KernelConfig(grid=Grid(nx=8, ny=ny, nz=8),
                        chunk_width=chunk_width, **kwargs)


def kc_codes(report) -> set:
    return {c for c in report.codes if c.startswith("KC")}


class TestCoverageRules:
    def test_paper_default_config_is_clean(self):
        report = lint_kernel(KernelConfig(grid=Grid.from_cells(2**24)))
        assert report.ok
        assert not kc_codes(report) - {"KC109"}

    def test_invalid_chunk_geometry_is_kc100_error(self):
        # chunk_width <= halo is rejected by the planner up front; the
        # linter reports the rejection instead of crashing mid-run.
        report = lint_kernel(config(chunk_width=1))
        assert "KC100" in report.codes
        assert not report.ok
        (diag,) = [d for d in report.diagnostics if d.code == "KC100"]
        assert "must exceed the halo" in diag.message

    def test_halo_dominated_chunk_warns_kc101(self):
        report = run_lint(
            LintContext(chunk_plan=plan_chunks(16, 3, halo=2)))
        assert "KC101" in report.codes
        assert report.ok  # warning, not error

    def test_seam_overlap_is_kc102_error(self):
        good = plan_chunks(8, 4)
        # Second chunk re-writes the first chunk's last cell.
        broken = ChunkPlan(interior=8, chunk_width=4, chunks=(
            good.chunks[0],
            Chunk(index=1, read_start=3, read_stop=10,
                  write_start=4, write_stop=9),
        ))
        report = run_lint(LintContext(chunk_plan=broken))
        assert "KC102" in report.codes
        assert not report.ok

    def test_coverage_gap_is_kc103_error(self):
        good = plan_chunks(8, 4)
        broken = ChunkPlan(interior=8, chunk_width=4,
                           chunks=(good.chunks[0],))
        report = run_lint(LintContext(chunk_plan=broken))
        assert "KC103" in report.codes
        assert not report.ok

    def test_single_chunk_domain_is_kc108_info(self):
        report = run_lint(LintContext(chunk_plan=plan_chunks(10, 64)))
        (diag,) = [d for d in report.diagnostics if d.code == "KC108"]
        assert diag.severity is Severity.INFO

    def test_ragged_tail_is_kc109_info(self):
        report = run_lint(LintContext(chunk_plan=plan_chunks(10, 4)))
        assert "KC109" in report.codes
        assert report.ok


class TestDesignRules:
    def test_chunk_wider_than_domain_warns_kc104(self):
        report = lint_kernel(config(ny=8, chunk_width=64))
        assert "KC104" in report.codes

    def test_uram_ii2_variant_warns_kc105(self):
        report = lint_kernel(config(shift_buffer_ii=2))
        (diag,) = [d for d in report.diagnostics if d.code == "KC105"]
        assert "1/2" in diag.message

    def test_memory_starved_read_warns_kc105(self):
        report = lint_kernel(config(), read_ii=2)
        (diag,) = [d for d in report.diagnostics if d.code == "KC105"]
        assert "external-memory read" in diag.message

    def test_unpartitioned_buffers_warn_kc105(self):
        report = lint_kernel(config(partitioned=False))
        assert any(d.code == "KC105" and "partition" in d.message
                   for d in report.diagnostics)

    def test_ii1_partitioned_design_has_no_kc105(self):
        assert "KC105" not in lint_kernel(config()).codes

    def test_narrow_chunks_warn_kc106(self):
        report = lint_kernel(config(ny=64, chunk_width=4))
        assert "KC106" in report.codes

    def test_single_narrow_chunk_is_not_kc106(self):
        # One chunk means no seams, so burst efficiency is the domain's.
        report = run_lint(LintContext(chunk_plan=plan_chunks(4, 4)))
        assert "KC106" not in report.codes

    def test_high_redundancy_warns_kc107(self):
        # width 2 + 2 halo cells per seam: redundancy 1.87x.
        report = run_lint(LintContext(chunk_plan=plan_chunks(64, 2)))
        assert "KC107" in report.codes

    def test_wide_chunks_have_low_redundancy(self):
        report = run_lint(LintContext(chunk_plan=plan_chunks(64, 16)))
        assert "KC107" not in report.codes


class TestSelection:
    def test_family_filter_selects_only_kernel_rules(self):
        report = lint_kernel(config(chunk_width=2), select=["kernel"])
        assert all(c.startswith("KC") for c in report.codes)

    def test_ignore_wins_over_select(self):
        report = lint_kernel(config(chunk_width=2), select=["kernel"],
                             ignore=["KC106"])
        assert "KC107" in report.codes
        assert "KC106" not in report.codes
