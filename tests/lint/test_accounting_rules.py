"""Accounting-family lint rules (AC301-AC304): the 63/55-op model."""

from repro import constants
from repro.core.grid import Grid
from repro.dataflow.graph import DataflowGraph
from repro.kernel.config import KernelConfig
from repro.lint import LintContext, run_lint
from repro.lint.builders import build_structural_graph
from repro.lint.spec import SpecStage

PAPER_CONFIG = KernelConfig(grid=Grid.from_cells(2**24))


class TestPaperConstants:
    def test_current_model_matches_the_paper(self):
        report = run_lint(LintContext(), select=["AC301"])
        assert report.ok
        assert not report.diagnostics

    def test_drifted_op_count_is_ac301_error(self, monkeypatch):
        monkeypatch.setattr(constants, "OPS_PER_FIELD", 22)
        report = run_lint(LintContext(), select=["AC301"])
        assert not report.ok
        # cell_flops() and cell_flops(top=True) both drift.
        assert len(report.errors) == 2
        assert all(d.code == "AC301" for d in report.errors)
        assert any("cell_flops()" in d.message for d in report.errors)

    def test_drifted_constant_is_ac301_error(self, monkeypatch):
        monkeypatch.setattr(constants, "OPS_PER_CELL", 64)
        report = run_lint(LintContext(), select=["AC301"])
        assert any("constants.OPS_PER_CELL" in d.message
                   for d in report.errors)


class TestComposition:
    def test_column_and_grid_compose(self):
        report = run_lint(LintContext(config=PAPER_CONFIG), select=["AC302"])
        assert report.ok and not report.diagnostics


class TestStageDeclarations:
    def test_structural_graph_declares_63_55(self):
        graph = build_structural_graph(PAPER_CONFIG)
        report = run_lint(LintContext(graph=graph), select=["AC303"])
        assert report.ok and not report.diagnostics

    def test_wrong_declarations_are_ac303_errors(self):
        graph = DataflowGraph("wrong")
        graph.add(SpecStage("a", flops_per_cell=20, flops_per_cell_top=20))
        graph.add(SpecStage("b", flops_per_cell=20, flops_per_cell_top=20))
        graph.add(SpecStage("c", flops_per_cell=20, flops_per_cell_top=20))
        report = run_lint(LintContext(graph=graph), select=["AC303"])
        assert not report.ok
        messages = " ".join(d.message for d in report.errors)
        assert "60" in messages  # per-cell total
        assert "requires 63" in messages

    def test_graph_without_declarations_is_skipped(self):
        graph = DataflowGraph("plain")
        graph.add(SpecStage("a"))
        report = run_lint(LintContext(graph=graph), select=["AC303"])
        assert not report.diagnostics


class TestConventionDivergence:
    def test_monc_column_height_is_quiet(self):
        # nz = 64: strict/paper = 0.98, well above the floor.
        report = run_lint(LintContext(config=PAPER_CONFIG), select=["AC304"])
        assert not report.diagnostics

    def test_short_columns_are_ac304_info(self):
        shallow = KernelConfig(grid=Grid(nx=64, ny=64, nz=3))
        report = run_lint(LintContext(config=shallow), select=["AC304"])
        (diag,) = report.diagnostics
        assert diag.code == "AC304"
        assert report.ok  # info only
