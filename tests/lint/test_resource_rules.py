"""Resource-family lint rules (RS201-RS204): the paper's scaling limits.

The paper places six kernels on the Alveo U280 before running out of LUTs
and five on the Stratix 10 before running out of ALMs.  Those counts are
regression fixtures for RS201: the last fitting count must lint clean and
one more kernel must be an error naming the limiting axis.
"""

import pytest

from repro.core.grid import Grid
from repro.hardware.devices import ALVEO_U280, STRATIX10_GX2800
from repro.kernel.config import KernelConfig
from repro.lint.runner import lint_kernel

PAPER_CONFIG = KernelConfig(grid=Grid.from_cells(2**24))


class TestScalingFixtures:
    @pytest.mark.parametrize("device,fits", [
        (ALVEO_U280, 6),
        (STRATIX10_GX2800, 5),
    ])
    def test_paper_kernel_count_lints_clean(self, device, fits):
        report = lint_kernel(PAPER_CONFIG, device, fits)
        assert report.ok, report.render_text()
        assert "RS201" not in report.codes

    @pytest.mark.parametrize("device,fits,axis", [
        (ALVEO_U280, 6, "luts"),
        (STRATIX10_GX2800, 5, "alms"),
    ])
    def test_one_more_kernel_is_rs201_error(self, device, fits, axis):
        report = lint_kernel(PAPER_CONFIG, device, fits + 1)
        assert not report.ok
        (diag,) = [d for d in report.diagnostics if d.code == "RS201"]
        assert axis in diag.message
        assert f"at most {fits} kernel(s)" in diag.hint


class TestHeadroomReport:
    def test_rs202_reports_fit_and_limiting_axis(self):
        report = lint_kernel(PAPER_CONFIG, ALVEO_U280)
        (diag,) = [d for d in report.diagnostics if d.code == "RS202"]
        assert "fits 6 kernel(s)" in diag.message
        assert "luts" in diag.message

    def test_rs202_absent_without_device(self):
        assert "RS202" not in lint_kernel(PAPER_CONFIG).codes


class TestSingleKernelFit:
    def test_paper_kernel_fits_alone(self):
        report = lint_kernel(PAPER_CONFIG, ALVEO_U280, 1)
        assert "RS203" not in report.codes

    def test_oversized_buffers_are_rs203(self):
        # A chunk the full height of a huge NY blows the on-chip RAM budget.
        huge = KernelConfig(grid=Grid(nx=4, ny=1 << 17, nz=128),
                            chunk_width=1 << 17)
        report = lint_kernel(huge, ALVEO_U280, 1)
        assert "RS203" in report.codes
        assert not report.ok


class TestMemoryCapacity:
    def test_paper_data_set_fits(self):
        assert "RS204" not in lint_kernel(PAPER_CONFIG, ALVEO_U280).codes

    @pytest.mark.parametrize("device", [ALVEO_U280, STRATIX10_GX2800])
    def test_oversized_data_set_is_rs204(self, device):
        # 1G cells x 48 B/cell = 48 GiB: beyond HBM2 (8) and DDR (32).
        big = KernelConfig(grid=Grid(nx=4096, ny=4096, nz=64))
        report = lint_kernel(big, device)
        assert "RS204" in report.codes
        assert not report.ok
