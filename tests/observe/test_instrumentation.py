"""End-to-end observability: engine, kernel sim, multi-kernel, driver."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.dataflow.monitors import ThroughputMonitor
from repro.distributed.driver import DistributedAdvection
from repro.distributed.topology import ProcessGrid
from repro.kernel.config import KernelConfig
from repro.kernel.multi_simulate import simulate_multi_kernel
from repro.kernel.simulate import simulate_kernel
from repro.observe import MetricRegistry, Tracer


@pytest.fixture
def grid():
    return Grid(nx=6, ny=9, nz=5)


@pytest.fixture
def fields(grid):
    return random_wind(grid, seed=17, magnitude=2.0)


@pytest.fixture
def config(grid):
    return KernelConfig(grid=grid, chunk_width=4)


class TestEngineTracing:
    def test_stage_activity_spans_cover_all_stages(self, config, fields):
        tracer = Tracer()
        simulate_kernel(config, fields, tracer=tracer)
        stage_spans = [s for s in tracer.spans if s.category == "stage"]
        tracks = {s.track for s in stage_spans}
        assert tracks == {"read_data", "shift_buffer", "replicate",
                          "advect_u", "advect_v", "advect_w", "write_data"}

    def test_span_args_carry_fires_and_stalls(self, config, fields):
        tracer = Tracer()
        result = simulate_kernel(config, fields, tracer=tracer)
        agg = result.aggregate_stats()
        spans = [s for s in tracer.spans
                 if s.track == "advect_u" and s.category == "stage"]
        assert sum(s.args["fires"] for s in spans) == agg.fires["advect_u"]

    def test_prime_and_steady_phases_split_the_shift_buffer(
            self, config, fields):
        tracer = Tracer()
        simulate_kernel(config, fields, tracer=tracer)
        phases = [s for s in tracer.spans_on("shift_buffer")
                  if s.category == "phase"]
        names = [s.name for s in phases]
        assert names.count("prime") == 3  # one per chunk
        assert names.count("steady") == 3
        prime = next(s for s in phases if s.name == "prime")
        steady = next(s for s in phases if s.name == "steady")
        assert prime.end == steady.start  # phases abut at first emission
        assert prime.duration > 0 and steady.duration > 0

    def test_chunks_tile_the_global_cycle_axis(self, config, fields):
        tracer = Tracer()
        result = simulate_kernel(config, fields, tracer=tracer)
        chunks = sorted(tracer.spans_on("kernel"), key=lambda s: s.start)
        assert [s.name for s in chunks] == ["chunk 0", "chunk 1", "chunk 2"]
        assert chunks[0].start == 0
        for left, right in zip(chunks, chunks[1:]):
            assert left.end == right.start
        assert chunks[-1].end == result.total_cycles

    def test_chunk_spans_carry_halo_overhead(self, config, fields):
        tracer = Tracer()
        simulate_kernel(config, fields, tracer=tracer)
        span = tracer.spans_on("kernel")[0]
        assert span.args["read_width"] == span.args["write_width"] + 2
        assert span.args["halo_overhead"] == pytest.approx(
            2 / span.args["read_width"], abs=1e-4)

    def test_fast_mode_emits_fast_forward_spans(self, config, fields):
        tracer = Tracer()
        result = simulate_kernel(config, fields, mode="fast", tracer=tracer)
        agg = result.aggregate_stats()
        ff = [s for s in tracer.spans if s.category == "fast-forward"]
        assert agg.ff_advances > 0
        assert len(ff) == agg.ff_advances
        assert sum(s.duration for s in ff) == agg.ff_cycles

    def test_monitor_veto_surfaces_as_instant(self, config, fields):
        tracer = Tracer()
        from repro.kernel.builder import build_advection_graph
        from repro.core.coefficients import AdvectionCoefficients
        from repro.core.fields import SourceSet
        from repro.dataflow.engine import DataflowEngine

        grid = config.grid
        coeffs = AdvectionCoefficients.uniform(grid)
        out = SourceSet.zeros(grid)
        chunk = config.chunk_plan().chunks[0]
        graph = build_advection_graph(config, fields, chunk, coeffs, out)
        DataflowEngine(graph, mode="fast", tracer=tracer,
                       monitors=[ThroughputMonitor("advect_u")]).run()
        vetoes = [i for i in tracer.instants
                  if i.name == "fast-forward demoted"]
        assert len(vetoes) == 1
        assert "monitors" in vetoes[0].args["reason"]

    def test_disabled_tracer_changes_nothing_and_stays_empty(
            self, config, fields):
        tracer = Tracer(enabled=False)
        traced = simulate_kernel(config, fields, tracer=tracer)
        plain = simulate_kernel(config, fields)
        assert len(tracer) == 0
        assert traced.total_cycles == plain.total_cycles
        assert np.array_equal(traced.sources.su, plain.sources.su)

    def test_exact_and_fast_traces_agree_on_chunk_boundaries(
            self, config, fields):
        exact_tracer, fast_tracer = Tracer(), Tracer()
        simulate_kernel(config, fields, tracer=exact_tracer)
        simulate_kernel(config, fields, mode="fast", tracer=fast_tracer)
        exact_chunks = [(s.start, s.end)
                        for s in exact_tracer.spans_on("kernel")]
        fast_chunks = [(s.start, s.end)
                       for s in fast_tracer.spans_on("kernel")]
        assert exact_chunks == fast_chunks


class TestEngineMetrics:
    def test_registry_matches_aggregate_stats(self, config, fields):
        registry = MetricRegistry()
        result = simulate_kernel(config, fields, metrics=registry)
        agg = result.aggregate_stats()
        assert registry.counter("engine_cycles").value() \
            == result.total_cycles
        for stage, fires in agg.fires.items():
            assert registry.counter("stage_fires").value(stage=stage) \
                == fires
        assert registry.counter("kernel_chunks").value() == 3
        assert registry.counter("kernel_chunk_retries").value() == 0
        # Two seams, each re-reading 2 Y planes of (nx+2) * nz cells.
        grid = config.grid
        assert registry.counter("kernel_halo_read_cells").value() \
            == 2 * 2 * (grid.nx + 2) * grid.nz

    def test_throughput_histogram_sees_every_stage(self, config, fields):
        registry = MetricRegistry()
        simulate_kernel(config, fields, metrics=registry)
        hist = registry.histogram("stage_throughput")
        value = hist.value(stage="advect_u")
        assert value.total == 3  # one observation per chunk run
        assert 0 < value.mean <= 1.0

    def test_disabled_registry_stays_empty(self, config, fields):
        registry = MetricRegistry(enabled=False)
        simulate_kernel(config, fields, metrics=registry)
        assert registry.counter("engine_cycles").value() == 0


class TestMultiKernelObservability:
    def test_replica_lanes_and_arbiter_metrics(self, grid, fields, config):
        tracer = Tracer()
        registry = MetricRegistry()
        result = simulate_multi_kernel(
            config, fields, num_kernels=2, tracer=tracer, metrics=registry)
        tracks = set(tracer.tracks())
        assert "k0.advect_u" in tracks and "k1.advect_u" in tracks
        chunk_spans = tracer.spans_on("kernel")
        assert chunk_spans[-1].end == result.total_cycles
        assert registry.counter("arbiter_grants").value() \
            == result.arbiter.grants
        assert registry.gauge("read_starvation_fraction").value() \
            == result.read_starvation_fraction


class TestDistributedTracing:
    def test_per_rank_lanes_on_modelled_seconds(self, grid, fields):
        tracer = Tracer()
        topology = ProcessGrid(grid, 2, 1)
        driver = DistributedAdvection(topology, tracer=tracer)
        driver.compute(fields)
        report = driver.last_report
        assert {"rank0", "rank1", "comm", "driver"} <= set(tracer.tracks())
        (comm,) = tracer.spans_on("comm")
        assert comm.duration == pytest.approx(report.comm_seconds)
        (step,) = tracer.spans_on("driver")
        assert step.duration == pytest.approx(report.total_seconds)
        for rank in ("rank0", "rank1"):
            (span,) = tracer.spans_on(rank)
            assert span.start == pytest.approx(report.comm_seconds)

    def test_steps_lay_end_to_end(self, grid, fields):
        tracer = Tracer()
        driver = DistributedAdvection(ProcessGrid(grid, 2, 1),
                                      tracer=tracer)
        driver.compute(fields)
        driver.compute(fields)
        steps = tracer.spans_on("driver")
        assert len(steps) == 2
        assert steps[1].start == pytest.approx(steps[0].end)
