"""Ops-per-cycle accounting against the paper's 62.875 theoretical."""

import pytest

from repro import constants
from repro.core.flops import cell_flops
from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.dataflow.engine import RunStats
from repro.errors import ConfigurationError
from repro.kernel.config import KernelConfig
from repro.kernel.simulate import simulate_kernel
from repro.observe import OpsPerCycleReport, flops_from_stats, \
    ops_per_cycle_report


def stats_for_columns(columns: int, nz: int) -> RunStats:
    fires = columns * (nz - 1)
    return RunStats(cycles=fires + 100, fires={
        "advect_u": fires, "advect_v": fires, "advect_w": fires,
    })


class TestFlopsFromStats:
    def test_counts_follow_the_63_55_model(self):
        nz = 5
        stats = stats_for_columns(columns=2, nz=nz)
        # 21 ops per fire; U and V each save 4 at the one top cell per
        # column.
        per_field = 2 * (nz - 1) * constants.OPS_PER_FIELD
        expected = 3 * per_field - 2 * 2 * constants.OPS_TOP_SAVING_PER_FIELD
        assert flops_from_stats(stats, nz) == expected

    def test_matches_emitted_cell_count_on_a_simulated_run(self):
        grid = Grid(nx=6, ny=9, nz=5)
        fields = random_wind(grid, seed=17)
        result = simulate_kernel(KernelConfig(grid=grid, chunk_width=4),
                                 fields)
        measured = flops_from_stats(result.aggregate_stats(), grid.nz)
        # Each column streams nz - 1 output cells, one of them a top cell.
        per_column = (grid.nz - 2) * cell_flops() + cell_flops(top=True)
        assert measured == grid.num_columns * per_column

    def test_multi_kernel_prefixes_are_stripped(self):
        nz = 4
        fires = 3 * (nz - 1)
        stats = RunStats(cycles=10, fires={
            f"k{p}.advect_{f}": fires
            for p in range(2) for f in ("u", "v", "w")
        })
        single = RunStats(cycles=10, fires={
            f"advect_{f}": fires for f in ("u", "v", "w")})
        assert flops_from_stats(stats, nz) == 2 * flops_from_stats(single, nz)

    def test_no_advect_stages_rejected(self):
        with pytest.raises(ConfigurationError):
            flops_from_stats(RunStats(cycles=5, fires={"read_data": 7}), 5)

    def test_wrong_column_height_rejected(self):
        stats = stats_for_columns(columns=2, nz=5)
        with pytest.raises(ConfigurationError):
            flops_from_stats(stats, 7)


class TestReport:
    def test_theoretical_matches_paper_figure(self):
        report = OpsPerCycleReport(cycles=100, flops=100, column_height=64)
        assert report.theoretical_ops_per_cycle == pytest.approx(62.875)

    def test_achieved_and_percent(self):
        report = OpsPerCycleReport(cycles=200, flops=6000, column_height=64)
        assert report.achieved_ops_per_cycle == 30.0
        assert report.percent_of_theoretical == pytest.approx(
            100 * 30.0 / 62.875)

    def test_gflops_at_a_clock(self):
        report = OpsPerCycleReport(cycles=100, flops=6000, column_height=64)
        assert report.achieved_gflops(300.0) == pytest.approx(18.0)
        with pytest.raises(ConfigurationError):
            report.achieved_gflops(0)

    def test_report_from_stats_defaults_to_stats_cycles(self):
        stats = stats_for_columns(columns=4, nz=5)
        report = ops_per_cycle_report(stats, nz=5)
        assert report.cycles == stats.cycles
        assert ops_per_cycle_report(stats, nz=5, cycles=7).cycles == 7

    def test_summary_and_dict_round_numbers(self):
        report = ops_per_cycle_report(stats_for_columns(4, 5), nz=5)
        data = report.to_dict()
        assert data["flops"] == report.flops
        assert "achieved" in report.summary()
