"""Property tests: counter monotonicity, histogram merge associativity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observe import DEFAULT_BUCKETS, HistogramValue, MetricRegistry

amounts = st.lists(st.floats(min_value=0, max_value=1e9,
                             allow_nan=False), max_size=50)
observations = st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                  allow_nan=False), max_size=40)


def value_of(samples):
    value = HistogramValue(bounds=DEFAULT_BUCKETS)
    for sample in samples:
        value.observe(sample)
    return value


def assert_equivalent(left, right):
    """Bucket contents identical; sums equal up to float reassociation."""
    assert left.counts == right.counts
    assert left.overflow == right.overflow
    assert left.total == right.total
    assert left.sum == pytest.approx(right.sum)


@settings(max_examples=80, deadline=None)
@given(amounts)
def test_counter_is_monotone_under_any_increment_sequence(increments):
    counter = MetricRegistry().counter("n")
    previous = 0.0
    for amount in increments:
        counter.inc(amount)
        value = counter.value()
        assert value >= previous
        previous = value


@settings(max_examples=80, deadline=None)
@given(observations, observations, observations)
def test_histogram_merge_is_associative(xs, ys, zs):
    a, b, c = value_of(xs), value_of(ys), value_of(zs)
    assert_equivalent(a.merge(b).merge(c), a.merge(b.merge(c)))


@settings(max_examples=80, deadline=None)
@given(observations, observations)
def test_histogram_merge_is_commutative_and_lossless(xs, ys):
    merged = value_of(xs).merge(value_of(ys))
    assert_equivalent(merged, value_of(ys).merge(value_of(xs)))
    # Merging per-part histograms equals observing the concatenation.
    assert_equivalent(merged, value_of(xs + ys))
