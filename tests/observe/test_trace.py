"""Span-based tracer: deterministic clocks, offsets, cheap disabling."""

import pytest

from repro.errors import ConfigurationError
from repro.observe import Tracer


class TestSpans:
    def test_add_span_records_interval(self):
        tracer = Tracer()
        tracer.add_span("work", "engine", 10, 25, category="stage", fires=3)
        (span,) = tracer.spans
        assert span.start == 10 and span.end == 25
        assert span.duration == 15
        assert span.args == {"fires": 3}

    def test_backwards_span_rejected(self):
        tracer = Tracer()
        with pytest.raises(ConfigurationError):
            tracer.add_span("bad", "engine", 10, 5)

    def test_span_context_manager_reads_clock(self):
        clock = iter([100.0, 140.0])
        tracer = Tracer(clock=lambda: next(clock))
        with tracer.span("tick", "engine"):
            pass
        (span,) = tracer.spans
        assert (span.start, span.end) == (100.0, 140.0)

    def test_now_without_clock_raises(self):
        with pytest.raises(ConfigurationError):
            Tracer().now()


class TestShifted:
    def test_shifted_offsets_all_records(self):
        tracer = Tracer()
        with tracer.shifted(1000):
            tracer.add_span("chunk", "kernel", 0, 50)
            tracer.instant("seam", "kernel", ts=50)
            tracer.counter("fifo", "kernel", ts=25, depth=2)
        assert tracer.spans[0].start == 1000
        assert tracer.spans[0].end == 1050
        assert tracer.instants[0].ts == 1050
        assert tracer.counters[0].ts == 1025

    def test_shifts_nest_and_unwind(self):
        tracer = Tracer()
        with tracer.shifted(100):
            with tracer.shifted(10):
                tracer.add_span("inner", "t", 0, 1)
            tracer.add_span("outer", "t", 0, 1)
        tracer.add_span("bare", "t", 0, 1)
        starts = [s.start for s in tracer.spans]
        assert starts == [110, 100, 0]


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.add_span("a", "t", 0, 1)
        tracer.instant("b", "t", ts=0)
        tracer.counter("c", "t", ts=0, v=1)
        with tracer.span("d", "t"):  # must not even read the clock
            pass
        assert len(tracer) == 0


class TestQueries:
    def test_tracks_keep_first_recorded_order(self):
        tracer = Tracer()
        tracer.add_span("a", "zeta", 0, 1)
        tracer.instant("b", "alpha", ts=0)
        tracer.add_span("c", "zeta", 1, 2)
        assert tracer.tracks() == ["zeta", "alpha"]

    def test_spans_on_filters_by_track(self):
        tracer = Tracer()
        tracer.add_span("a", "one", 0, 1)
        tracer.add_span("b", "two", 0, 1)
        assert [s.name for s in tracer.spans_on("one")] == ["a"]

    def test_clear_empties_everything(self):
        tracer = Tracer()
        tracer.add_span("a", "t", 0, 1)
        tracer.instant("b", "t", ts=0)
        tracer.clear()
        assert len(tracer) == 0 and tracer.tracks() == []
