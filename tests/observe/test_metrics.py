"""Metric registry: counters, gauges, histograms, label sets."""

import pytest

from repro.errors import ConfigurationError
from repro.observe import HistogramValue, MetricRegistry


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        registry = MetricRegistry()
        fires = registry.counter("stage_fires")
        fires.inc(3, stage="read")
        fires.inc(2, stage="read")
        fires.inc(5, stage="write")
        assert fires.value(stage="read") == 5
        assert fires.value(stage="write") == 5
        assert fires.value(stage="absent") == 0

    def test_negative_increment_rejected(self):
        counter = MetricRegistry().counter("n")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_label_order_is_canonical(self):
        counter = MetricRegistry().counter("n")
        counter.inc(1, a="x", b="y")
        counter.inc(1, b="y", a="x")
        assert counter.value(a="x", b="y") == 2


class TestGauge:
    def test_set_is_last_write_wins(self):
        gauge = MetricRegistry().gauge("depth")
        gauge.set(5, stream="s")
        gauge.set(2, stream="s")
        assert gauge.value(stream="s") == 2

    def test_set_max_keeps_high_water(self):
        gauge = MetricRegistry().gauge("high")
        gauge.set_max(5, stream="s")
        gauge.set_max(2, stream="s")
        gauge.set_max(9, stream="s")
        assert gauge.value(stream="s") == 9


class TestHistogram:
    def test_observations_land_in_buckets(self):
        hist = MetricRegistry().histogram("h", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 1.7, 99.0):
            hist.observe(v)
        value = hist.value()
        assert value.counts == [1, 2]
        assert value.overflow == 1
        assert value.total == 4
        assert value.mean == pytest.approx((0.5 + 1.5 + 1.7 + 99.0) / 4)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricRegistry().histogram("h", buckets=(2.0, 1.0))

    def test_merge_requires_identical_bounds(self):
        a = HistogramValue(bounds=(1.0,))
        b = HistogramValue(bounds=(2.0,))
        with pytest.raises(ConfigurationError):
            a.merge(b)


class TestRegistry:
    def test_factories_are_idempotent(self):
        registry = MetricRegistry()
        assert registry.counter("n") is registry.counter("n")

    def test_kind_mismatch_rejected(self):
        registry = MetricRegistry()
        registry.counter("n")
        with pytest.raises(ConfigurationError):
            registry.gauge("n")

    def test_should_sample_strides_like_monitors(self):
        registry = MetricRegistry(sample_every=4)
        sampled = [c for c in range(12) if registry.should_sample(c)]
        assert sampled == [0, 4, 8]

    def test_invalid_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricRegistry(sample_every=0)

    def test_disabled_registry_is_a_no_op(self):
        registry = MetricRegistry(enabled=False)
        registry.counter("n").inc(5)
        registry.gauge("g").set_max(3)
        registry.histogram("h").observe(1.0)
        assert registry.counter("n").value() == 0
        assert registry.gauge("g").value() == 0
        assert registry.histogram("h").value().total == 0
        assert not registry.should_sample(0)

    def test_snapshot_and_text_are_sorted_and_stable(self):
        registry = MetricRegistry()
        registry.counter("z_last", " zzz").inc(1, stage="s")
        registry.gauge("a_first").set(2)
        snap = registry.snapshot()
        assert list(snap) == ["a_first", "z_last"]
        text = registry.render_text()
        assert "# TYPE z_last counter" in text
        assert 'z_last{stage="s"} 1' in text

    def test_histogram_text_exposes_count_and_sum(self):
        registry = MetricRegistry()
        registry.histogram("h").observe(0.5, stage="s")
        text = registry.render_text()
        assert 'h_count{stage="s"} 1' in text
        assert 'h_sum{stage="s"} 0.5' in text
