"""Single-file Chrome/Perfetto export of tracer + schedule."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.observe import Tracer, build_trace, tracer_to_events, write_trace
from repro.observe.export import ENGINE_PID, SCHEDULE_PID, SERVE_PID
from repro.runtime.event import Command
from repro.runtime.queue import CommandQueue
from repro.runtime.simulator import simulate_schedule


def sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.add_span("run", "engine", 0, 100, category="run")
    tracer.add_span("active", "read_data", 2, 90, category="stage", fires=88)
    tracer.instant("seam", "kernel", ts=50, chunk=1)
    tracer.counter("fifo_high_water", "fifo", ts=100, s1=3)
    return tracer


def sample_schedule():
    queue = CommandQueue()
    h2d = Command("h2d[0]", "pcie_h2d", 0.010)
    queue.enqueue(h2d)
    queue.enqueue(Command("kernel[0]", "kernel", 0.005,
                          wait_for=[h2d.event]))
    return simulate_schedule(queue)


class TestTracerToEvents:
    def test_one_thread_row_per_track(self):
        events = tracer_to_events(sample_tracer())
        rows = {e["args"]["name"]: e["tid"]
                for e in events if e["name"] == "thread_name"}
        assert set(rows) == {"engine", "read_data", "kernel", "fifo"}
        assert rows["engine"] == 0  # first-recorded order

    def test_phases_cover_span_instant_counter(self):
        events = tracer_to_events(sample_tracer())
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C"} <= phases

    def test_time_scale_converts_cycles(self):
        events = tracer_to_events(sample_tracer(), time_scale_us=0.5)
        span = next(e for e in events if e["name"] == "active")
        assert span["ts"] == pytest.approx(1.0)
        assert span["dur"] == pytest.approx(44.0)

    def test_bad_time_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            tracer_to_events(sample_tracer(), time_scale_us=0)


class TestBuildTrace:
    def test_needs_at_least_one_source(self):
        with pytest.raises(ConfigurationError):
            build_trace()

    def test_merged_trace_has_both_processes(self):
        payload = build_trace(sample_tracer(), sample_schedule())
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert pids == {ENGINE_PID, SCHEDULE_PID}
        names = {e["args"]["name"] for e in payload["traceEvents"]
                 if e["name"] == "process_name"}
        assert names == {"advection [engine]", "advection [host]"}

    def test_tracer_only_and_schedule_only_work(self):
        assert build_trace(sample_tracer())["traceEvents"]
        assert build_trace(schedule=sample_schedule())["traceEvents"]


class TestWriteTrace:
    def test_written_file_is_loadable_json(self, tmp_path):
        path = write_trace(tmp_path / "t.json", sample_tracer(),
                           sample_schedule())
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) > 4

    def test_trace_is_deterministic(self, tmp_path):
        a = write_trace(tmp_path / "a.json", sample_tracer())
        b = write_trace(tmp_path / "b.json", sample_tracer())
        assert a.read_text() == b.read_text()


class TestServeTracer:
    def serve_tracer(self) -> Tracer:
        tracer = Tracer()
        tracer.add_span("job-0001", "u280-0", 0.001, 0.003,
                        category="serve", mode="fast")
        tracer.instant("reshard", "scheduler", ts=0.002, job="job-0002")
        return tracer

    def test_serve_events_land_on_their_own_process(self):
        payload = build_trace(serve_tracer=self.serve_tracer())
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert pids == {SERVE_PID}
        names = {e["args"]["name"] for e in payload["traceEvents"]
                 if e["name"] == "process_name"}
        assert names == {"advection [fleet]"}

    def test_serve_seconds_scale_to_microseconds(self):
        payload = build_trace(serve_tracer=self.serve_tracer())
        span = next(e for e in payload["traceEvents"]
                    if e["name"] == "job-0001")
        assert span["ts"] == pytest.approx(1000.0)
        assert span["dur"] == pytest.approx(2000.0)

    def test_serve_merges_with_engine_and_schedule(self):
        payload = build_trace(sample_tracer(), sample_schedule(),
                              serve_tracer=self.serve_tracer())
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert pids == {ENGINE_PID, SCHEDULE_PID, SERVE_PID}

    def test_serve_tracer_alone_satisfies_source_check(self):
        assert build_trace(serve_tracer=self.serve_tracer())["traceEvents"]
        with pytest.raises(ConfigurationError):
            build_trace()

    def test_write_trace_accepts_serve_tracer(self, tmp_path):
        path = write_trace(tmp_path / "serve.json",
                           serve_tracer=self.serve_tracer())
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]
