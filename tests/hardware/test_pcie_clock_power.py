"""PCIe link, clock scaling and power models."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.clock import ClockModel
from repro.hardware.pcie import PCIeLink
from repro.hardware.power import PowerModel


class TestPCIeLink:
    def test_streamed_faster_than_synchronous(self):
        link = PCIeLink(streamed_bandwidth=12e9, synchronous_bandwidth=4e9)
        nbytes = 1e9
        assert link.transfer_time(nbytes, streamed=True) < link.transfer_time(
            nbytes, streamed=False)

    def test_latency_added_once(self):
        link = PCIeLink(streamed_bandwidth=1e9, synchronous_bandwidth=1e9,
                        latency=1e-3)
        assert link.transfer_time(1e9, streamed=True) == pytest.approx(
            1.0 + 1e-3)

    def test_zero_bytes_is_free(self):
        link = PCIeLink(streamed_bandwidth=1e9, synchronous_bandwidth=1e9,
                        latency=1e-3)
        assert link.transfer_time(0.0, streamed=True) == 0.0

    def test_round_trip_duplex_concurrent(self):
        link = PCIeLink(streamed_bandwidth=1e9, synchronous_bandwidth=1e9,
                        latency=0.0, duplex=True)
        t = link.round_trip_time(2e9, 1e9, streamed=True, concurrent=True)
        assert t == pytest.approx(2.0)  # max, not sum

    def test_round_trip_serial(self):
        link = PCIeLink(streamed_bandwidth=1e9, synchronous_bandwidth=1e9,
                        latency=0.0, duplex=True)
        t = link.round_trip_time(2e9, 1e9, streamed=True, concurrent=False)
        assert t == pytest.approx(3.0)

    def test_non_duplex_never_concurrent(self):
        link = PCIeLink(streamed_bandwidth=1e9, synchronous_bandwidth=1e9,
                        latency=0.0, duplex=False)
        t = link.round_trip_time(1e9, 1e9, streamed=True, concurrent=True)
        assert t == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PCIeLink(streamed_bandwidth=0.0, synchronous_bandwidth=1.0)
        with pytest.raises(ConfigurationError):
            PCIeLink(streamed_bandwidth=1e9, synchronous_bandwidth=2e9)
        with pytest.raises(ConfigurationError):
            PCIeLink(streamed_bandwidth=2e9, synchronous_bandwidth=1e9,
                     latency=-1.0)
        with pytest.raises(ConfigurationError):
            PCIeLink(streamed_bandwidth=1e9,
                     synchronous_bandwidth=1e9).transfer_time(
                         -1.0, streamed=True)


class TestClockModel:
    def test_constant_clock(self):
        clock = ClockModel.constant(300.0)
        assert clock.frequency_mhz(1) == 300.0
        assert clock.frequency_mhz(6) == 300.0

    def test_table_lookup_and_tail(self):
        clock = ClockModel(table_mhz=(398.0, 360.0, 325.0, 285.0, 250.0))
        assert clock.frequency_mhz(1) == 398.0
        assert clock.frequency_mhz(5) == 250.0
        assert clock.frequency_mhz(9) == 250.0  # past the table: last entry

    def test_frequency_hz(self):
        assert ClockModel.constant(300.0).frequency_hz(1) == 300e6

    def test_rejects_increasing_table(self):
        with pytest.raises(ConfigurationError):
            ClockModel(table_mhz=(200.0, 300.0))

    def test_rejects_empty_or_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ClockModel(table_mhz=())
        with pytest.raises(ConfigurationError):
            ClockModel(table_mhz=(300.0, 0.0))

    def test_rejects_bad_kernel_count(self):
        with pytest.raises(ConfigurationError):
            ClockModel.constant(300.0).frequency_hz(0)


class TestPowerModel:
    @pytest.fixture
    def power(self):
        return PowerModel(static_watts=30.0, dynamic_watts_per_kernel=5.0,
                          memory_watts={"hbm2": 6.0, "ddr": 18.0},
                          transfer_watts=4.0)

    def test_active_watts_composition(self, power):
        assert power.active_watts(6, "hbm2") == pytest.approx(66.0)
        assert power.active_watts(6, "hbm2",
                                  transferring=True) == pytest.approx(70.0)

    def test_memory_delta(self, power):
        """The U280's measured +12 W when moving from HBM2 to DDR."""
        assert power.active_watts(6, "ddr") - power.active_watts(
            6, "hbm2") == pytest.approx(12.0)

    def test_idle_kernels_no_memory_power(self, power):
        assert power.active_watts(0, "hbm2") == pytest.approx(30.0)

    def test_unknown_memory_rejected(self, power):
        with pytest.raises(ConfigurationError):
            power.active_watts(1, "optane")

    def test_profile_time_weighting(self, power):
        sample = power.profile(runtime=10.0, compute_time=5.0,
                               transfer_time=10.0, num_kernels=2,
                               memory="hbm2")
        expected = 30.0 + 0.5 * (10.0 + 6.0) + 1.0 * 4.0
        assert sample.average_watts == pytest.approx(expected)
        assert sample.energy_joules == pytest.approx(expected * 10.0)

    def test_profile_clamps_busy_times(self, power):
        sample = power.profile(runtime=1.0, compute_time=5.0,
                               transfer_time=0.0, num_kernels=1,
                               memory="ddr")
        assert sample.average_watts == pytest.approx(30.0 + 5.0 + 18.0)

    def test_profile_rejects_bad_runtime(self, power):
        with pytest.raises(ConfigurationError):
            power.profile(runtime=0.0, compute_time=0.0, transfer_time=0.0,
                          num_kernels=1, memory="hbm2")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerModel(static_watts=0.0, dynamic_watts_per_kernel=1.0,
                       memory_watts={})
        with pytest.raises(ConfigurationError):
            PowerModel(static_watts=1.0, dynamic_watts_per_kernel=-1.0,
                       memory_watts={})
        with pytest.raises(ConfigurationError):
            PowerModel(static_watts=1.0, dynamic_watts_per_kernel=1.0,
                       memory_watts={"x": -2.0})
