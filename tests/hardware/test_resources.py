"""Resource vectors and kernel fitting."""

import pytest

from repro.core.grid import Grid
from repro.errors import ResourceError
from repro.hardware.resources import (
    ResourceVector,
    estimate_kernel_resources,
    fit_kernels,
)
from repro.kernel.config import KernelConfig


@pytest.fixture
def config():
    return KernelConfig(grid=Grid(nx=512, ny=512, nz=64))


class TestResourceVector:
    def test_addition(self):
        a = ResourceVector(luts=10, dsp=5)
        b = ResourceVector(luts=1, bram_bytes=100)
        c = a + b
        assert c.luts == 11 and c.dsp == 5 and c.bram_bytes == 100

    def test_scaling(self):
        v = ResourceVector(luts=10, alms=3).scaled(4)
        assert v.luts == 40 and v.alms == 12

    def test_scaling_rejects_negative(self):
        with pytest.raises(ResourceError):
            ResourceVector(luts=1).scaled(-1)

    def test_fits_respects_routable_fraction(self):
        need = ResourceVector(luts=90)
        cap = ResourceVector(luts=100)
        assert not need.fits_in(cap, routable=0.85)
        assert need.fits_in(cap, routable=0.95)

    def test_zero_need_always_fits(self):
        assert ResourceVector().fits_in(ResourceVector(luts=1))

    def test_axis_with_zero_capacity_ignored_when_unused(self):
        # An Intel device has zero LUT capacity; a kernel using only ALMs
        # must still fit.
        need = ResourceVector(alms=10)
        cap = ResourceVector(alms=100)
        assert need.fits_in(cap)

    def test_utilisation(self):
        need = ResourceVector(luts=50, dsp=10)
        cap = ResourceVector(luts=100, dsp=100)
        util = need.utilisation(cap)
        assert util["luts"] == pytest.approx(0.5)
        assert util["dsp"] == pytest.approx(0.1)
        assert "alms" not in util


class TestKernelEstimate:
    def test_xilinx_uses_xilinx_axes(self, config):
        r = estimate_kernel_resources(config, "xilinx")
        assert r.luts > 0 and r.dsp > 0 and r.bram_bytes > 0
        assert r.alms == 0 and r.m20k_bytes == 0

    def test_intel_uses_intel_axes(self, config):
        r = estimate_kernel_resources(config, "intel")
        assert r.alms > 0 and r.dsp > 0 and r.m20k_bytes > 0
        assert r.luts == 0 and r.bram_bytes == 0

    def test_unknown_family_rejected(self, config):
        with pytest.raises(ResourceError):
            estimate_kernel_resources(config, "lattice")

    def test_buffer_footprint_follows_chunk_width(self):
        grid = Grid(nx=8, ny=256, nz=64)
        small = estimate_kernel_resources(
            KernelConfig(grid=grid, chunk_width=16), "xilinx")
        large = estimate_kernel_resources(
            KernelConfig(grid=grid, chunk_width=128), "xilinx")
        assert large.bram_bytes > small.bram_bytes


class TestFitKernels:
    def test_shell_reduces_fit(self):
        kernel = ResourceVector(luts=100)
        cap = ResourceVector(luts=1000)
        assert fit_kernels(kernel, cap) > fit_kernels(
            kernel, cap, shell=ResourceVector(luts=400))

    def test_zero_fit_when_kernel_too_big(self):
        assert fit_kernels(ResourceVector(luts=1000),
                           ResourceVector(luts=100)) == 0

    def test_paper_fits(self, config):
        """Section IV: six kernels on the U280, five on the Stratix 10."""
        from repro.hardware import ALVEO_U280, STRATIX10_GX2800

        assert ALVEO_U280.max_kernels(config) == 6
        assert STRATIX10_GX2800.max_kernels(config) == 5

    def test_single_kernel_modest_utilisation(self, config):
        """Section IV: one kernel occupies ~15% of either FPGA."""
        from repro.hardware import ALVEO_U280, STRATIX10_GX2800

        for device in (ALVEO_U280, STRATIX10_GX2800):
            util = device.kernel_resources(config).utilisation(device.capacity)
            assert max(util.values()) < 0.25
