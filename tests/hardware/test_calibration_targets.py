"""The device models must land on the paper's published measurements.

These are the headline reproduction checks: every number here comes from
the paper (via the calibration registry) and every measured value flows
through the models — if a model regresses, these tests catch it.
"""

import pytest

from repro.core.grid import Grid
from repro.hardware import ALVEO_U280, STRATIX10_GX2800
from repro.kernel.config import KernelConfig
from repro.perf.calibration import CALIBRATION, paper_value
from repro.perf.theoretical import percent_of_theoretical, theoretical_gflops


@pytest.fixture(scope="module")
def grid16m():
    return Grid.from_cells(16 * 1024 * 1024)


@pytest.fixture(scope="module")
def config(grid16m):
    return KernelConfig(grid=grid16m)


class TestTheoreticalPeaks:
    def test_alveo_peak(self):
        assert theoretical_gflops(300.0) == pytest.approx(
            paper_value("theory.u280_peak_gflops"), abs=0.005)

    def test_stratix_peak(self):
        assert theoretical_gflops(398.0) == pytest.approx(
            paper_value("theory.stratix_peak_gflops"), abs=0.005)


class TestTable1Targets:
    def test_u280_single_kernel(self, config, grid16m):
        gflops = ALVEO_U280.invocation(config, grid16m, num_kernels=1,
                                       memory="hbm2").gflops(grid16m)
        assert gflops == pytest.approx(
            paper_value("table1.u280_gflops"), rel=0.02)

    def test_stratix_single_kernel(self, config, grid16m):
        gflops = STRATIX10_GX2800.invocation(config, grid16m,
                                             num_kernels=1).gflops(grid16m)
        assert gflops == pytest.approx(
            paper_value("table1.stratix_gflops"), rel=0.02)

    def test_u280_percent_theoretical(self, config, grid16m):
        gflops = ALVEO_U280.invocation(config, grid16m, num_kernels=1,
                                       memory="hbm2").gflops(grid16m)
        assert percent_of_theoretical(gflops, 300.0) == pytest.approx(
            paper_value("table1.u280_pct_theoretical"), abs=2.0)

    def test_stratix_percent_theoretical(self, config, grid16m):
        gflops = STRATIX10_GX2800.invocation(config, grid16m,
                                             num_kernels=1).gflops(grid16m)
        assert percent_of_theoretical(gflops, 398.0) == pytest.approx(
            paper_value("table1.stratix_pct_theoretical"), abs=2.0)

    def test_stratix_beats_cpu_u280_just_short(self, config, grid16m):
        """Table I's narrative: the Stratix outperforms the 24-core CPU,
        the U280 falls slightly short of it."""
        from repro.hardware import XEON_8260M

        cpu = XEON_8260M.gflops()
        u280 = ALVEO_U280.invocation(config, grid16m, num_kernels=1,
                                     memory="hbm2").gflops(grid16m)
        stratix = STRATIX10_GX2800.invocation(config, grid16m,
                                              num_kernels=1).gflops(grid16m)
        assert stratix > cpu
        assert 0.90 * cpu < u280 < cpu


class TestTable2Targets:
    @pytest.mark.parametrize("label,hbm_paper,ddr_paper", [
        ("1M", 12.98, 8.98),
        ("4M", 14.94, 10.21),
        ("16M", 14.52, 10.43),
        ("67M", 14.68, 10.55),
    ])
    def test_within_ten_percent_of_paper(self, label, hbm_paper, ddr_paper):
        from repro.constants import PAPER_GRID_LABELS

        grid = Grid.from_cells(PAPER_GRID_LABELS[label])
        config = KernelConfig(grid=grid)
        hbm = ALVEO_U280.invocation(config, grid, num_kernels=1,
                                    memory="hbm2").gflops(grid)
        ddr = ALVEO_U280.invocation(config, grid, num_kernels=1,
                                    memory="ddr").gflops(grid)
        assert hbm == pytest.approx(hbm_paper, rel=0.10)
        assert ddr == pytest.approx(ddr_paper, rel=0.12)
        # The qualitative claim: HBM2 wins by a wide margin at every size.
        assert hbm / ddr > 1.3


class TestCalibrationRegistry:
    def test_all_entries_have_sources(self):
        for entry in CALIBRATION.values():
            assert entry.source
            assert entry.pins
            assert entry.unit

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            paper_value("table9.nothing")

    def test_previous_generation_comparison(self):
        """Section III: the KU115-2 reached 18.8 GFLOPS with *eight*
        kernels; a single Alveo kernel achieves ~77% of that and a single
        Stratix kernel beats it by ~10%."""
        grid = Grid.from_cells(16 * 1024 * 1024)
        config = KernelConfig(grid=grid)
        ku115_8_kernels = 18.8
        u280 = ALVEO_U280.invocation(config, grid, num_kernels=1,
                                     memory="hbm2").gflops(grid)
        stratix = STRATIX10_GX2800.invocation(config, grid,
                                              num_kernels=1).gflops(grid)
        assert u280 / ku115_8_kernels == pytest.approx(0.77, abs=0.03)
        assert stratix / ku115_8_kernels == pytest.approx(1.10, abs=0.04)
