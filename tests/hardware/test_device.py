"""FPGADevice behaviour: memory selection and invocation timing."""

import pytest

from repro.core.grid import Grid
from repro.errors import CapacityError, ConfigurationError
from repro.hardware import ALVEO_U280, STRATIX10_GX2800
from repro.kernel.config import KernelConfig


@pytest.fixture
def config():
    return KernelConfig(grid=Grid(nx=128, ny=128, nz=64))


class TestMemorySelection:
    def test_prefers_hbm2_when_it_fits(self):
        assert ALVEO_U280.select_memory(4 * 2**30) == "hbm2"

    def test_falls_back_to_ddr(self):
        """The paper's two largest configurations exceed 8 GB of HBM2."""
        assert ALVEO_U280.select_memory(12 * 2**30) == "ddr"

    def test_raises_when_nothing_fits(self):
        with pytest.raises(CapacityError):
            ALVEO_U280.select_memory(64 * 2**30)

    def test_stratix_only_has_ddr(self):
        assert STRATIX10_GX2800.select_memory(1 * 2**30) == "ddr"
        with pytest.raises(ConfigurationError):
            STRATIX10_GX2800.memory_model("hbm2")

    def test_paper_268m_exceeds_hbm(self):
        from repro.constants import PAPER_GRID_LABELS

        bytes_268m = 48 * PAPER_GRID_LABELS["268M"]
        assert ALVEO_U280.select_memory(bytes_268m) == "ddr"
        bytes_67m = 48 * PAPER_GRID_LABELS["67M"]
        assert ALVEO_U280.select_memory(bytes_67m) == "hbm2"


class TestInvocation:
    def test_memory_bound_on_hbm(self, config):
        grid = config.grid
        inv = ALVEO_U280.invocation(config, grid, num_kernels=1,
                                    memory="hbm2")
        assert inv.memory_bound
        assert inv.seconds >= inv.compute_seconds

    def test_ddr_slower_than_hbm(self, config):
        grid = config.grid
        hbm = ALVEO_U280.invocation(config, grid, num_kernels=1,
                                    memory="hbm2")
        ddr = ALVEO_U280.invocation(config, grid, num_kernels=1,
                                    memory="ddr")
        assert ddr.seconds > hbm.seconds

    def test_more_kernels_faster_until_aggregate(self, config):
        grid = Grid(nx=512, ny=512, nz=64)
        one = ALVEO_U280.invocation(config.for_grid(grid), grid,
                                    num_kernels=1, memory="hbm2")
        six = ALVEO_U280.invocation(config.for_grid(grid), grid,
                                    num_kernels=6, memory="hbm2")
        assert six.seconds < one.seconds / 4

    def test_ddr_aggregate_limits_scaling(self, config):
        """Two DDR banks saturate: six kernels barely beat two."""
        grid = Grid(nx=512, ny=512, nz=64)
        two = ALVEO_U280.invocation(config.for_grid(grid), grid,
                                    num_kernels=2, memory="ddr")
        six = ALVEO_U280.invocation(config.for_grid(grid), grid,
                                    num_kernels=6, memory="ddr")
        assert six.seconds > 0.7 * two.seconds

    def test_stratix_clock_derating_visible(self, config):
        grid = Grid(nx=512, ny=512, nz=64)
        one = STRATIX10_GX2800.invocation(config.for_grid(grid), grid,
                                          num_kernels=1)
        assert one.clock_hz == pytest.approx(398e6)
        five = STRATIX10_GX2800.invocation(config.for_grid(grid), grid,
                                           num_kernels=5)
        assert five.clock_hz == pytest.approx(250e6)

    def test_rejects_bad_kernel_count(self, config):
        with pytest.raises(ConfigurationError):
            ALVEO_U280.invocation(config, config.grid, num_kernels=0)

    def test_gflops_helper(self, config):
        inv = ALVEO_U280.invocation(config, config.grid, num_kernels=1,
                                    memory="hbm2")
        assert inv.gflops(config.grid) > 0

    def test_auto_memory_selection(self, config):
        inv = ALVEO_U280.invocation(config, config.grid, num_kernels=1)
        assert inv.memory == "hbm2"
