"""The §V next-generation AI-engine projection."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.versal import (
    STRATIX10_NX_PROJECTION,
    VERSAL_VC1902,
    AIEngineProjection,
)


class TestVersalProjection:
    def test_paper_peak_arithmetic(self):
        """400 engines x 1 GHz x 8 SP FLOPs/cycle = 3.2 TFLOPS."""
        assert VERSAL_VC1902.compute_peak_gflops == pytest.approx(3200.0)

    def test_feed_bound_as_paper_predicts(self):
        """'keeping the engines fed with data will be the key' — the
        projection is feed-bound, not compute-bound."""
        assert VERSAL_VC1902.feed_bound

    def test_attainable_below_raw_peak(self):
        attainable = VERSAL_VC1902.attainable_gflops()
        assert attainable < VERSAL_VC1902.compute_peak_gflops
        assert attainable > 1000.0  # still a massive step over the U280

    def test_speedup_over_current_alveo(self):
        """Projected single-precision speedup over the 6-kernel U280's
        ~87 GFLOPS kernel capacity is an order of magnitude."""
        speedup = VERSAL_VC1902.speedup_over(87.0)
        assert speedup > 10.0

    def test_stratix_nx_also_projected(self):
        assert STRATIX10_NX_PROJECTION.compute_peak_gflops > 1000.0
        assert STRATIX10_NX_PROJECTION.attainable_gflops() > 0.0


class TestRooflineMechanics:
    def test_cells_per_second_consistency(self):
        proj = AIEngineProjection("t", engines=10, clock_ghz=1.0,
                                  flops_per_engine_cycle=8,
                                  fabric_feed_bandwidth=1e12)
        # Plenty of feed: compute-bound.
        assert not proj.feed_bound
        assert proj.attainable_gflops() == pytest.approx(
            proj.compute_peak_gflops, rel=1e-6)

    def test_starved_fabric(self):
        proj = AIEngineProjection("t", engines=1000, clock_ghz=1.0,
                                  flops_per_engine_cycle=8,
                                  fabric_feed_bandwidth=1e9)
        assert proj.feed_bound
        # Attainable = cells_fed * ops: 1e9/12 cells/s * 62.875 ops.
        assert proj.attainable_gflops() == pytest.approx(
            (1e9 / 12) * 62.875 / 1e9, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AIEngineProjection("t", engines=0, clock_ghz=1.0,
                               flops_per_engine_cycle=8,
                               fabric_feed_bandwidth=1e9)
        with pytest.raises(ConfigurationError):
            AIEngineProjection("t", engines=1, clock_ghz=0.0,
                               flops_per_engine_cycle=8,
                               fabric_feed_bandwidth=1e9)
        with pytest.raises(ConfigurationError):
            VERSAL_VC1902.speedup_over(0.0)
        with pytest.raises(ConfigurationError):
            VERSAL_VC1902.cells_per_second_feed(bytes_per_cell=0.0)
