"""Cross-checks between the device catalog, constants, and calibration.

These are audit tests: every number that appears in two places (paper
constants, device catalog, calibration registry) must agree, so a future
edit cannot silently decouple them.
"""

import pytest

from repro import constants
from repro.hardware import (
    ALVEO_U280,
    STRATIX10_GX2800,
    TESLA_V100,
    XEON_8260M,
)
from repro.perf.calibration import CALIBRATION, paper_value


class TestClockConsistency:
    def test_alveo_clock_matches_constant(self):
        assert ALVEO_U280.clock.frequency_mhz(1) == constants.ALVEO_CLOCK_MHZ
        assert ALVEO_U280.clock.frequency_mhz(6) == constants.ALVEO_CLOCK_MHZ

    def test_stratix_clock_endpoints_match_constants(self):
        assert STRATIX10_GX2800.clock.frequency_mhz(1) == \
            constants.STRATIX_SINGLE_KERNEL_CLOCK_MHZ
        assert STRATIX10_GX2800.clock.frequency_mhz(5) == \
            constants.STRATIX_MULTI_KERNEL_CLOCK_MHZ

    def test_calibration_entries_match_constants(self):
        assert paper_value("multi.u280_clock_mhz") == \
            constants.ALVEO_CLOCK_MHZ
        assert paper_value("multi.stratix_multi_clock_mhz") == \
            constants.STRATIX_MULTI_KERNEL_CLOCK_MHZ


class TestCapacityConsistency:
    def test_memory_capacities_match_constants(self):
        assert ALVEO_U280.memories["hbm2"].spec.capacity_bytes == \
            constants.ALVEO_HBM2_BYTES
        assert ALVEO_U280.memories["ddr"].spec.capacity_bytes == \
            constants.ALVEO_DDR_BYTES
        assert STRATIX10_GX2800.memories["ddr"].spec.capacity_bytes == \
            constants.STRATIX_DDR_BYTES
        assert TESLA_V100.memory_capacity_bytes == constants.V100_HBM2_BYTES

    def test_paper_transfer_payload(self):
        """~800 MB for 16M cells, as section IV states."""
        assert constants.PAPER_16M_TRANSFER_BYTES == pytest.approx(
            paper_value("fig5.transfer_16m_bytes"), rel=0.01)


class TestPowerConsistency:
    def test_u280_ddr_delta_matches_calibration(self):
        delta = (ALVEO_U280.power.memory_watts["ddr"]
                 - ALVEO_U280.power.memory_watts["hbm2"])
        assert delta == paper_value("fig7.u280_ddr_power_delta")

    def test_pcie_sync_ratio_matches_calibration(self):
        ratio = (STRATIX10_GX2800.pcie.synchronous_bandwidth
                 / ALVEO_U280.pcie.synchronous_bandwidth)
        assert ratio == pytest.approx(
            paper_value("fig5.u280_transfer_slowdown"))


class TestCPUGPUConsistency:
    def test_cpu_calibration_points(self):
        assert XEON_8260M.gflops_per_core == paper_value(
            "table1.cpu_1core_gflops")
        assert XEON_8260M.memory_roofline_gflops == paper_value(
            "table1.cpu_24core_gflops")

    def test_gpu_kernel_rate(self):
        assert TESLA_V100.kernel_gflops == paper_value("table1.v100_gflops")

    def test_kernel_fit_calibration(self):
        assert paper_value("multi.u280_kernels") == constants.ALVEO_MAX_KERNELS
        assert paper_value("multi.stratix_kernels") == \
            constants.STRATIX_MAX_KERNELS


class TestRegistryHygiene:
    def test_keys_are_namespaced(self):
        for key in CALIBRATION:
            assert "." in key, key

    def test_no_duplicate_pins_of_same_value_conflict(self):
        # Sanity: every entry's value is finite and positive.
        for entry in CALIBRATION.values():
            assert entry.paper_value > 0, entry.key
