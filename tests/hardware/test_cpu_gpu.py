"""CPU and GPU baseline models."""

import pytest

from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.errors import CapacityError, ConfigurationError
from repro.hardware import TESLA_V100, XEON_8260M
from repro.hardware.cpu import CPUModel
from repro.hardware.gpu import GPUModel
from repro.hardware.pcie import PCIeLink
from repro.hardware.power import PowerModel


class TestCPUModel:
    def test_paper_calibration_points(self):
        assert XEON_8260M.gflops(1) == pytest.approx(2.09)
        assert XEON_8260M.gflops(24) == pytest.approx(15.2)

    def test_scaling_linear_then_saturated(self):
        assert XEON_8260M.gflops(2) == pytest.approx(2 * 2.09)
        assert XEON_8260M.gflops(12) == pytest.approx(15.2)  # roofline hit

    def test_rejects_bad_core_counts(self):
        with pytest.raises(ConfigurationError):
            XEON_8260M.gflops(0)
        with pytest.raises(ConfigurationError):
            XEON_8260M.gflops(25)

    def test_kernel_time_positive_and_scales(self):
        small = XEON_8260M.kernel_time(Grid(nx=64, ny=64, nz=64))
        large = XEON_8260M.kernel_time(Grid(nx=128, ny=128, nz=64))
        assert large == pytest.approx(4 * small, rel=0.01)

    def test_run_power(self):
        full = XEON_8260M.run_power_watts()
        one = XEON_8260M.run_power_watts(1)
        assert full > one > XEON_8260M.power.static_watts

    def test_measure_host_returns_reference_result(self):
        from repro.core.reference import advect_reference

        grid = Grid(nx=8, ny=8, nz=8)
        fields = random_wind(grid, seed=0)
        seconds, sources = CPUModel.measure_host(fields, repeats=1)
        assert seconds > 0
        assert sources.max_abs_difference(advect_reference(fields)) == 0.0

    def test_measure_rejects_bad_repeats(self):
        fields = random_wind(Grid(nx=4, ny=4, nz=4), seed=0)
        with pytest.raises(ConfigurationError):
            CPUModel.measure_host(fields, repeats=0)

    def test_validation(self):
        power = PowerModel(static_watts=1.0, dynamic_watts_per_kernel=1.0,
                           memory_watts={"dram": 1.0})
        with pytest.raises(ConfigurationError):
            CPUModel("x", cores=0, gflops_per_core=1.0,
                     memory_roofline_gflops=1.0, power=power)
        with pytest.raises(ConfigurationError):
            CPUModel("x", cores=1, gflops_per_core=0.0,
                     memory_roofline_gflops=1.0, power=power)


class TestGPUModel:
    def test_paper_kernel_rate(self):
        from repro.core.flops import grid_flops

        grid = Grid.from_cells(16 * 1024 * 1024)
        t = TESLA_V100.kernel_time(grid)
        assert grid_flops(grid) / t / 1e9 == pytest.approx(367.2)

    def test_capacity_cutoff_at_536m(self):
        from repro.constants import PAPER_GRID_LABELS

        fits = Grid.from_cells(PAPER_GRID_LABELS["268M"])
        too_big = Grid.from_cells(PAPER_GRID_LABELS["536M"])
        assert TESLA_V100.fits(fits)
        assert not TESLA_V100.fits(too_big)
        with pytest.raises(CapacityError):
            TESLA_V100.kernel_time(too_big)

    def test_run_power(self):
        watts = TESLA_V100.run_power_watts()
        assert watts > TESLA_V100.power.static_watts

    def test_validation(self):
        link = PCIeLink(streamed_bandwidth=1e9, synchronous_bandwidth=1e9)
        power = PowerModel(static_watts=1.0, dynamic_watts_per_kernel=1.0,
                           memory_watts={"hbm2": 1.0})
        with pytest.raises(ConfigurationError):
            GPUModel("g", kernel_gflops=0.0, memory_capacity_bytes=1,
                     pcie=link, power=power)
        with pytest.raises(ConfigurationError):
            GPUModel("g", kernel_gflops=1.0, memory_capacity_bytes=0,
                     pcie=link, power=power)


class TestCatalog:
    def test_device_by_name_aliases(self):
        from repro.hardware import ALVEO_U280, device_by_name

        assert device_by_name("u280") is ALVEO_U280
        assert device_by_name("ALVEO") is ALVEO_U280
        assert device_by_name("gpu") is TESLA_V100

    def test_unknown_device_rejected(self):
        from repro.hardware import device_by_name

        with pytest.raises(ConfigurationError):
            device_by_name("versal")
