"""External memory model: capacity, bandwidth sharing, burst efficiency."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.memory import BURST_GAP_BYTES, MemorySpec, StreamingMemoryModel


def model(per_kernel=10e9, aggregate=40e9, capacity=8 * 2**30):
    return StreamingMemoryModel(MemorySpec(
        name="test", capacity_bytes=capacity,
        per_kernel_bandwidth=per_kernel, aggregate_bandwidth=aggregate,
    ))


class TestSpecValidation:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            MemorySpec("m", 0, 1.0, 1.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            MemorySpec("m", 1, 0.0, 1.0)

    def test_rejects_aggregate_below_per_kernel(self):
        with pytest.raises(ConfigurationError):
            MemorySpec("m", 1, 10.0, 5.0)


class TestBurstEfficiency:
    def test_long_bursts_near_unity(self):
        eff = StreamingMemoryModel.burst_efficiency(32 * 1024)
        assert eff > 0.98

    def test_paper_threshold_chunk_8(self):
        """Chunk widths of ~8 or below start to hurt; above, negligible."""
        nz = 64
        at_8 = StreamingMemoryModel.burst_efficiency(
            StreamingMemoryModel.chunk_burst_bytes(8, nz))
        at_64 = StreamingMemoryModel.burst_efficiency(
            StreamingMemoryModel.chunk_burst_bytes(64, nz))
        at_1 = StreamingMemoryModel.burst_efficiency(
            StreamingMemoryModel.chunk_burst_bytes(1, nz))
        assert at_64 > 0.98          # negligible impact
        assert 0.85 < at_8 < 0.95    # starting to show
        assert at_1 < 0.55           # severe

    def test_monotone_in_burst_length(self):
        effs = [StreamingMemoryModel.burst_efficiency(b)
                for b in (256, 1024, 4096, 65536)]
        assert effs == sorted(effs)

    def test_rejects_nonpositive_burst(self):
        with pytest.raises(ConfigurationError):
            StreamingMemoryModel.burst_efficiency(0)

    def test_gap_constant_visible(self):
        assert StreamingMemoryModel.burst_efficiency(
            BURST_GAP_BYTES) == pytest.approx(0.5)


class TestBandwidthSharing:
    def test_per_kernel_rate(self):
        m = model()
        assert m.effective_per_kernel() == pytest.approx(10e9)

    def test_aggregate_scales_then_saturates(self):
        m = model(per_kernel=10e9, aggregate=25e9)
        assert m.effective_aggregate(1) == pytest.approx(10e9)
        assert m.effective_aggregate(2) == pytest.approx(20e9)
        assert m.effective_aggregate(3) == pytest.approx(25e9)  # capped
        assert m.effective_aggregate(6) == pytest.approx(25e9)

    def test_burst_factor_applies(self):
        m = model()
        full = m.effective_per_kernel()
        short = m.effective_per_kernel(burst_bytes=512.0)
        assert short == pytest.approx(full * 0.5)

    def test_rejects_bad_kernel_count(self):
        with pytest.raises(ConfigurationError):
            model().effective_aggregate(0)


class TestStreamingTime:
    def test_time_is_bytes_over_bandwidth(self):
        m = model(per_kernel=10e9, aggregate=40e9)
        assert m.streaming_time(20e9, 1) == pytest.approx(2.0)
        assert m.streaming_time(20e9, 4) == pytest.approx(0.5)

    def test_zero_bytes(self):
        assert model().streaming_time(0.0) == 0.0

    def test_rejects_negative_bytes(self):
        with pytest.raises(ConfigurationError):
            model().streaming_time(-1.0)


class TestCapacity:
    def test_fits(self):
        m = model(capacity=1024)
        assert m.fits(1024)
        assert not m.fits(1025)
