"""Cost model: lint gating, precision scaling, pricing consistency."""

import pytest

from repro.core.grid import Grid
from repro.errors import TuneError
from repro.hardware.devices import ALVEO_U280, STRATIX10_GX2800
from repro.tune.cost import CostModel, Evaluation, OBJECTIVES
from repro.tune.space import TunePoint

GRID = Grid(nx=32, ny=64, nz=32)


def point(**overrides) -> TunePoint:
    values = dict(chunk_width=32, num_kernels=2, stream_depth=4,
                  precision="float64", memory="hbm2", x_chunks=16,
                  overlapped=True)
    values.update(overrides)
    return TunePoint(**values)


@pytest.fixture(scope="module")
def model() -> CostModel:
    return CostModel(ALVEO_U280, GRID)


class TestLintGate:
    def test_sane_point_passes(self, model):
        assert model.lint_gate(point()) == ()

    def test_overcommitted_replicas_rejected(self, model):
        codes = model.lint_gate(point(num_kernels=32))
        assert codes
        assert any(code.startswith("RS") for code in codes)

    def test_unknown_memory_rejected(self, model):
        assert model.lint_gate(point(memory="hbm3")) == ("TN001",)

    def test_gate_matches_evaluate_feasibility(self, model):
        for candidate in (point(), point(num_kernels=32),
                          point(memory="hbm3")):
            assert (model.lint_gate(candidate) == ()) == (
                model.evaluate(candidate).feasible)


class TestPrecisionScaling:
    def test_float64_scaling_is_identity(self, model):
        assert model.describe()["float64_identity"] is True

    def test_narrow_formats_shrink_the_footprint_once(self, model):
        wide = model._resources(point())
        narrow = model._resources(point(precision="float32"))
        assert narrow.bram_bytes < wide.bram_bytes
        # Buffers hold the same words at half the width: the footprint
        # must shrink by about 2x, not 4x (which would mean the word
        # width was applied twice).
        ratio = wide.bram_bytes / narrow.bram_bytes
        assert 1.5 < ratio < 2.5

    def test_stream_depth_is_a_live_resource_axis(self, model):
        shallow = model._resources(point(stream_depth=2))
        deep = model._resources(point(stream_depth=8))
        assert deep.bram_bytes > shallow.bram_bytes


class TestEvaluate:
    def test_feasible_point_is_fully_priced(self, model):
        ev = model.evaluate(point())
        assert ev.feasible
        assert ev.kernel_gflops > 0
        assert ev.end_to_end_gflops > 0
        assert ev.kernel_seconds > 0
        assert ev.runtime_seconds > ev.kernel_seconds / point().num_kernels
        assert ev.watts > 0
        assert 0 < ev.utilisation <= 1
        assert ev.clock_mhz == 300.0
        assert ev.analytic_cycles > 0
        assert set(ev.utilisation_by_axis) == {
            "bram_bytes", "dsp", "luts", "registers", "uram_bytes"}

    def test_infeasible_point_carries_codes_and_reason(self, model):
        ev = model.evaluate(point(num_kernels=32))
        assert not ev.feasible
        assert ev.reject_codes
        assert "lint gate" in ev.reject_reason
        assert ev.kernel_gflops == 0.0

    def test_more_replicas_cost_more_fabric_and_watts(self, model):
        one = model.evaluate(point(num_kernels=1))
        four = model.evaluate(point(num_kernels=4))
        assert four.utilisation > one.utilisation
        assert four.watts > one.watts
        assert four.kernel_gflops > one.kernel_gflops

    def test_stratix_clock_degradation_applied(self):
        model = CostModel(STRATIX10_GX2800, GRID)
        five = model.evaluate(point(num_kernels=5, memory="ddr"))
        assert five.feasible
        assert five.clock_mhz == 250.0


class TestObjectives:
    def test_every_objective_is_finite_when_feasible(self, model):
        ev = model.evaluate(point())
        for name in OBJECTIVES:
            assert ev.objective(name) > 0

    def test_infeasible_scores_minus_infinity(self, model):
        ev = model.evaluate(point(memory="hbm3"))
        for name in OBJECTIVES:
            assert ev.objective(name) == float("-inf")

    def test_unknown_objective_rejected(self, model):
        with pytest.raises(TuneError, match="unknown objective"):
            model.evaluate(point()).objective("latency")

    def test_sort_key_is_a_total_order(self, model):
        evals = [model.evaluate(point(num_kernels=n)) for n in (1, 2, 3)]
        keys = [e.sort_key("kernel") for e in evals]
        assert sorted(keys) == sorted(set(keys))

    def test_to_dict_rounds_floats(self, model):
        data = model.evaluate(point()).to_dict()
        for key in ("kernel_gflops", "runtime_seconds", "utilisation"):
            assert data[key] == round(data[key], 6)


class TestEvaluationDataclass:
    def test_default_infeasible_shape(self):
        ev = Evaluation(point=point(), feasible=False,
                        reject_codes=("RS201",), reject_reason="no fit")
        data = ev.to_dict()
        assert data["feasible"] is False
        assert data["reject_codes"] == ["RS201"]
        assert data["key"] == point().key()
