"""Parameter space: derivation bounds, indexing, neighbours."""

import pytest

from repro.core.grid import Grid
from repro.errors import TuneError
from repro.hardware.devices import ALVEO_U280, STRATIX10_GX2800
from repro.shiftbuffer.chunking import HALO
from repro.tune.space import ParameterSpace, TunePoint

GRID = Grid(nx=32, ny=64, nz=32)


def small_space() -> ParameterSpace:
    return ParameterSpace(
        chunk_widths=(16, 32),
        num_kernels=(1, 2, 3),
        stream_depths=(2, 4),
        precisions=("float64",),
        memories=("hbm2", "ddr"),
        x_chunks=(8, 16),
        overlapped=(False, True),
    )


class TestTunePoint:
    def test_key_is_canonical_and_injective(self):
        space = small_space()
        keys = [p.key() for p in space.points()]
        assert len(keys) == len(set(keys)) == space.size

    def test_word_bytes_follows_precision(self):
        p = TunePoint(chunk_width=16, num_kernels=1, stream_depth=2,
                      precision="float32", memory="hbm2", x_chunks=8,
                      overlapped=True)
        assert p.word_bytes == 4
        assert p.format.bits == 32

    def test_unknown_precision_rejected(self):
        with pytest.raises(TuneError, match="unknown precision"):
            TunePoint(chunk_width=16, num_kernels=1, stream_depth=2,
                      precision="float16", memory="hbm2", x_chunks=8,
                      overlapped=True)

    def test_clock_degrades_with_replicas_on_stratix(self):
        def at(n):
            return TunePoint(chunk_width=16, num_kernels=n, stream_depth=2,
                             precision="float64", memory="ddr", x_chunks=8,
                             overlapped=True).clock_mhz(STRATIX10_GX2800)

        clocks = [at(n) for n in (1, 2, 3, 4, 5)]
        assert clocks[0] == 398.0
        assert clocks[-1] == 250.0
        assert clocks == sorted(clocks, reverse=True)

    def test_config_carries_geometry(self):
        p = TunePoint(chunk_width=32, num_kernels=2, stream_depth=4,
                      precision="float64", memory="hbm2", x_chunks=8,
                      overlapped=False)
        config = p.config(GRID)
        assert config.chunk_width == 32
        assert config.stream_depth == 4
        assert config.word_bytes == 8


class TestParameterSpace:
    def test_size_matches_enumeration(self):
        space = small_space()
        assert space.size == 2 * 3 * 2 * 1 * 2 * 2 * 2
        assert len(list(space.points())) == space.size

    def test_point_at_matches_points_order(self):
        space = small_space()
        listed = list(space.points())
        assert [space.point_at(i) for i in range(space.size)] == listed

    def test_point_at_bounds(self):
        space = small_space()
        with pytest.raises(TuneError, match="outside space"):
            space.point_at(space.size)
        with pytest.raises(TuneError, match="outside space"):
            space.point_at(-1)

    def test_neighbours_are_single_axis_moves(self):
        space = small_space()
        point = space.point_at(space.size // 2)
        for neighbour in space.neighbours(point):
            diffs = [
                name for name in point.to_dict()
                if getattr(neighbour, name) != getattr(point, name)
            ]
            assert len(diffs) == 1

    def test_neighbours_of_corner_stay_inside(self):
        space = small_space()
        corner = space.point_at(0)
        neighbours = space.neighbours(corner)
        listed = set(space.points())
        assert neighbours
        assert all(n in listed for n in neighbours)

    def test_foreign_point_rejected(self):
        space = small_space()
        foreign = TunePoint(chunk_width=128, num_kernels=1, stream_depth=2,
                            precision="float64", memory="hbm2", x_chunks=8,
                            overlapped=True)
        with pytest.raises(TuneError, match="chunk_width axis"):
            space.neighbours(foreign)

    def test_empty_axis_rejected(self):
        with pytest.raises(TuneError, match="empty"):
            ParameterSpace(chunk_widths=(), num_kernels=(1,),
                           stream_depths=(2,), precisions=("float64",),
                           memories=("hbm2",), x_chunks=(8,),
                           overlapped=(True,))

    def test_duplicate_axis_rejected(self):
        with pytest.raises(TuneError, match="duplicates"):
            ParameterSpace(chunk_widths=(16, 16), num_kernels=(1,),
                           stream_depths=(2,), precisions=("float64",),
                           memories=("hbm2",), x_chunks=(8,),
                           overlapped=(True,))


class TestDerive:
    def test_chunk_widths_respect_planner_floor_and_ny(self):
        space = ParameterSpace.derive(ALVEO_U280, GRID)
        assert all(HALO < w <= GRID.ny for w in space.chunk_widths)

    def test_kernel_axis_reaches_device_fit(self):
        space = ParameterSpace.derive(ALVEO_U280, GRID)
        assert max(space.num_kernels) >= 6
        space = ParameterSpace.derive(STRATIX10_GX2800, GRID)
        assert max(space.num_kernels) >= 5

    def test_memories_come_from_the_device_catalog(self):
        space = ParameterSpace.derive(ALVEO_U280, GRID)
        assert set(space.memories) <= set(ALVEO_U280.memories)
        assert space.memories[0] == "hbm2"  # preference order

    def test_precision_axis_is_opt_in(self):
        assert ParameterSpace.derive(ALVEO_U280, GRID).precisions == (
            "float64",)
        wide = ParameterSpace.derive(ALVEO_U280, GRID, wide_precision=True)
        assert set(wide.precisions) == {"float64", "float32", "bfloat16"}

    def test_tiny_ny_falls_back_to_single_width(self):
        tiny = Grid(nx=4, ny=4, nz=4)
        space = ParameterSpace.derive(ALVEO_U280, tiny)
        assert len(space.chunk_widths) == 1
        assert space.chunk_widths[0] > HALO
