"""Pareto frontier: domination, dedup, and guarded ratios."""

import pytest

from repro.tune.cost import Evaluation
from repro.tune.pareto import (dominates, efficiency_ratio,
                               improvement_ratio, pareto_front)
from repro.tune.space import TunePoint


def evaluation(gflops, utilisation, watts, *, feasible=True,
               num_kernels=1) -> Evaluation:
    point = TunePoint(chunk_width=16, num_kernels=num_kernels,
                      stream_depth=2, precision="float64", memory="hbm2",
                      x_chunks=8, overlapped=True)
    return Evaluation(point=point, feasible=feasible, kernel_gflops=gflops,
                      utilisation=utilisation, watts=watts)


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates(evaluation(10, 0.2, 50), evaluation(5, 0.4, 70))

    def test_better_on_one_axis_equal_elsewhere(self):
        assert dominates(evaluation(10, 0.2, 50), evaluation(10, 0.2, 60))

    def test_equal_vectors_do_not_dominate(self):
        a, b = evaluation(10, 0.2, 50), evaluation(10, 0.2, 50)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_trade_off_is_mutual_non_domination(self):
        fast_hot = evaluation(10, 0.8, 90)
        slow_cool = evaluation(5, 0.2, 40)
        assert not dominates(fast_hot, slow_cool)
        assert not dominates(slow_cool, fast_hot)


class TestParetoFront:
    def test_dominated_points_dropped(self):
        best = evaluation(10, 0.2, 50)
        worse = evaluation(5, 0.4, 70)
        assert pareto_front([worse, best]) == [best]

    def test_infeasible_points_never_on_the_front(self):
        ghost = evaluation(99, 0.0, 1, feasible=False)
        real = evaluation(1, 0.9, 90)
        assert pareto_front([ghost, real]) == [real]

    def test_trade_offs_all_kept_and_sorted(self):
        a = evaluation(10, 0.8, 90)
        b = evaluation(7, 0.5, 60)
        c = evaluation(5, 0.2, 40)
        assert pareto_front([c, a, b]) == [a, b, c]

    def test_duplicate_vectors_collapse_to_canonical_point(self):
        twin_a = evaluation(10, 0.2, 50, num_kernels=1)
        twin_b = evaluation(10, 0.2, 50, num_kernels=2)
        front = pareto_front([twin_b, twin_a])
        assert front == [twin_a]  # lowest point in the total order

    def test_max_gflops_point_always_survives(self):
        evals = [evaluation(g, 0.1 * g, 10 * g) for g in (1, 3, 5, 7)]
        front = pareto_front(evals)
        assert max(e.kernel_gflops for e in front) == 7

    def test_empty_input(self):
        assert pareto_front([]) == []


class TestGuardedRatios:
    def test_improvement_ratio(self):
        assert improvement_ratio(2.0, 1.0) == 2.0

    @pytest.mark.parametrize("baseline,candidate", [
        (0.0, 1.0), (-1.0, 1.0), (1.0, 0.0), (1.0, -2.0),
    ])
    def test_non_positive_runtimes_rejected(self, baseline, candidate):
        with pytest.raises(ValueError, match="must be positive"):
            improvement_ratio(baseline, candidate)

    def test_efficiency_ratio(self):
        assert efficiency_ratio(30.0, 60.0) == 0.5

    @pytest.mark.parametrize("watts", [0.0, -5.0])
    def test_non_positive_watts_rejected(self, watts):
        with pytest.raises(ValueError, match="watts must be positive"):
            efficiency_ratio(10.0, watts)

    def test_negative_gflops_rejected(self):
        with pytest.raises(ValueError, match="gflops must be >= 0"):
            efficiency_ratio(-1.0, 10.0)
