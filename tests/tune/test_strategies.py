"""Search strategies: determinism, budget discipline, termination."""

import pytest

from repro.core.grid import Grid
from repro.errors import TuneError
from repro.hardware.devices import ALVEO_U280
from repro.tune.cost import CostModel
from repro.tune.space import ParameterSpace
from repro.tune.strategies import (STRATEGIES, AnnealingSearch,
                                   ExhaustiveSearch, GreedySearch,
                                   make_strategy)

GRID = Grid(nx=16, ny=64, nz=16)


def space() -> ParameterSpace:
    return ParameterSpace(
        chunk_widths=(16, 32, 64),
        num_kernels=(1, 2, 3, 4),
        stream_depths=(2, 4),
        precisions=("float64",),
        memories=("hbm2",),
        x_chunks=(8, 16),
        overlapped=(False, True),
    )


@pytest.fixture(scope="module")
def evaluate():
    return CostModel(ALVEO_U280, GRID).evaluate


def run(strategy, evaluate, *, budget, seed=0):
    return strategy.run(space(), evaluate, budget=budget, seed=seed,
                        objective="kernel")


class TestRegistry:
    def test_known_names(self):
        assert set(STRATEGIES) == {"grid", "greedy", "anneal"}
        for name, cls in STRATEGIES.items():
            assert make_strategy(name).name == name
            assert isinstance(make_strategy(name), cls)

    def test_unknown_name_rejected(self):
        with pytest.raises(TuneError, match="unknown search strategy"):
            make_strategy("bayesian")


class TestBudgets:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_budget_bounds_distinct_evaluations(self, name, evaluate):
        evals = run(make_strategy(name), evaluate, budget=10, seed=3)
        keys = [e.point.key() for e in evals]
        assert len(evals) <= 10
        assert len(keys) == len(set(keys)), "budget must count distinct"

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_over_budget_terminates_at_full_coverage(self, name, evaluate):
        evals = run(make_strategy(name), evaluate, budget=10_000, seed=1)
        assert len(evals) == space().size

    def test_budget_below_one_rejected(self, evaluate):
        with pytest.raises(TuneError, match="budget"):
            run(ExhaustiveSearch(), evaluate, budget=0)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_same_seed_same_trajectory(self, name, evaluate):
        first = run(make_strategy(name), evaluate, budget=40, seed=7)
        second = run(make_strategy(name), evaluate, budget=40, seed=7)
        assert ([e.point.key() for e in first]
                == [e.point.key() for e in second])

    def test_grid_ignores_the_seed(self, evaluate):
        listed = [p.key() for p in space().points()][:25]
        walked = [e.point.key() for e in
                  run(ExhaustiveSearch(), evaluate, budget=25, seed=99)]
        assert walked == listed

    def test_seeds_change_the_stochastic_trajectories(self, evaluate):
        a = run(AnnealingSearch(), evaluate, budget=30, seed=1)
        b = run(AnnealingSearch(), evaluate, budget=30, seed=2)
        assert ([e.point.key() for e in a] != [e.point.key() for e in b])


class TestSearchQuality:
    def test_greedy_finds_the_exhaustive_optimum_here(self, evaluate):
        full = run(ExhaustiveSearch(), evaluate, budget=10_000)
        optimum = max(e.sort_key("kernel") for e in full)
        greedy = run(GreedySearch(), evaluate, budget=60, seed=0)
        assert max(e.sort_key("kernel") for e in greedy) == optimum

    def test_anneal_finds_the_exhaustive_optimum_here(self, evaluate):
        full = run(ExhaustiveSearch(), evaluate, budget=10_000)
        optimum = max(e.sort_key("kernel") for e in full)
        anneal = run(AnnealingSearch(), evaluate, budget=96, seed=7)
        assert max(e.sort_key("kernel") for e in anneal) == optimum

    def test_anneal_survives_an_entirely_infeasible_space(self, evaluate):
        cramped = ParameterSpace(
            chunk_widths=(16,), num_kernels=(30, 40), stream_depths=(2,),
            precisions=("float64",), memories=("hbm2",), x_chunks=(8,),
            overlapped=(True,),
        )
        evals = AnnealingSearch().run(cramped, evaluate, budget=50, seed=0,
                                      objective="kernel")
        assert evals
        assert not any(e.feasible for e in evals)
