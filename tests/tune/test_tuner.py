"""End-to-end tuner: paper anchors, determinism, measured refinement."""

import json

import pytest

from repro.core.grid import Grid
from repro.errors import TuneError
from repro.observe import MetricRegistry, Tracer, write_trace
from repro.tune import render_text, tune
from repro.tune.measure import proxy_grid
from repro.tune.space import TunePoint

GRID_64 = Grid(nx=64, ny=64, nz=64)
GRID_SMALL = Grid(nx=16, ny=64, nz=16)


@pytest.fixture(scope="module")
def u280_report():
    return tune("u280", GRID_64, strategy="grid")


@pytest.fixture(scope="module")
def stratix_report():
    return tune("stratix10", GRID_64, strategy="grid")


class TestPaperAnchors:
    """The tuner must rediscover the paper's hand-tuned deployments."""

    def test_u280_lands_on_six_kernels(self, u280_report):
        assert u280_report.best.point.num_kernels == 6
        assert u280_report.best.clock_mhz == 300.0
        assert u280_report.best.point.memory == "hbm2"

    def test_stratix_lands_on_five_kernels_at_degraded_clock(
            self, stratix_report):
        assert stratix_report.best.point.num_kernels == 5
        assert stratix_report.best.clock_mhz == 250.0  # 398 -> 250 MHz

    def test_anchor_configs_sit_on_the_pareto_front(self, u280_report,
                                                    stratix_report):
        assert 6 in {e.point.num_kernels for e in u280_report.front}
        assert 5 in {e.point.num_kernels for e in stratix_report.front}

    def test_front_spans_every_replica_count(self, u280_report):
        assert ({e.point.num_kernels for e in u280_report.front}
                == {1, 2, 3, 4, 5, 6})

    def test_front_is_mutually_non_dominating(self, u280_report):
        front = u280_report.front
        for entry in front:
            better_gflops = [e for e in front
                             if e.kernel_gflops > entry.kernel_gflops]
            assert all(e.watts > entry.watts
                       or e.utilisation > entry.utilisation
                       for e in better_gflops)


class TestDeterminism:
    def test_anneal_seed7_is_byte_identical(self):
        kwargs = dict(strategy="anneal", seed=7, budget=60)
        first = tune("u280", GRID_SMALL, **kwargs)
        second = tune("u280", GRID_SMALL, **kwargs)
        assert first.to_json() == second.to_json()

    def test_json_is_canonical(self):
        report = tune("u280", GRID_SMALL, strategy="greedy", budget=20,
                      seed=1)
        payload = json.loads(report.to_json())
        assert report.to_json() == json.dumps(
            payload, indent=2, sort_keys=True) + "\n"
        assert payload["evaluated"] == 20
        assert payload["space_size"] == report.space.size


class TestMeasuredTier:
    def test_top_candidates_within_error_budget(self):
        report = tune("u280", GRID_SMALL, strategy="greedy", budget=40,
                      seed=0, measure_top_k=3)
        assert len(report.measured) == 3
        assert report.worst_measured_error <= 0.15
        for result in report.measured:
            assert result.measured_cycles > 0
            assert result.measured_seconds > 0

    def test_proxy_grid_preserves_chunk_geometry(self):
        point = TunePoint(chunk_width=32, num_kernels=1, stream_depth=2,
                          precision="float64", memory="hbm2", x_chunks=8,
                          overlapped=True)
        proxy = proxy_grid(Grid(nx=512, ny=512, nz=128), point)
        assert proxy.ny >= 3 * point.chunk_width  # keeps the seam pattern
        assert proxy.num_cells < 512 * 512 * 128 // 50

    def test_proxy_never_exceeds_the_problem(self):
        point = TunePoint(chunk_width=32, num_kernels=1, stream_depth=2,
                          precision="float64", memory="hbm2", x_chunks=8,
                          overlapped=True)
        tiny = Grid(nx=4, ny=48, nz=8)
        proxy = proxy_grid(tiny, point)
        assert proxy.nx <= tiny.nx
        assert proxy.ny <= tiny.ny
        assert proxy.nz <= tiny.nz


class TestCacheIntegration:
    def test_second_run_is_all_hits_and_value_identical(self, tmp_path):
        path = tmp_path / "cache.json"
        kwargs = dict(strategy="greedy", budget=25, seed=2,
                      cache_path=path)
        first = tune("u280", GRID_SMALL, **kwargs)
        second = tune("u280", GRID_SMALL, **kwargs)
        assert first.cache_hits == 0
        assert second.cache_hits == len(second.evaluations)
        a, b = first.to_dict(), second.to_dict()
        a.pop("cache_hits"), b.pop("cache_hits")
        assert a == b


class TestObservability:
    def test_tracer_and_metrics_record_the_search(self, tmp_path):
        tracer = Tracer()
        metrics = MetricRegistry()
        report = tune("u280", GRID_SMALL, strategy="anneal", seed=7,
                      budget=15, tracer=tracer, metrics=metrics,
                      measure_top_k=1)
        assert len(tracer.spans) == len(report.evaluations) == 15
        assert metrics.counter("tune_evaluations").value() == 15
        error_hist = metrics.histogram("tune_measured_error").value()
        assert error_hist.total == 1
        assert error_hist.sum == pytest.approx(report.worst_measured_error)

        out = write_trace(tmp_path / "tune.json", tracer,
                          process_name="tune")
        payload = json.loads(out.read_text())
        events = (payload["traceEvents"] if isinstance(payload, dict)
                  else payload)
        assert len(events) >= 15

    def test_disabled_sinks_cost_nothing(self):
        tracer = Tracer(enabled=False)
        metrics = MetricRegistry(enabled=False)
        report = tune("u280", GRID_SMALL, strategy="greedy", seed=0,
                      budget=5, tracer=tracer, metrics=metrics)
        assert report.best is not None
        assert len(tracer.spans) == 0


class TestRenderText:
    def test_mentions_the_anchor_and_front(self):
        report = tune("u280", GRID_SMALL, strategy="greedy", budget=40,
                      seed=0, measure_top_k=1)
        text = render_text(report)
        assert report.best.point.key() in text
        assert "pareto front" in text
        assert "measured refinement" in text

    def test_reports_an_empty_space_honestly(self):
        from repro.tune.space import ParameterSpace

        cramped = ParameterSpace(
            chunk_widths=(16,), num_kernels=(30,), stream_depths=(2,),
            precisions=("float64",), memories=("hbm2",), x_chunks=(8,),
            overlapped=(True,),
        )
        report = tune("u280", GRID_SMALL, space=cramped, strategy="grid")
        assert report.best is None
        assert "no feasible point" in render_text(report)


class TestValidation:
    def test_unknown_objective_rejected(self):
        with pytest.raises(TuneError, match="unknown objective"):
            tune("u280", GRID_SMALL, objective="latency")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(TuneError, match="unknown search strategy"):
            tune("u280", GRID_SMALL, strategy="bayesian", budget=1)

    def test_non_fpga_device_rejected(self):
        with pytest.raises(TuneError, match="not an FPGA"):
            tune("v100", GRID_SMALL)

    def test_bad_budget_rejected(self):
        with pytest.raises(TuneError, match="budget"):
            tune("u280", GRID_SMALL, budget=0)

    def test_bad_measure_count_rejected(self):
        with pytest.raises(TuneError, match="measure_top_k"):
            tune("u280", GRID_SMALL, budget=1, measure_top_k=-1)
