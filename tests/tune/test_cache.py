"""Evaluation cache: round-trips, scoping, schema discipline."""

import json

import pytest

from repro.core.grid import Grid
from repro.errors import TuneError
from repro.hardware.devices import ALVEO_U280
from repro.tune.cache import SCHEMA_VERSION, EvaluationCache
from repro.tune.cost import CostModel
from repro.tune.space import TunePoint

GRID = Grid(nx=16, ny=64, nz=16)


def point(**overrides) -> TunePoint:
    values = dict(chunk_width=32, num_kernels=2, stream_depth=4,
                  precision="float64", memory="hbm2", x_chunks=16,
                  overlapped=True)
    values.update(overrides)
    return TunePoint(**values)


@pytest.fixture(scope="module")
def model():
    return CostModel(ALVEO_U280, GRID)


class TestInMemory:
    def test_get_put_and_stats(self, model):
        cache = EvaluationCache(device="u280", grid_key="g")
        p = point()
        assert cache.get(p) is None
        assert p not in cache
        evaluation = model.evaluate(p)
        cache.put(evaluation)
        assert p in cache
        assert cache.get(p) == evaluation
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_save_without_path_is_a_no_op(self, model):
        cache = EvaluationCache()
        cache.put(model.evaluate(point()))
        cache.save()  # must not raise


class TestPersistence:
    def test_round_trip_preserves_evaluations(self, tmp_path, model):
        path = tmp_path / "cache.json"
        first = EvaluationCache(path, device="u280", grid_key="g")
        feasible = model.evaluate(point())
        rejected = model.evaluate(point(num_kernels=32))
        first.put(feasible)
        first.put(rejected)
        first.save()

        second = EvaluationCache(path, device="u280", grid_key="g")
        assert len(second) == 2
        for original in (feasible, rejected):
            loaded = second.get(original.point)
            assert loaded.feasible == original.feasible
            assert loaded.reject_codes == original.reject_codes
            assert loaded.to_dict() == original.to_dict()

    def test_scopes_do_not_leak(self, tmp_path, model):
        path = tmp_path / "cache.json"
        u280 = EvaluationCache(path, device="u280", grid_key="g")
        u280.put(model.evaluate(point()))
        u280.save()

        other = EvaluationCache(path, device="stratix10", grid_key="g")
        assert len(other) == 0
        other.put(model.evaluate(point(chunk_width=16)))
        other.save()

        # Saving the second scope must not erase the first.
        data = json.loads(path.read_text())
        assert set(data["scopes"]) == {"fpga_shiftbuffer/u280/g",
                                       "fpga_shiftbuffer/stratix10/g"}
        reloaded = EvaluationCache(path, device="u280", grid_key="g")
        assert len(reloaded) == 1

    def test_backends_do_not_share_entries(self, tmp_path, model):
        path = tmp_path / "cache.json"
        fpga = EvaluationCache(path, device="u280", grid_key="g")
        fpga.put(model.evaluate(point()))
        fpga.save()

        # Same device/grid labels under a different backend id must see
        # an empty scope: a cached U280 evaluation can never be served
        # for a Versal query.
        versal = EvaluationCache(path, backend="versal_aie",
                                 device="u280", grid_key="g")
        assert len(versal) == 0
        versal.save()
        data = json.loads(path.read_text())
        assert set(data["scopes"]) == {"fpga_shiftbuffer/u280/g",
                                       "versal_aie/u280/g"}

    def test_legacy_schema2_migrates(self, tmp_path, model):
        """A pre-backend cache file loads under the default backend."""
        path = tmp_path / "cache.json"
        evaluation = model.evaluate(point())
        path.write_text(json.dumps({
            "schema": 2,
            "scopes": {
                "u280/g": {evaluation.point.key(): evaluation.to_dict()},
                "stratix10/g": {},
            },
        }))
        migrated = EvaluationCache(path, device="u280", grid_key="g")
        assert len(migrated) == 1
        assert migrated.get(evaluation.point).to_dict() == evaluation.to_dict()

        # Saving rewrites the file as schema 3 with every legacy scope
        # re-keyed under the default backend.
        migrated.save()
        data = json.loads(path.read_text())
        assert data["schema"] == SCHEMA_VERSION
        assert set(data["scopes"]) == {"fpga_shiftbuffer/u280/g",
                                       "fpga_shiftbuffer/stratix10/g"}
        # A non-default backend still sees nothing after migration.
        versal = EvaluationCache(path, backend="versal_aie",
                                 device="u280", grid_key="g")
        assert len(versal) == 0

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps(
            {"schema": SCHEMA_VERSION + 1, "scopes": {}}))
        with pytest.raises(TuneError, match="schema"):
            EvaluationCache(path, device="u280", grid_key="g")

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        with pytest.raises(TuneError, match="unreadable"):
            EvaluationCache(path, device="u280", grid_key="g")

    def test_save_overwrites_corrupt_file(self, tmp_path, model):
        path = tmp_path / "cache.json"
        cache = EvaluationCache(device="u280", grid_key="g")
        cache.path = path
        path.write_text("{not json")
        cache.put(model.evaluate(point()))
        cache.save()
        assert json.loads(path.read_text())["schema"] == SCHEMA_VERSION
