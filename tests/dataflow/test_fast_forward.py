"""Fast-forward mode reproduces exact ticking bit-for-bit.

The steady-state fast-forward engine must be observationally equivalent to
per-cycle ticking: same cycle count, same per-stage fire and stall
counters, same stream high-water marks, same sink data in the same order.
These tests sweep graph shapes (II, latency, FIFO depth, fan-out) and
check equivalence everywhere, plus the disable conditions (monitors,
vetoes) and the RunStats aggregation helpers.
"""

import pytest

from repro.dataflow.engine import DataflowEngine, RunStats
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.monitors import StreamProbe
from repro.dataflow.stage import (
    ConstStage,
    FunctionStage,
    SinkStage,
    SourceStage,
)
from repro.errors import DataflowError


def pipeline(n_items=300, *, fn_ii=1, fn_latency=4, depth=4):
    g = DataflowGraph("p")
    src = g.add(SourceStage("src", range(n_items)))
    fn = g.add(FunctionStage("fn", lambda x: 2 * x, ii=fn_ii,
                             latency=fn_latency))
    sink = g.add(SinkStage("sink"))
    g.connect(src, "out", fn, "in", depth=depth)
    g.connect(fn, "out", sink, "in", depth=depth)
    return g


def const_pipeline(count=200, *, ii=1):
    g = DataflowGraph("c")
    src = g.add(ConstStage("const", 7, count, ii=ii))
    sink = g.add(SinkStage("sink"))
    g.connect(src, "out", sink, "in", depth=4)
    return g


def run_both(build, **engine_kwargs):
    """Run a freshly built graph in each mode; return (exact, fast) pairs
    of (stats, graph) — graphs are stateful, so each mode gets its own."""
    g_exact = build()
    stats_exact = DataflowEngine(g_exact, mode="exact", **engine_kwargs).run()
    g_fast = build()
    stats_fast = DataflowEngine(g_fast, mode="fast", **engine_kwargs).run()
    return (stats_exact, g_exact), (stats_fast, g_fast)


def assert_equivalent(exact, fast):
    stats_exact, g_exact = exact
    stats_fast, g_fast = fast
    assert stats_fast.cycles == stats_exact.cycles
    assert stats_fast.fires == stats_exact.fires
    assert stats_fast.stalls == stats_exact.stalls
    assert stats_fast.stream_high_water == stats_exact.stream_high_water
    for stage in g_exact.stages:
        if isinstance(stage, SinkStage):
            assert (g_fast.stage(stage.name).collected
                    == stage.collected), stage.name


class TestEquivalence:
    @pytest.mark.parametrize("ii,latency,depth", [
        (1, 1, 2),
        (1, 4, 4),
        (2, 4, 4),
        (3, 7, 2),
        (1, 16, 8),
    ])
    def test_pipeline_shapes(self, ii, latency, depth):
        exact, fast = run_both(
            lambda: pipeline(300, fn_ii=ii, fn_latency=latency, depth=depth))
        assert_equivalent(exact, fast)
        stats_fast, _ = fast
        # The point of the mode: most of the run must actually be skipped.
        assert stats_fast.ff_advances > 0
        assert stats_fast.ff_cycles > stats_fast.cycles // 2

    def test_const_stage(self):
        exact, fast = run_both(lambda: const_pipeline(200))
        assert_equivalent(exact, fast)

    def test_const_stage_ii3(self):
        exact, fast = run_both(lambda: const_pipeline(150, ii=3))
        assert_equivalent(exact, fast)

    def test_mixed_ii_chain(self):
        """A bottleneck mid-chain (II=2) shapes the whole steady state."""
        def build():
            g = DataflowGraph("chain")
            src = g.add(SourceStage("src", range(250)))
            double = g.add(FunctionStage("double", lambda x: 2 * x,
                                         latency=3))
            negate = g.add(FunctionStage("negate", lambda x: -x, ii=2,
                                         latency=5))
            sink = g.add(SinkStage("sink"))
            g.connect(src, "out", double, "in", depth=4)
            g.connect(double, "out", negate, "in", depth=8)
            g.connect(negate, "out", sink, "in", depth=4)
            return g

        exact, fast = run_both(build)
        assert_equivalent(exact, fast)
        stats_fast, g_fast = fast
        assert stats_fast.ff_advances > 0
        assert g_fast.stage("sink").collected == [-2 * i for i in range(250)]

    def test_short_run_never_diverges(self):
        # Too short for a steady state: fast mode must still be exact.
        exact, fast = run_both(lambda: pipeline(5))
        assert_equivalent(exact, fast)

    def test_sink_data_ordered(self):
        _, (stats_fast, g_fast) = run_both(lambda: pipeline(300))
        assert g_fast.stage("sink").collected == [2 * i for i in range(300)]
        assert stats_fast.ff_advances > 0


class TestDisableConditions:
    def test_monitors_force_exact(self):
        g = pipeline(300)
        stream = g.streams[0]
        probe = StreamProbe(stream.name)
        stats = DataflowEngine(g, mode="fast", monitors=[probe]).run()
        assert stats.ff_advances == 0
        assert stats.ff_cycles == 0
        # Every cycle was actually ticked and sampled.
        assert len(probe.samples) >= stats.cycles - 1

    def test_monitor_stride_honoured(self):
        g = pipeline(300)
        stream = g.streams[0]
        probe = StreamProbe(stream.name, stride=10)
        stats = DataflowEngine(g, monitors=[probe]).run()
        assert len(probe.samples) <= stats.cycles // 10 + 1

    def test_exact_mode_never_advances(self):
        stats = DataflowEngine(pipeline(300), mode="exact").run()
        assert stats.ff_advances == 0
        assert stats.ff_cycles == 0

    def test_bad_mode_rejected(self):
        with pytest.raises(DataflowError, match="mode"):
            DataflowEngine(pipeline(10), mode="turbo")

    def test_max_cycles_still_enforced_in_fast_mode(self):
        g = pipeline(10_000)
        with pytest.raises(DataflowError, match="did not quiesce"):
            DataflowEngine(g, max_cycles=10, mode="fast").run()


class TestRunStatsMerge:
    def test_merge_adds_counters_and_maxes_high_water(self):
        a = RunStats(cycles=100, fires={"x": 10},
                     stalls={"x": {"input": 1, "ii": 2}},
                     stream_high_water={"s": 3}, ff_advances=1, ff_cycles=50)
        b = RunStats(cycles=40, fires={"x": 4, "y": 7},
                     stalls={"x": {"input": 2}, "y": {"output": 5}},
                     stream_high_water={"s": 2, "t": 9}, ff_advances=2,
                     ff_cycles=11)
        m = RunStats.merge([a, b])
        assert m.cycles == 140
        assert m.fires == {"x": 14, "y": 7}
        assert m.stalls == {"x": {"input": 3, "ii": 2},
                            "y": {"output": 5}}
        assert m.stream_high_water == {"s": 3, "t": 9}
        assert m.ff_advances == 3
        assert m.ff_cycles == 61

    def test_merge_empty(self):
        m = RunStats.merge([])
        assert m.cycles == 0
        assert m.fires == {}

    def test_merge_keeps_two_distinct_veto_reasons(self):
        runs = [
            RunStats(cycles=10, ff_veto_reason="monitors attached"),
            RunStats(cycles=10),
            RunStats(cycles=10, ff_veto_reason="fault plan active"),
        ]
        m = RunStats.merge(runs)
        assert m.ff_veto_reason == "monitors attached; fault plan active"

    def test_merge_deduplicates_repeated_veto_reason(self):
        runs = [RunStats(cycles=5, ff_veto_reason="monitors attached")] * 3
        assert RunStats.merge(runs).ff_veto_reason == "monitors attached"

    def test_merge_without_vetoes_stays_none(self):
        assert RunStats.merge([RunStats(cycles=5)]).ff_veto_reason is None

    def test_summary_reports_fast_forward(self):
        stats = RunStats(cycles=500, fires={"fn": 400}, ff_advances=2,
                         ff_cycles=300)
        text = stats.summary()
        assert "300 fast-forwarded in 2 advances" in text
        assert "fn" in text

    def test_summary_quiet_without_fast_forward(self):
        stats = RunStats(cycles=500, fires={"fn": 400})
        assert "fast-forwarded" not in stats.summary()
