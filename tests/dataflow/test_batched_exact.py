"""Batched exact execution reproduces scalar ticking bit-for-bit.

``DataflowEngine(mode="exact", batched=True)`` — the default — must be
observationally *identical* to the forced-scalar per-cycle loop: same
cycle count, same per-stage fire and stall counters, same stream
high-water marks, same sink data, same fault traces, same monitor
samples.  The only legal differences are the engine's own
``batched_windows`` / ``batched_cycles`` / ``batch_fallback_reason``
accounting fields.  These tests sweep the event machinery that bounds
or vetoes windows: strided monitors, fault plans (drops, corrupts,
freezes), watchdogs, and the metric/tracer surfaces.
"""

import pytest

from repro.dataflow.engine import DataflowEngine
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.monitors import StreamProbe, ThroughputMonitor
from repro.dataflow.stage import (
    ConstStage,
    FunctionStage,
    SinkStage,
    SourceStage,
)
from repro.errors import FaultError, WatchdogTimeout
from repro.faults import FaultPlan, FaultSpec
from repro.observe import MetricRegistry, Tracer


def pipeline(n_items=300, *, fn_ii=1, fn_latency=4, depth=4):
    g = DataflowGraph("p")
    src = g.add(SourceStage("src", range(n_items)))
    fn = g.add(FunctionStage("fn", lambda x: 2 * x, ii=fn_ii,
                             latency=fn_latency))
    sink = g.add(SinkStage("sink"))
    g.connect(src, "out", fn, "in", depth=depth)
    g.connect(fn, "out", sink, "in", depth=depth)
    return g


def run_both(build, *, scalar_kwargs=None, batched_kwargs=None,
             **engine_kwargs):
    """Run a freshly built graph scalar and batched; return
    ((stats, graph), (stats, graph)) — graphs are stateful."""
    g_scalar = build()
    stats_scalar = DataflowEngine(
        g_scalar, mode="exact", batched=False,
        **{**engine_kwargs, **(scalar_kwargs or {})}).run()
    g_batched = build()
    stats_batched = DataflowEngine(
        g_batched, mode="exact", batched=True,
        **{**engine_kwargs, **(batched_kwargs or {})}).run()
    return (stats_scalar, g_scalar), (stats_batched, g_batched)


def assert_identical(scalar, batched):
    stats_scalar, g_scalar = scalar
    stats_batched, g_batched = batched
    # Everything except the engine's own batching accounting matches.
    d_scalar, d_batched = stats_scalar.to_dict(), stats_batched.to_dict()
    for key in ("batched_windows", "batched_cycles",
                "batch_fallback_reason"):
        d_scalar.pop(key), d_batched.pop(key)
    assert d_batched == d_scalar
    for s_scalar, s_batched in zip(g_scalar.streams, g_batched.streams):
        assert s_batched.stats.pushes == s_scalar.stats.pushes
        assert s_batched.stats.pops == s_scalar.stats.pops
        assert s_batched.occupancy == s_scalar.occupancy
    for stage in g_scalar.stages:
        if isinstance(stage, SinkStage):
            assert (g_batched.stage(stage.name).collected
                    == stage.collected), stage.name


class TestEquivalence:
    @pytest.mark.parametrize("ii,latency,depth", [
        (1, 1, 2),
        (1, 4, 4),
        (2, 4, 4),
        (3, 7, 2),
        (1, 16, 8),
    ])
    def test_pipeline_shapes(self, ii, latency, depth):
        scalar, batched = run_both(
            lambda: pipeline(300, fn_ii=ii, fn_latency=latency, depth=depth))
        assert_identical(scalar, batched)
        stats_batched, _ = batched
        # The point of the mode: most of the run must actually be batched
        # — and never counted under the fast-mode fields.
        assert stats_batched.batched_windows >= 1
        assert stats_batched.batched_cycles > stats_batched.cycles // 2
        assert stats_batched.ff_advances == 0
        assert stats_batched.ff_cycles == 0

    def test_scalar_run_reports_no_batching(self):
        (stats_scalar, _), _ = run_both(lambda: pipeline(100))
        assert stats_scalar.batched_windows == 0
        assert stats_scalar.batched_cycles == 0
        assert stats_scalar.batch_fallback_reason is None

    def test_fast_mode_ignores_the_batched_flag(self):
        g = pipeline(200)
        stats = DataflowEngine(g, mode="fast", batched=True).run()
        assert stats.batched_windows == 0
        assert stats.ff_advances >= 1


class TestMonitors:
    def test_strided_probe_samples_identically(self):
        samples = {}

        def build_and_attach(key):
            g = pipeline(400)
            probe = StreamProbe("src.out->fn.in", stride=64)
            samples[key] = probe
            return g, probe

        g_scalar, probe_scalar = build_and_attach("scalar")
        stats_scalar = DataflowEngine(
            g_scalar, mode="exact", batched=False,
            monitors=[probe_scalar]).run()
        g_batched, probe_batched = build_and_attach("batched")
        stats_batched = DataflowEngine(
            g_batched, mode="exact", batched=True,
            monitors=[probe_batched]).run()
        assert stats_batched.cycles == stats_scalar.cycles
        assert probe_batched.samples == probe_scalar.samples
        # Windows exist between the stride-64 sample cycles.
        assert stats_batched.batched_windows >= 1

    def test_throughput_monitor_windows_match(self):
        g_scalar = pipeline(400)
        mon_scalar = ThroughputMonitor("fn", window=64)
        DataflowEngine(g_scalar, mode="exact", batched=False,
                       monitors=[mon_scalar]).run()
        g_batched = pipeline(400)
        mon_batched = ThroughputMonitor("fn", window=64)
        stats = DataflowEngine(g_batched, mode="exact", batched=True,
                               monitors=[mon_batched]).run()
        assert mon_batched.rates == mon_scalar.rates
        assert stats.batched_windows >= 1

    def test_every_cycle_monitor_disables_batching_with_reason(self):
        g = pipeline(200)
        stats = DataflowEngine(
            g, mode="exact", batched=True,
            monitors=[StreamProbe("src.out->fn.in", stride=1)]).run()
        assert stats.batched_windows == 0
        assert "samples every cycle" in stats.batch_fallback_reason


class TestFaults:
    def test_drop_faults_keep_batching_and_the_trace(self):
        # A capped drop spec: the strike lands on the scalar path at its
        # exact push opportunity, windows re-open afterwards.  The lost
        # word surfaces as the same accounting FaultError in both modes.
        def build():
            return pipeline(300)

        def plan():
            return FaultPlan([FaultSpec(site="fifo", kind="drop",
                                        match="src.out->fn.in", probability=0.01,
                                        count=2)], seed=7)

        plan_scalar, plan_batched = plan(), plan()
        with pytest.raises(FaultError) as err_scalar:
            DataflowEngine(build(), mode="exact", batched=False,
                           fault_plan=plan_scalar).run()
        with pytest.raises(FaultError) as err_batched:
            DataflowEngine(build(), mode="exact", batched=True,
                           fault_plan=plan_batched).run()
        assert str(err_batched.value) == str(err_scalar.value)
        assert plan_batched.trace_key() == plan_scalar.trace_key()

    def test_drop_inside_a_period_measurement_resets_detection(self):
        # Regression: a drop striking *between* a signature's first
        # occurrence and its recurrence pollutes the measured deltas —
        # the producer's retire rate counts the vanished word, the
        # consumer's pop rate does not — so replaying that "period"
        # grows the struck stream by one word per period until the
        # relay overflows its depth.  The strike must instead reset
        # recurrence detection; both modes then die with the same
        # lost-word accounting error.  (Shape found by the Hypothesis
        # property suite; pinned here deterministically.)
        from repro.analyze import build_token_twin
        from repro.lint.spec import SpecStage

        def build():
            g = DataflowGraph("drop-mid-period")
            g.add(SpecStage("src", outputs=("out",), latency=1))
            g.add(SpecStage("l0n0", inputs=("in",), outputs=("o0", "o1"),
                            ii=2, latency=2))
            g.add(SpecStage("l0n1", inputs=("in",), outputs=("o0",),
                            ii=2, latency=5))
            g.add(SpecStage("sink", inputs=("i0", "i1")))
            g.connect("src", "out", "l0n0", "in", depth=1)
            g.connect("l0n0", "o1", "l0n1", "in", depth=1)
            g.connect("l0n0", "o0", "sink", "i0", depth=2)
            g.connect("l0n1", "o0", "sink", "i1", depth=5)
            return build_token_twin(g, 34)

        def plan():
            return FaultPlan([FaultSpec(site="fifo", kind="drop",
                                        match="*", probability=0.01,
                                        count=2)], seed=1)

        plan_scalar, plan_batched = plan(), plan()
        with pytest.raises(FaultError) as err_scalar:
            DataflowEngine(build(), mode="exact", batched=False,
                           fault_plan=plan_scalar).run()
        with pytest.raises(FaultError) as err_batched:
            DataflowEngine(build(), mode="exact", batched=True,
                           fault_plan=plan_batched).run()
        assert str(err_batched.value) == str(err_scalar.value)
        assert plan_batched.trace_key() == plan_scalar.trace_key()

    def test_corrupt_fault_disables_batching_then_matches_scalar(self):
        def plan():
            return FaultPlan([FaultSpec(site="fifo", kind="corrupt",
                                        match="fn.out->sink.in",
                                        probability=0.005)], seed=3)

        plan_scalar, plan_batched = plan(), plan()
        with pytest.raises(FaultError) as err_scalar:
            DataflowEngine(pipeline(300), mode="exact", batched=False,
                           fault_plan=plan_scalar).run()
        with pytest.raises(FaultError) as err_batched:
            DataflowEngine(pipeline(300), mode="exact", batched=True,
                           fault_plan=plan_batched).run()
        assert str(err_batched.value) == str(err_scalar.value)
        assert plan_batched.trace_key() == plan_scalar.trace_key()
        assert "ECC" in str(err_batched.value) or "corrupted" in str(
            err_batched.value)

    def test_freeze_window_forces_scalar_then_rebatches(self):
        def plan():
            return FaultPlan([FaultSpec(site="stage", kind="freeze",
                                        match="fn", at_cycle=40,
                                        cycles=30)], seed=0)

        scalar, batched = run_both(
            lambda: pipeline(300), stall_grace=64,
            scalar_kwargs={"fault_plan": plan()},
            batched_kwargs={"fault_plan": plan()})
        assert_identical(scalar, batched)
        stats_batched, _ = batched
        # Batching resumes after the freeze window: the frozen region
        # ticks scalar, the steady tail is still batched.
        assert stats_batched.batched_windows >= 1

    def test_certain_fifo_fault_batches_nothing_early(self):
        # probability=1, persistent: every push strikes, so the preview
        # caps every window at zero strike-free pushes — all drops land
        # exactly as the scalar engine lands them.
        def plan():
            return FaultPlan([FaultSpec(site="fifo", kind="drop",
                                        match="src.out->fn.in", probability=1.0,
                                        count=None)], seed=0)

        plan_scalar, plan_batched = plan(), plan()
        with pytest.raises(FaultError) as err_scalar:
            DataflowEngine(pipeline(120), mode="exact", batched=False,
                           fault_plan=plan_scalar).run()
        with pytest.raises(FaultError) as err_batched:
            DataflowEngine(pipeline(120), mode="exact", batched=True,
                           fault_plan=plan_batched).run()
        assert str(err_batched.value) == str(err_scalar.value)
        assert plan_batched.trace_key() == plan_scalar.trace_key()


class TestWatchdog:
    def test_watchdog_budget_is_not_overshot_by_a_window(self):
        # A window may never advance past the watchdog cap: the batched
        # run must raise the same typed timeout as the scalar loop.
        def build():
            g = DataflowGraph("w")
            src = g.add(ConstStage("const", 1, 10_000))
            sink = g.add(SinkStage("sink"))
            g.connect(src, "out", sink, "in", depth=4)
            return g

        with pytest.raises(WatchdogTimeout):
            DataflowEngine(build(), mode="exact", batched=False,
                           watchdog=500).run()
        with pytest.raises(WatchdogTimeout):
            DataflowEngine(build(), mode="exact", batched=True,
                           watchdog=500).run()

    def test_watchdog_that_never_fires_is_equivalent(self):
        scalar, batched = run_both(lambda: pipeline(200), watchdog=100_000)
        assert_identical(scalar, batched)


class TestObservability:
    def test_tracer_emits_batched_window_spans(self):
        tracer = Tracer(enabled=True)
        g = pipeline(300)
        stats = DataflowEngine(g, mode="exact", batched=True,
                               tracer=tracer).run()
        assert stats.batched_windows >= 1
        spans = [s for s in tracer.spans if s.category == "batched"]
        assert len(spans) == stats.batched_windows
        assert sum(s.end - s.start for s in spans) == stats.batched_cycles

    def test_metrics_carry_the_batched_counters(self):
        registry = MetricRegistry(enabled=True)
        g = pipeline(300)
        stats = DataflowEngine(g, mode="exact", batched=True,
                               metrics=registry).run()
        snapshot = registry.snapshot()
        assert snapshot["batched_windows"]["samples"][0]["value"] \
            == stats.batched_windows
        assert snapshot["scalar_fallback_cycles"]["samples"][0]["value"] \
            == stats.cycles - stats.batched_cycles

    def test_fallback_reason_reaches_metrics_and_summary(self):
        registry = MetricRegistry(enabled=True)
        g = pipeline(200)
        stats = DataflowEngine(
            g, mode="exact", batched=True, metrics=registry,
            monitors=[StreamProbe("src.out->fn.in", stride=1)]).run()
        assert stats.batch_fallback_reason is not None
        assert "batch_fallbacks" in registry.names()
        assert "batched fallback" in stats.summary()

    def test_summary_reports_the_window_split(self):
        _, batched = run_both(lambda: pipeline(300))
        stats, _ = batched
        text = stats.summary()
        assert f"{stats.batched_cycles} batched" in text
        assert f"{stats.batched_windows} windows" in text


class TestRunStatsPlumbing:
    def test_merge_sums_window_counters_and_joins_reasons(self):
        from repro.dataflow.engine import RunStats

        a = RunStats(cycles=10, fires={}, stalls={}, stream_high_water={},
                     batched_windows=2, batched_cycles=6,
                     batch_fallback_reason="reason a")
        b = RunStats(cycles=20, fires={}, stalls={}, stream_high_water={},
                     batched_windows=3, batched_cycles=15,
                     batch_fallback_reason="reason b")
        merged = RunStats.merge([a, b])
        assert merged.batched_windows == 5
        assert merged.batched_cycles == 21
        assert "reason a" in merged.batch_fallback_reason
        assert "reason b" in merged.batch_fallback_reason

    def test_to_dict_round_trips_the_new_fields(self):
        _, batched = run_both(lambda: pipeline(200))
        stats, _ = batched
        d = stats.to_dict()
        assert d["batched_windows"] == stats.batched_windows
        assert d["batched_cycles"] == stats.batched_cycles
        assert d["batch_fallback_reason"] == stats.batch_fallback_reason
