"""Tests for the per-cycle probes."""

import pytest

from repro.dataflow.engine import DataflowEngine
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.monitors import StreamProbe, ThroughputMonitor
from repro.dataflow.stage import FunctionStage, SinkStage, SourceStage


def instrumented(n=200, window=16):
    g = DataflowGraph("m")
    src = g.add(SourceStage("src", range(n)))
    fn = g.add(FunctionStage("fn", lambda x: x, latency=2))
    sink = g.add(SinkStage("sink"))
    stream = g.connect(src, "out", fn, "in", depth=4)
    g.connect(fn, "out", sink, "in", depth=4)
    probe = StreamProbe(stream.name)
    monitor = ThroughputMonitor("fn", window=window)
    DataflowEngine(g, monitors=[probe, monitor]).run()
    return probe, monitor


class TestStreamProbe:
    def test_samples_every_cycle(self):
        probe, _ = instrumented(50)
        assert len(probe.samples) >= 50

    def test_occupancy_within_depth(self):
        probe, _ = instrumented(50)
        assert 0 <= probe.max_occupancy <= 4
        assert 0.0 <= probe.mean_occupancy <= 4.0

    def test_stride_reduces_samples(self):
        g = DataflowGraph("m")
        src = g.add(SourceStage("src", range(100)))
        sink = g.add(SinkStage("sink"))
        stream = g.connect(src, "out", sink, "in")
        probe = StreamProbe(stream.name, stride=10)
        DataflowEngine(g, monitors=[probe]).run()
        assert len(probe.samples) <= 12

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            StreamProbe("x", stride=0)

    def test_empty_probe_stats(self):
        probe = StreamProbe("x")
        assert probe.mean_occupancy == 0.0
        assert probe.max_occupancy == 0


class TestThroughputMonitor:
    def test_steady_state_rate_near_one(self):
        _, monitor = instrumented(400, window=32)
        assert monitor.steady_state_rate == pytest.approx(1.0, abs=0.1)

    def test_peak_rate_bounded_by_one(self):
        _, monitor = instrumented(200)
        assert monitor.peak_rate <= 1.0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ThroughputMonitor("x", window=0)

    def test_empty_monitor_rates(self):
        m = ThroughputMonitor("x")
        assert m.steady_state_rate == 0.0
        assert m.peak_rate == 0.0
