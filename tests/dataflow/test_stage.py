"""Tests for stage firing, pipelining and backpressure."""

import pytest

from repro.dataflow.graph import DataflowGraph
from repro.dataflow.stage import (
    ConstStage,
    FunctionStage,
    SinkStage,
    SourceStage,
    Stage,
)
from repro.dataflow.stream import Stream
from repro.errors import DataflowError, GraphError


def wire(src, dst, depth=8):
    g = DataflowGraph("t")
    g.add(src)
    g.add(dst)
    g.connect(src, "out", dst, "in", depth=depth)
    return g


class TestConstruction:
    def test_rejects_bad_ii(self):
        with pytest.raises(DataflowError):
            FunctionStage("f", lambda x: x, ii=0)

    def test_rejects_bad_latency(self):
        with pytest.raises(DataflowError):
            FunctionStage("f", lambda x: x, latency=0)

    def test_bind_unknown_port_rejected(self):
        s = FunctionStage("f", lambda x: x)
        with pytest.raises(GraphError):
            s.bind_input("bogus", Stream("x"))
        with pytest.raises(GraphError):
            s.bind_output("bogus", Stream("x"))

    def test_double_bind_rejected(self):
        s = FunctionStage("f", lambda x: x)
        s.bind_input("in", Stream("a"))
        with pytest.raises(GraphError):
            s.bind_input("in", Stream("b"))

    def test_check_wired_reports_missing(self):
        s = FunctionStage("f", lambda x: x)
        with pytest.raises(GraphError, match="unconnected"):
            s.check_wired()


class TestPipelining:
    def test_latency_delays_output(self):
        src = SourceStage("src", [10])
        fn = FunctionStage("f", lambda x: x + 1, latency=5)
        sink = SinkStage("sink")
        g = DataflowGraph("t")
        for s in (src, fn, sink):
            g.add(s)
        g.connect(src, "out", fn, "in")
        g.connect(fn, "out", sink, "in")
        # Manually tick: the value should not reach the sink before the
        # function stage's latency has elapsed.
        for cycle in range(4):
            for s in (src, fn, sink):
                s.tick(cycle)
        assert sink.collected == []
        for cycle in range(4, 12):
            for s in (src, fn, sink):
                s.tick(cycle)
        assert sink.collected == [11]

    def test_in_flight_bounded_by_latency(self):
        src = SourceStage("src", range(100))
        fn = FunctionStage("f", lambda x: x, latency=3)
        sink = SinkStage("sink", ii=100)  # sink almost never fires
        g = DataflowGraph("t")
        for s in (src, fn, sink):
            g.add(s)
        g.connect(src, "out", fn, "in", depth=2)
        g.connect(fn, "out", sink, "in", depth=2)
        for cycle in range(50):
            for s in (src, fn, sink):
                s.tick(cycle)
        assert fn.in_flight <= 3

    def test_ii_limits_firing_rate(self):
        src = SourceStage("src", range(10))
        fn = FunctionStage("f", lambda x: x, ii=3)
        sink = SinkStage("sink")
        g = DataflowGraph("t")
        for s in (src, fn, sink):
            g.add(s)
        g.connect(src, "out", fn, "in", depth=16)
        g.connect(fn, "out", sink, "in", depth=16)
        for cycle in range(9):
            for s in (src, fn, sink):
                s.tick(cycle)
        assert fn.stats.fires == 3  # cycles 0, 3, 6


class TestBackpressure:
    def test_full_output_blocks_retire(self):
        fn = FunctionStage("f", lambda x: x, latency=1)
        ins = Stream("in", depth=10)
        outs = Stream("out", depth=1)
        fn.bind_input("in", ins)
        fn.bind_output("out", outs)
        for i in range(5):
            ins.push(i)
        for cycle in range(10):
            fn.tick(cycle)
        # Output stream full with one item; stage recorded output stalls.
        assert outs.occupancy == 1
        assert fn.stats.output_stalls > 0

    def test_retire_in_fifo_order(self):
        fn = FunctionStage("f", lambda x: x, latency=2)
        ins = Stream("in", depth=10)
        outs = Stream("out", depth=10)
        fn.bind_input("in", ins)
        fn.bind_output("out", outs)
        for i in range(4):
            ins.push(i)
        for cycle in range(12):
            fn.tick(cycle)
        assert list(outs) == [0, 1, 2, 3]


class TestSource:
    def test_emits_all_items(self):
        src = SourceStage("src", iter([1, 2, 3]))
        out = Stream("o", depth=10)
        src.bind_output("out", out)
        for cycle in range(10):
            src.tick(cycle)
        assert list(out) == [1, 2, 3]
        assert src.is_idle()

    def test_exhausted_before_any_fire_for_empty(self):
        src = SourceStage("src", [])
        assert src.exhausted()

    def test_fire_never_called(self):
        src = SourceStage("src", [1])
        with pytest.raises(DataflowError):
            src.fire(0, {})


class TestConstStage:
    def test_emits_count_copies(self):
        c = ConstStage("c", "x", count=4)
        out = Stream("o", depth=10)
        c.bind_output("out", out)
        for cycle in range(10):
            c.tick(cycle)
        assert list(out) == ["x"] * 4
        assert c.exhausted()


class TestSink:
    def test_collects_in_order(self):
        sink = SinkStage("k")
        ins = Stream("i", depth=10)
        sink.bind_input("in", ins)
        for i in range(5):
            ins.push(i)
        for cycle in range(10):
            sink.tick(cycle)
        assert sink.collected == [0, 1, 2, 3, 4]

    def test_reset_clears_collected(self):
        sink = SinkStage("k")
        sink.collected.append(1)
        sink.reset()
        assert sink.collected == []


class TestMisbehavingStage:
    def test_undeclared_output_port_detected(self):
        class Bad(Stage):
            input_ports = ("in",)
            output_ports = ("out",)

            def fire(self, cycle, inputs):
                return {"nope": [1]}

        bad = Bad("bad")
        ins = Stream("i", depth=2)
        outs = Stream("o", depth=2)
        bad.bind_input("in", ins)
        bad.bind_output("out", outs)
        ins.push(1)
        with pytest.raises(DataflowError, match="undeclared"):
            bad.tick(0)
