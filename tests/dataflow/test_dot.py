"""DOT export of dataflow graphs."""

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import SourceSet
from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.dataflow.dot import to_dot, write_dot
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.stage import FunctionStage, SinkStage, SourceStage
from repro.kernel.builder import build_advection_graph
from repro.kernel.config import KernelConfig


def small_graph():
    g = DataflowGraph("demo")
    g.add(SourceStage("src", [1, 2]))
    g.add(FunctionStage("f", lambda x: x, ii=2, latency=7))
    g.add(SinkStage("sink"))
    g.connect("src", "out", "f", "in", depth=4)
    g.connect("f", "out", "sink", "in", depth=4)
    return g


class TestDot:
    def test_contains_all_stages_and_edges(self):
        dot = to_dot(small_graph())
        assert dot.startswith('digraph "demo"')
        for name in ("src", "f", "sink"):
            assert f'"{name}"' in dot
        assert '"src" -> "f"' in dot
        assert '"f" -> "sink"' in dot

    def test_labels_carry_ii_latency_and_depth(self):
        dot = to_dot(small_graph())
        assert "II=2 L=7" in dot
        assert "depth 4" in dot

    def test_rankdir(self):
        assert "rankdir=TB" in to_dot(small_graph(), rankdir="TB")

    def test_write_to_file(self, tmp_path):
        path = write_dot(small_graph(), tmp_path / "g.dot")
        assert path.read_text().rstrip().endswith("}")

    def test_fig2_kernel_graph_renders(self):
        grid = Grid(nx=4, ny=4, nz=4)
        config = KernelConfig(grid=grid, chunk_width=4)
        chunk = config.chunk_plan().chunks[0]
        graph = build_advection_graph(
            config, random_wind(grid, seed=0), chunk,
            AdvectionCoefficients.uniform(grid), SourceSet.zeros(grid))
        dot = to_dot(graph)
        for stage in ("read_data", "shift_buffer", "replicate",
                      "advect_u", "advect_v", "advect_w", "write_data"):
            assert stage in dot
        # Eight edges, like Fig. 2.
        assert dot.count("->") == 8
