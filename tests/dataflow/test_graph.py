"""Tests for graph construction and validation."""

import pytest

from repro.dataflow.graph import DataflowGraph
from repro.dataflow.stage import FunctionStage, SinkStage, SourceStage, Stage
from repro.errors import GraphError


def linear_graph():
    g = DataflowGraph("linear")
    src = g.add(SourceStage("src", range(3)))
    fn = g.add(FunctionStage("fn", lambda x: x))
    sink = g.add(SinkStage("sink"))
    g.connect(src, "out", fn, "in")
    g.connect(fn, "out", sink, "in")
    return g


class TestConstruction:
    def test_duplicate_stage_name_rejected(self):
        g = DataflowGraph()
        g.add(SinkStage("a"))
        with pytest.raises(GraphError):
            g.add(SinkStage("a"))

    def test_connect_by_name(self):
        g = DataflowGraph()
        g.add(SourceStage("src", [1]))
        g.add(SinkStage("sink"))
        stream = g.connect("src", "out", "sink", "in")
        assert stream.name == "src.out->sink.in"

    def test_connect_unknown_stage_rejected(self):
        g = DataflowGraph()
        g.add(SinkStage("sink"))
        with pytest.raises(GraphError):
            g.connect("ghost", "out", "sink", "in")

    def test_connect_unadded_stage_object_rejected(self):
        g = DataflowGraph()
        orphan = SourceStage("orphan", [1])
        g.add(SinkStage("sink"))
        with pytest.raises(GraphError):
            g.connect(orphan, "out", "sink", "in")

    def test_duplicate_stream_name_rejected(self):
        g = DataflowGraph()
        g.add(SourceStage("a", [1]))
        g.add(SourceStage("b", [1]))
        g.add(SinkStage("s1"))
        g.add(SinkStage("s2"))
        g.connect("a", "out", "s1", "in", name="x")
        with pytest.raises(GraphError):
            g.connect("b", "out", "s2", "in", name="x")

    def test_custom_depth(self):
        g = DataflowGraph()
        g.add(SourceStage("a", [1]))
        g.add(SinkStage("s"))
        stream = g.connect("a", "out", "s", "in", depth=17)
        assert stream.depth == 17

    def test_accessors(self):
        g = linear_graph()
        assert len(g.stages) == 3
        assert len(g.streams) == 2
        assert g.stage("fn").name == "fn"
        with pytest.raises(GraphError):
            g.stage("nope")
        with pytest.raises(GraphError):
            g.stream("nope")

    def test_successors(self):
        g = linear_graph()
        assert [s.name for s in g.successors("src")] == ["fn"]
        assert [s.name for s in g.successors("sink")] == []


class TestValidation:
    def test_valid_graph_passes(self):
        linear_graph().validate()

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            DataflowGraph().validate()

    def test_unconnected_port_rejected(self):
        g = DataflowGraph()
        g.add(SourceStage("src", [1]))
        g.add(FunctionStage("fn", lambda x: x))
        g.add(SinkStage("sink"))
        g.connect("src", "out", "fn", "in")
        # fn.out dangling
        with pytest.raises(GraphError, match="unconnected"):
            g.validate()

    def test_cycle_detected(self):
        class Loop(Stage):
            input_ports = ("in",)
            output_ports = ("out",)

            def fire(self, cycle, inputs):
                return {"out": inputs["in"]}

        g = DataflowGraph()
        g.add(Loop("a"))
        g.add(Loop("b"))
        g.connect("a", "out", "b", "in")
        g.connect("b", "out", "a", "in")
        with pytest.raises(GraphError, match="cycle"):
            g.topological_order()

    def test_topological_order_respects_edges(self):
        g = linear_graph()
        order = [s.name for s in g.topological_order()]
        assert order.index("src") < order.index("fn") < order.index("sink")


class TestReset:
    def test_reset_clears_everything(self):
        from repro.dataflow.engine import DataflowEngine

        g = linear_graph()
        DataflowEngine(g).run()
        sink = g.stage("sink")
        assert sink.collected == [0, 1, 2]
        g.reset()
        assert sink.collected == []
        assert all(s.is_empty for s in g.streams)
        assert all(s.stats.fires == 0 for s in g.stages)
