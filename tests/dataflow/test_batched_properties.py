"""Property suite: batched exact equals scalar exact on random DAGs.

Random layered DAGs (the same strategy the analyzer proofs are tested
on) are lowered to engine-runnable token twins and run twice — forced
scalar and batched exact.  Everything observable must match
byte-for-byte: the full :meth:`RunStats.to_dict` payload (minus the
engine's own batching accounting), per-stream push/pop/occupancy state,
relay outputs, monitor samples, and fault traces.  Fault plans and
strided monitors are layered on top to force mid-run scalar fallback
windows, so the re-entry paths get the same adversarial coverage as the
steady state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze import build_token_twin
from repro.dataflow.engine import DataflowEngine
from repro.dataflow.monitors import StreamProbe
from repro.errors import DataflowError, FaultError
from repro.faults import FaultPlan, FaultSpec
from tests.analyze.test_properties import random_dag


def _strip_batching(stats):
    payload = stats.to_dict()
    for key in ("batched_windows", "batched_cycles",
                "batch_fallback_reason"):
        payload.pop(key)
    return payload


def _machine_state(graph):
    return {
        stream.name: (stream.stats.pushes, stream.stats.pops,
                      stream.occupancy, stream.stats.max_occupancy)
        for stream in graph.streams
    }


def run_pair(spec_graph, tokens, *, plan_factory=None, monitors=None,
             **engine_kwargs):
    """Run the token twin scalar and batched; return both (stats, twin,
    plan, error) tuples.  Each leg gets its own twin and plan — the
    graphs and plans are stateful."""
    results = []
    for batched in (False, True):
        twin = build_token_twin(spec_graph, tokens)
        plan = plan_factory() if plan_factory is not None else None
        mons = monitors(twin) if monitors is not None else None
        engine = DataflowEngine(twin, mode="exact", batched=batched,
                                fault_plan=plan, monitors=mons,
                                **engine_kwargs)
        # A dropped word may starve a fan-in consumer outright: the run
        # then dies as a deadlock (DataflowError), not a FaultError.
        # Either way both modes must fail identically.
        try:
            stats, error = engine.run(), None
        except (FaultError, DataflowError) as exc:
            stats, error = None, exc
        results.append((stats, twin, plan, mons, error))
    return results


def assert_pair_identical(scalar, batched):
    stats_s, twin_s, plan_s, mons_s, err_s = scalar
    stats_b, twin_b, plan_b, mons_b, err_b = batched
    # Same outcome: both completed, or both failed identically.
    assert (err_b is None) == (err_s is None)
    if err_s is not None:
        assert type(err_b) is type(err_s)
        assert str(err_b) == str(err_s)
    else:
        assert _strip_batching(stats_b) == _strip_batching(stats_s)
        assert stats_b.ff_advances == 0  # exact mode never fast-forwards
    assert _machine_state(twin_b) == _machine_state(twin_s)
    if plan_s is not None:
        assert plan_b.trace_key() == plan_s.trace_key()
    if mons_s is not None:
        for m_s, m_b in zip(mons_s, mons_b):
            assert m_b.samples == m_s.samples


@settings(max_examples=50, deadline=None)
@given(random_dag())
def test_batched_equals_scalar_on_random_dags(params):
    graph, tokens = params
    scalar, batched = run_pair(graph, tokens)
    assert_pair_identical(scalar, batched)


@settings(max_examples=30, deadline=None)
@given(random_dag(), st.integers(0, 2**16))
def test_batched_equals_scalar_under_fifo_faults(params, seed):
    graph, tokens = params
    scalar, batched = run_pair(
        graph, tokens,
        plan_factory=lambda: FaultPlan(
            [FaultSpec(site="fifo", kind="drop", match="*",
                       probability=0.01, count=2)], seed=seed))
    assert_pair_identical(scalar, batched)


@settings(max_examples=30, deadline=None)
@given(random_dag(), st.integers(0, 2**16))
def test_batched_equals_scalar_under_corrupt_faults(params, seed):
    graph, tokens = params
    scalar, batched = run_pair(
        graph, tokens,
        plan_factory=lambda: FaultPlan(
            [FaultSpec(site="fifo", kind="corrupt", match="*",
                       probability=0.02, count=1)], seed=seed))
    assert_pair_identical(scalar, batched)


@settings(max_examples=30, deadline=None)
@given(random_dag(), st.integers(1, 30), st.integers(1, 6))
def test_batched_equals_scalar_under_stage_freezes(params, at_cycle,
                                                   cycles):
    # A freeze window forces scalar ticking across its boundaries and a
    # re-entry into batching afterwards; the generous grace keeps the
    # deadlock guard out of the way of long freezes.
    graph, tokens = params
    scalar, batched = run_pair(
        graph, tokens, stall_grace=200,
        plan_factory=lambda: FaultPlan(
            [FaultSpec(site="stage", kind="freeze", match="l0n0",
                       at_cycle=at_cycle, cycles=cycles)]))
    assert_pair_identical(scalar, batched)


@settings(max_examples=30, deadline=None)
@given(random_dag(), st.integers(2, 40))
def test_batched_equals_scalar_under_strided_monitors(params, stride):
    # Every sample cycle must tick scalar; windows live in the gaps.
    graph, tokens = params

    def monitors(twin):
        streams = list(twin.streams)
        return [StreamProbe(streams[0].name, stride=stride)]

    scalar, batched = run_pair(graph, tokens, monitors=monitors)
    assert_pair_identical(scalar, batched)
