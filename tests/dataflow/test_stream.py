"""Tests for the bounded FIFO stream."""

import pytest

from repro.dataflow.stream import DEFAULT_DEPTH, Stream
from repro.errors import StreamError


class TestBasics:
    def test_fifo_order(self):
        s = Stream("s", depth=3)
        for i in range(3):
            s.push(i)
        assert [s.pop() for _ in range(3)] == [0, 1, 2]

    def test_default_depth_matches_hls(self):
        assert Stream("s").depth == DEFAULT_DEPTH == 2

    def test_len_and_occupancy(self):
        s = Stream("s", depth=4)
        s.push("a")
        s.push("b")
        assert len(s) == s.occupancy == 2

    def test_iteration_front_to_back(self):
        s = Stream("s", depth=4)
        s.push(1)
        s.push(2)
        assert list(s) == [1, 2]

    def test_rejects_zero_depth(self):
        with pytest.raises(StreamError):
            Stream("s", depth=0)


class TestCapacity:
    def test_is_full_and_can_push(self):
        s = Stream("s", depth=2)
        assert s.can_push() and not s.is_full
        s.push(1)
        s.push(2)
        assert s.is_full and not s.can_push()

    def test_can_push_multiple(self):
        s = Stream("s", depth=3)
        assert s.can_push(3)
        assert not s.can_push(4)
        s.push(1)
        assert s.can_push(2) and not s.can_push(3)

    def test_push_to_full_raises_and_counts(self):
        s = Stream("s", depth=1)
        s.push(1)
        with pytest.raises(StreamError):
            s.push(2)
        assert s.stats.full_stalls == 1

    def test_can_pop_multiple(self):
        s = Stream("s", depth=4)
        s.push(1)
        s.push(2)
        assert s.can_pop(2) and not s.can_pop(3)


class TestEmpty:
    def test_pop_empty_raises_and_counts(self):
        s = Stream("s")
        with pytest.raises(StreamError):
            s.pop()
        assert s.stats.empty_stalls == 1

    def test_peek(self):
        s = Stream("s")
        s.push(42)
        assert s.peek() == 42
        assert len(s) == 1  # not removed

    def test_peek_empty_raises(self):
        with pytest.raises(StreamError):
            Stream("s").peek()


class TestStats:
    def test_push_pop_counts(self):
        s = Stream("s", depth=4)
        for i in range(3):
            s.push(i)
        s.pop()
        assert s.stats.pushes == 3
        assert s.stats.pops == 1

    def test_max_occupancy_high_water(self):
        s = Stream("s", depth=4)
        s.push(1)
        s.push(2)
        s.pop()
        s.push(3)
        assert s.stats.max_occupancy == 2

    def test_note_stall_helpers(self):
        s = Stream("s")
        s.note_full_stall()
        s.note_empty_stall()
        assert s.stats.full_stalls == 1
        assert s.stats.empty_stalls == 1

    def test_drain_returns_and_clears(self):
        s = Stream("s", depth=4)
        s.push(1)
        s.push(2)
        assert s.drain() == [1, 2]
        assert s.is_empty
        assert s.stats.pops == 2

    def test_stats_reset(self):
        s = Stream("s", depth=2)
        s.push(1)
        s.stats.reset()
        assert s.stats.pushes == 0
