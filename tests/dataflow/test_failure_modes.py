"""Failure injection: the simulator must *detect* broken designs, not hang.

A dataflow design can be wrong in ways the numerics never show — an
undersized FIFO that deadlocks on the column-top double emission, a
mis-ordered stream.  These tests build such designs deliberately and
check the engine diagnoses them.
"""

import pytest

from repro.core.coefficients import AdvectionCoefficients
from repro.dataflow.engine import DataflowEngine
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.stage import SinkStage, SourceStage, Stage
from repro.errors import DataflowError
from repro.kernel.stages import CellInput, ShiftBufferStage


class TestUndersizedFifoDeadlock:
    def test_depth1_stream_deadlocks_on_double_emission(self):
        """The shift buffer emits TWO windows at each column top; a
        depth-1 FIFO can never accept them, so the design deadlocks —
        which is exactly why KernelConfig refuses stream_depth < 2."""
        nx = ny = nz = 4
        cells = [CellInput(float(i), 0.0, 0.0) for i in range(nx * ny * nz)]

        graph = DataflowGraph("broken")
        graph.add(SourceStage("read", iter(cells)))
        shift = graph.add(ShiftBufferStage("shift", nx, ny, nz))
        graph.add(SinkStage("sink"))
        graph.connect("read", "out", shift, "in", depth=4)
        graph.connect(shift, "out", "sink", "in", depth=1)  # too shallow

        with pytest.raises(DataflowError, match="deadlock"):
            DataflowEngine(graph).run()

    def test_depth2_stream_is_sufficient(self):
        nx = ny = nz = 4
        cells = [CellInput(float(i), 0.0, 0.0) for i in range(nx * ny * nz)]
        graph = DataflowGraph("ok")
        graph.add(SourceStage("read", iter(cells)))
        shift = graph.add(ShiftBufferStage("shift", nx, ny, nz))
        sink = graph.add(SinkStage("sink"))
        graph.connect("read", "out", shift, "in", depth=4)
        graph.connect(shift, "out", sink, "in", depth=2)
        DataflowEngine(graph).run()
        assert len(sink.collected) == (nx - 2) * (ny - 2) * (nz - 1)


class TestMisbehavingStages:
    def test_stage_raising_mid_run_propagates(self):
        class Exploding(Stage):
            input_ports = ("in",)
            output_ports: tuple[str, ...] = ()

            def fire(self, cycle, inputs):
                raise RuntimeError("component fault")

        graph = DataflowGraph("fault")
        graph.add(SourceStage("src", [1, 2, 3]))
        graph.add(Exploding("bad"))
        graph.connect("src", "out", "bad", "in")
        with pytest.raises(RuntimeError, match="component fault"):
            DataflowEngine(graph).run()

    def test_desynchronised_shift_buffers_detected(self):
        """If one field's buffer somehow emits a different window count
        the stage must fail loudly rather than pair mismatched stencils."""
        stage = ShiftBufferStage("s", 4, 4, 4)
        # Feed the u buffer one extra value out of band to desync it.
        stage._buffers["u"].feed(0.0)
        from repro.dataflow.stream import Stream

        ins = Stream("i", depth=4)
        outs = Stream("o", depth=4)
        stage.bind_input("in", ins)
        stage.bind_output("out", outs)
        # Feed enough synchronised cells that the u buffer (one ahead)
        # reaches an emitting position while v/w have not.
        with pytest.raises(DataflowError, match="desynchronised"):
            for i in range(4 * 4 * 4 - 1):
                ins.push(CellInput(1.0, 2.0, 3.0))
                stage.tick(i)
                while outs.can_pop():
                    outs.pop()


class TestAdvectStageValidation:
    def test_unknown_field_rejected(self):
        from repro.kernel.stages import AdvectStage

        grid_nz = 4
        coeffs = AdvectionCoefficients.uniform(
            __import__("repro.core.grid", fromlist=["Grid"]).Grid(
                nx=4, ny=4, nz=grid_nz))
        with pytest.raises(DataflowError):
            AdvectStage("a", "q", coeffs, grid_nz)
