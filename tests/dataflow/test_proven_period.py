"""``proven_period``: fast-forward without the runtime recurrence hunt.

A statically proven steady-state period (from ``repro.analyze``) lets the
fast engine skip fingerprint-table building: it arms one probe and jumps
when the control state recurs exactly that many cycles later.  The mode
must stay observationally equivalent to exact ticking — and a *wrong*
period may cost speed but never correctness.
"""

import pytest

from repro.analyze import analyze_graph, build_token_twin
from repro.dataflow.engine import DataflowEngine
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.stage import FunctionStage, SinkStage, SourceStage
from repro.errors import DataflowError
from repro.lint.spec import SpecStage


def pipeline(n_items=400, *, fn_ii=1, fn_latency=4, depth=4):
    g = DataflowGraph("p")
    src = g.add(SourceStage("src", range(n_items)))
    fn = g.add(FunctionStage("fn", lambda x: 2 * x, ii=fn_ii,
                             latency=fn_latency))
    sink = g.add(SinkStage("sink"))
    g.connect(src, "out", fn, "in", depth=depth)
    g.connect(fn, "out", sink, "in", depth=depth)
    return g


def collected(graph):
    (sink,) = [s for s in graph.stages if isinstance(s, SinkStage)]
    return sink.collected


class TestEquivalence:
    @pytest.mark.parametrize("fn_ii,period", [(1, 1), (2, 2), (3, 3)])
    def test_proven_period_matches_exact_mode(self, fn_ii, period):
        g_exact = pipeline(fn_ii=fn_ii)
        stats_exact = DataflowEngine(g_exact, mode="exact").run()
        g_proven = pipeline(fn_ii=fn_ii)
        stats_proven = DataflowEngine(g_proven, mode="fast",
                                      proven_period=period).run()
        assert stats_proven.cycles == stats_exact.cycles
        assert stats_proven.fires == stats_exact.fires
        assert stats_proven.stalls == stats_exact.stalls
        assert collected(g_proven) == collected(g_exact)
        assert stats_proven.ff_advances > 0

    def test_wrong_period_is_safe_just_slower(self):
        g_exact = pipeline()
        stats_exact = DataflowEngine(g_exact, mode="exact").run()
        # True period is 1; any multiple still matches the recurrence,
        # a non-multiple simply never fires the probe.
        for period in (7, 997):
            g = pipeline()
            stats = DataflowEngine(g, mode="fast",
                                   proven_period=period).run()
            assert stats.cycles == stats_exact.cycles
            assert collected(g) == collected(g_exact)

    def test_analyzer_period_feeds_the_engine(self):
        """End to end: prove the period statically, hand it to fast mode."""
        graph = DataflowGraph("chain")
        graph.add(SpecStage("src", outputs=("out",), latency=1))
        graph.add(SpecStage("fn", inputs=("in",), outputs=("out",),
                            ii=2, latency=3))
        graph.add(SpecStage("sink", inputs=("in",)))
        graph.connect("src", "out", "fn", "in", depth=4)
        graph.connect("fn", "out", "sink", "in", depth=4)
        tokens = 500
        report = analyze_graph(graph, tokens)
        proven = report.occupancy.period.cycles
        stats_exact = DataflowEngine(
            build_token_twin(graph, tokens)).run()
        stats_proven = DataflowEngine(
            build_token_twin(graph, tokens), mode="fast",
            proven_period=proven).run()
        assert stats_proven.cycles == stats_exact.cycles
        assert stats_proven.cycles == report.schedule.total_cycles
        assert stats_proven.ff_advances > 0

    def test_probe_skips_most_of_a_long_run(self):
        stats = DataflowEngine(pipeline(5000), mode="fast",
                               proven_period=1).run()
        assert stats.ff_cycles > 4000
        assert stats.ff_advances >= 1


class TestValidation:
    def test_rejects_nonpositive_period(self):
        with pytest.raises(DataflowError, match="proven_period"):
            DataflowEngine(pipeline(), mode="fast", proven_period=0)

    def test_rejects_exact_mode(self):
        with pytest.raises(DataflowError, match="mode='fast'"):
            DataflowEngine(pipeline(), proven_period=4)
