"""Property-based tests of the cycle engine on random pipelines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.engine import DataflowEngine
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.stage import FunctionStage, SinkStage, SourceStage


@st.composite
def random_pipeline(draw):
    n_items = draw(st.integers(1, 120))
    n_stages = draw(st.integers(1, 4))
    latencies = [draw(st.integers(1, 12)) for _ in range(n_stages)]
    iis = [draw(st.integers(1, 3)) for _ in range(n_stages)]
    depths = [draw(st.integers(2, 8)) for _ in range(n_stages + 1)]
    return n_items, latencies, iis, depths


@settings(max_examples=60, deadline=None)
@given(random_pipeline())
def test_pipeline_cycle_bounds_and_correctness(params):
    """For any linear pipeline:

    * results are complete and in order,
    * cycles >= items x max(II) (the slowest stage gates throughput),
    * cycles <= items x max(II) + total latency + slack (no lost cycles).
    """
    n_items, latencies, iis, depths = params
    graph = DataflowGraph("prop")
    graph.add(SourceStage("src", range(n_items)))
    previous = "src"
    for index, (latency, ii) in enumerate(zip(latencies, iis)):
        stage = FunctionStage(f"s{index}", lambda x: x + 1, ii=ii,
                              latency=latency)
        graph.add(stage)
        graph.connect(previous, "out", stage, "in", depth=depths[index])
        previous = stage.name
    sink = graph.add(SinkStage("sink"))
    graph.connect(previous, "out", sink, "in", depth=depths[-1])

    stats = DataflowEngine(graph).run()

    # Functional: every item passed through every +1 stage, in order.
    assert sink.collected == [i + len(latencies) for i in range(n_items)]

    max_ii = max(iis)
    lower = n_items * max_ii - max_ii  # the final interval may not be paid
    upper = (n_items * max_ii + sum(latencies)
             + 3 * (len(latencies) + 2) + max_ii)
    assert lower <= stats.cycles <= upper, (stats.cycles, lower, upper)

    # Throughput bookkeeping: every stage fired exactly n_items times.
    for index in range(len(latencies)):
        assert stats.fires[f"s{index}"] == n_items


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 60), st.integers(1, 4), st.integers(2, 6))
def test_deep_fifo_never_slower(n_items, ii, shallow_depth):
    """Increasing FIFO depth can only help (or not matter)."""

    def build(depth):
        graph = DataflowGraph("d")
        graph.add(SourceStage("src", range(n_items)))
        stage = FunctionStage("f", lambda x: x, ii=ii, latency=5)
        graph.add(stage)
        sink = graph.add(SinkStage("sink"))
        graph.connect("src", "out", stage, "in", depth=depth)
        graph.connect(stage, "out", sink, "in", depth=depth)
        return DataflowEngine(graph).run().cycles

    assert build(shallow_depth * 4) <= build(shallow_depth)
