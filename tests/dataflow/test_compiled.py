"""Units for the batched-execution compiler (:mod:`repro.dataflow.compiled`).

The compiled plan must agree with the schedule DP on levels and timing,
expose the live control state as correctly aligned NumPy vectors, attach
static period hints exactly when the occupancy prover applies, and the
event calendar must bound windows at monitor samples, freeze boundaries
and previewed fault strikes.
"""

import numpy as np
import pytest

from repro.dataflow.compiled import (
    EventCalendar,
    compile_graph,
    period_deltas,
)
from repro.dataflow.engine import DataflowEngine
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.stage import FunctionStage, SinkStage, SourceStage
from repro.faults import FaultPlan, FaultSpec


def pipeline(n_items=50, *, depth=4):
    g = DataflowGraph("p")
    src = g.add(SourceStage("src", range(n_items)))
    fn = g.add(FunctionStage("fn", lambda x: x + 1, latency=4))
    sink = g.add(SinkStage("sink"))
    g.connect(src, "out", fn, "in", depth=depth)
    g.connect(fn, "out", sink, "in", depth=depth)
    return g


class TestCompileGraph:
    def test_levels_follow_the_schedule_dp(self):
        from repro.analyze.schedule import start_cycles

        g = pipeline()
        compiled = compile_graph(g)
        timing = start_cycles(g)
        assert compiled.timing == timing
        for level_no, names in enumerate(compiled.levels):
            for name in names:
                assert timing[name][0] == level_no
        # Every stage appears exactly once across the levels.
        flat = [n for level in compiled.levels for n in level]
        assert sorted(flat) == sorted(s.name for s in g.stages)

    def test_vectors_align_with_order_and_streams(self):
        g = pipeline(depth=6)
        compiled = compile_graph(g)
        assert [s.name for s in compiled.order] \
            == [s.name for s in g.topological_order()]
        for name, i in compiled.stage_index.items():
            stage = g.stage(name)
            assert compiled.ii[i] == stage.ii
            assert compiled.latency[i] == stage.latency
        for name, i in compiled.stream_index.items():
            assert compiled.depths[i] == g.stream(name).depth
        assert compiled.depths.dtype == np.int64

    def test_control_state_tracks_the_live_machine(self):
        g = pipeline()
        compiled = compile_graph(g)
        assert (compiled.occupancy() == 0).all()
        assert (compiled.credits() == compiled.depths).all()
        assert (compiled.pipeline_fill() == 0).all()
        # Tick a few cycles: the vectors follow the machine.
        for cycle in range(5):
            for stage in compiled.order:
                stage.tick(cycle)
        state = compiled.control_state()
        assert (state["occupancy"]
                == [s.occupancy for s in compiled.streams]).all()
        assert (state["credits"] + state["occupancy"]
                == compiled.depths).all()
        assert (state["pipeline_fill"]
                == [s.in_flight for s in compiled.order]).all()

    def test_unit_rate_pipeline_gets_a_static_hint(self):
        compiled = compile_graph(pipeline())
        assert compiled.unit_rate
        assert compiled.period_hint is not None and compiled.period_hint > 0
        assert compiled.stall_free is not None
        assert compiled.min_safe_depths is not None

    def test_non_unit_rate_stage_withholds_the_hint(self):
        g = pipeline()
        g.stage("fn").unit_rate = False
        compiled = compile_graph(g)
        assert not compiled.unit_rate
        assert compiled.period_hint is None
        assert compiled.stall_free is None

    def test_analyze_false_skips_the_prover(self):
        compiled = compile_graph(pipeline(), analyze=False)
        assert compiled.unit_rate
        assert compiled.period_hint is None

    def test_describe_is_json_ready(self):
        import json

        compiled = compile_graph(pipeline())
        payload = compiled.describe()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["stages"] == 3
        assert payload["levels"][0] == ["src"]

    def test_static_hint_matches_the_engine_probe_period(self):
        # The proved horizon is a real recurrence: an engine run seeded
        # with it must batch on the very first probe.
        g = pipeline(300)
        hint = compile_graph(g).period_hint
        stats = DataflowEngine(pipeline(300), mode="exact",
                               batched=True).run()
        assert stats.batched_windows >= 1
        assert hint is not None
        # The committed window is a whole number of proved periods.
        assert stats.batched_cycles % hint == 0


class TestEventCalendar:
    def test_monitor_strides_cap_the_window(self):
        cal = EventCalendar(monitors=[(64, 0)])
        # Starting right after a sample, the next one is 64 cycles out.
        assert cal.cap_cycles(1) == 63
        assert cal.cap_cycles(64) == 0
        cal2 = EventCalendar(monitors=[(64, 0), (48, 5)])
        assert cal2.cap_cycles(10) == min((0 - 10) % 64, (5 - 10) % 48)

    def test_every_cycle_monitors_are_dropped_by_construction(self):
        cal = EventCalendar(monitors=[(1, 0)])
        assert cal.monitors == []
        assert cal.cap_cycles(7) is None

    def test_freeze_boundaries_cap_the_window(self):
        cal = EventCalendar(freeze={"fn": (40, 70)})
        assert cal.boundaries == (40, 70)
        assert cal.cap_cycles(10) == 30
        assert cal.cap_cycles(41) == 29
        assert cal.cap_cycles(71) is None

    def test_unbounded_without_events(self):
        assert EventCalendar().cap_cycles(123) is None

    def test_cap_periods_rounds_down_to_whole_periods(self):
        cal = EventCalendar(monitors=[(100, 99)])
        # 99 cycles free from cycle 0, period 10 -> 9 whole periods.
        assert cal.cap_periods(0, 10, 50, ()) == 9

    def test_fault_preview_caps_at_the_strike_free_prefix(self):
        plan = FaultPlan([FaultSpec(site="fifo", kind="drop", match="s",
                                    probability=1.0, count=None)])
        cal = EventCalendar(plan=plan, hooked=("s",))
        # Every push strikes: zero safe periods at one push per period.
        assert cal.cap_periods(0, 10, 5, [("s", 1)]) == 0

    def test_commit_advances_the_occurrence_counters(self):
        plan = FaultPlan([FaultSpec(site="fifo", kind="drop", match="s",
                                    probability=0.5, count=None)], seed=1)
        scalar = FaultPlan([FaultSpec(site="fifo", kind="drop", match="s",
                                      probability=0.5, count=None)], seed=1)
        cal = EventCalendar(plan=plan, hooked=("s",))
        cal.commit(6, [("s", 2)])  # 12 pushes skipped
        for _ in range(12):
            scalar.draw("fifo", "s")
        # After identical counter advances, future previews agree.
        assert plan.fifo_strike_within("s", 40) \
            == scalar.fifo_strike_within("s", 40)


class TestPeriodDeltas:
    def test_deltas_measure_counter_movement(self):
        g = pipeline()
        compiled = compile_graph(g)
        snap_stage = tuple(
            (s.stats.fires, s.stats.retired, s.stats.input_stalls,
             s.stats.output_stalls, s.stats.ii_waits,
             s.stats.pipeline_full_stalls) for s in compiled.order)
        snap_stream = tuple(
            (s.stats.pushes, s.stats.pops, s.stats.full_stalls,
             s.stats.empty_stalls) for s in compiled.streams)
        for cycle in range(10):
            for stage in compiled.order:
                stage.tick(cycle)
        d_stage, d_stream = period_deltas(
            compiled.order, compiled.streams, (snap_stage, snap_stream))
        assert d_stage.shape == (3, 6)
        assert d_stream.shape == (2, 4)
        src_row = compiled.stage_index["src"]
        assert d_stage[src_row, 0] == compiled.order[src_row].stats.fires
        for name, i in compiled.stream_index.items():
            assert d_stream[i, 0] == g.stream(name).stats.pushes
            assert d_stream[i, 1] == g.stream(name).stats.pops
