"""Tests for the cycle-driven engine."""

import pytest

from repro.dataflow.engine import DataflowEngine
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.stage import FunctionStage, SinkStage, SourceStage
from repro.errors import DataflowError


def pipeline(n_items=50, *, fn_ii=1, fn_latency=4, depth=4):
    g = DataflowGraph("p")
    src = g.add(SourceStage("src", range(n_items)))
    fn = g.add(FunctionStage("fn", lambda x: 2 * x, ii=fn_ii,
                             latency=fn_latency))
    sink = g.add(SinkStage("sink"))
    g.connect(src, "out", fn, "in", depth=depth)
    g.connect(fn, "out", sink, "in", depth=depth)
    return g


class TestExecution:
    def test_results_correct_and_ordered(self):
        g = pipeline(20)
        DataflowEngine(g).run()
        assert g.stage("sink").collected == [2 * i for i in range(20)]

    def test_cycle_count_is_items_plus_fill(self):
        stats = DataflowEngine(pipeline(100, fn_latency=4)).run()
        # II=1: steady state is one item per cycle; fill/drain is bounded by
        # the pipeline depth plus a few stream hops.
        assert 100 <= stats.cycles <= 100 + 15

    def test_ii2_doubles_steady_state(self):
        fast = DataflowEngine(pipeline(100, fn_ii=1)).run()
        slow = DataflowEngine(pipeline(100, fn_ii=2)).run()
        assert slow.cycles == pytest.approx(2 * fast.cycles, rel=0.1)

    def test_throughput_close_to_one(self):
        stats = DataflowEngine(pipeline(200)).run()
        assert stats.throughput("fn") > 0.9

    def test_empty_source_quiesces_immediately(self):
        stats = DataflowEngine(pipeline(0)).run()
        assert stats.fires["fn"] == 0
        assert stats.cycles <= 2


class TestGuards:
    def test_max_cycles_enforced(self):
        g = pipeline(10_000)
        with pytest.raises(DataflowError, match="did not quiesce"):
            DataflowEngine(g, max_cycles=10).run()

    def test_rejects_bad_max_cycles(self):
        with pytest.raises(DataflowError):
            DataflowEngine(pipeline(1), max_cycles=0)

    def test_validates_graph_before_running(self):
        g = DataflowGraph("broken")
        g.add(FunctionStage("fn", lambda x: x))
        with pytest.raises(DataflowError):
            DataflowEngine(g).run()


class TestRunStats:
    def test_fires_recorded_per_stage(self):
        stats = DataflowEngine(pipeline(30)).run()
        assert stats.fires["src"] == 30
        assert stats.fires["fn"] == 30
        assert stats.fires["sink"] == 30

    def test_stall_breakdown_keys(self):
        stats = DataflowEngine(pipeline(10)).run()
        assert set(stats.stalls["fn"]) == {"input", "output", "ii", "pipeline"}

    def test_total_stalls(self):
        stats = DataflowEngine(pipeline(10, fn_ii=2)).run()
        assert stats.total_stalls("fn") > 0

    def test_stream_high_water(self):
        stats = DataflowEngine(pipeline(50, depth=4)).run()
        assert all(0 < v <= 4 for v in stats.stream_high_water.values())

    def test_summary_is_readable(self):
        stats = DataflowEngine(pipeline(10)).run()
        text = stats.summary()
        assert "cycles:" in text and "fn" in text and "throughput" in text

    def test_throughput_empty_run(self):
        from repro.dataflow.engine import RunStats

        assert RunStats(cycles=0).throughput("x") == 0.0


class TestFanOut:
    def test_diamond_topology(self):
        """src -> (a, b) -> sink-ish merge, exercising multi-port stages."""
        from repro.dataflow.stage import Stage

        class Split(Stage):
            input_ports = ("in",)
            output_ports = ("a", "b")

            def fire(self, cycle, inputs):
                (x,) = inputs["in"]
                return {"a": [x], "b": [x + 100]}

        class Merge(Stage):
            input_ports = ("a", "b")
            output_ports = ("out",)

            def fire(self, cycle, inputs):
                return {"out": [inputs["a"][0] + inputs["b"][0]]}

        g = DataflowGraph("diamond")
        g.add(SourceStage("src", range(10)))
        g.add(Split("split"))
        g.add(Merge("merge"))
        g.add(SinkStage("sink"))
        g.connect("src", "out", "split", "in")
        g.connect("split", "a", "merge", "a")
        g.connect("split", "b", "merge", "b")
        g.connect("merge", "out", "sink", "in")
        DataflowEngine(g).run()
        assert g.stage("sink").collected == [2 * i + 100 for i in range(10)]
