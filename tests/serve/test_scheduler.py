"""Fleet scheduler: lifecycle, resharding, recovery, typed failure."""

import math

from repro.errors import WatchdogTimeout
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy
from repro.serve import (AdmissionController, AdmissionError,
                         DeadlineExceededError, Fleet, FleetDownError,
                         FleetScheduler, PoissonLoad, ResultCache,
                         build_arrivals, percentile, run_load)

GRID = dict(nx=6, ny=9, nz=5)


def scheduler(spec="2xu280+1xstratix10", **kwargs):
    return FleetScheduler(Fleet.from_spec(spec), **kwargs)


def small_load(jobs=8, **kwargs):
    kwargs.setdefault("rate_hz", 400.0)
    kwargs.setdefault("exact_fraction", 0.25)
    kwargs.setdefault("distinct_inputs", 4)
    return PoissonLoad(jobs=jobs, seed=1, **GRID, **kwargs)


class TestFaultFree:
    def test_all_jobs_complete(self):
        report = run_load(scheduler(), small_load())
        assert len(report.completed) == 8
        assert not report.failed
        assert report.jobs_per_second > 0

    def test_replay_is_deterministic(self):
        first = run_load(scheduler(), small_load()).to_dict()
        second = run_load(scheduler(), small_load()).to_dict()
        assert first == second

    def test_duplicate_inputs_hit_the_cache(self):
        report = run_load(scheduler(), small_load(jobs=8,
                                                  distinct_inputs=2))
        assert report.counters()["cache_hits"] > 0
        hits = [outcome for outcome in report.completed
                if outcome.result.cache_hit]
        misses = {outcome.result.checksum
                  for outcome in report.completed
                  if not outcome.result.cache_hit}
        for outcome in hits:
            assert outcome.result.device == "cache"
            assert outcome.result.checksum in misses

    def test_exact_tier_carries_cycle_stats(self):
        report = run_load(scheduler(), small_load(exact_fraction=1.0,
                                                  jobs=3))
        for outcome in report.completed:
            if not outcome.result.cache_hit:
                assert outcome.result.stats_cycles > 0

    def test_checksums_are_input_pure(self):
        """Same wind seed => same checksum, whatever lane/tier served it."""
        report = run_load(scheduler(), small_load(jobs=8,
                                                  distinct_inputs=2))
        by_seed = {}
        for outcome in report.completed:
            by_seed.setdefault(outcome.spec.seed, set()).add(
                outcome.result.checksum)
        for sums in by_seed.values():
            assert len(sums) == 1

    def test_cache_can_be_disabled(self):
        report = run_load(scheduler(cache=ResultCache(capacity=0)),
                          small_load(jobs=6, distinct_inputs=2))
        assert report.counters()["cache_hits"] == 0


class TestDeviceLoss:
    PLAN = [FaultSpec("device", "loss", match="u280-0", probability=1.0,
                      count=1)]

    def test_inflight_job_reshards_and_completes_bit_identical(self):
        load = small_load()
        golden = {o.spec.job_id: o.result.checksum
                  for o in run_load(scheduler(), load).completed}
        plan = FaultPlan(self.PLAN, seed=0)
        report = run_load(scheduler(fault_plan=plan), load)
        assert len(report.completed) == 8
        assert report.counters()["reshards"] >= 1
        for outcome in report.completed:
            assert outcome.result.checksum == golden[outcome.spec.job_id]

    def test_lost_lane_serves_nothing_afterwards(self):
        plan = FaultPlan(self.PLAN, seed=0)
        report = run_load(scheduler(fault_plan=plan), small_load(jobs=10))
        lanes = {o.result.device for o in report.completed
                 if not o.result.cache_hit}
        # u280-0 died on its first dispatch: every later job lands on
        # the survivors.
        assert "u280-0" not in lanes
        assert lanes <= {"u280-1", "stratix10-0"}

    def test_loss_trips_breaker_open_permanently(self):
        plan = FaultPlan(self.PLAN, seed=0)
        sched = scheduler(fault_plan=plan)
        run_load(sched, small_load())
        lane = sched.fleet.lane("u280-0")
        assert lane.lost_until == math.inf
        assert lane.breaker.state.value == "open"

    def test_all_lanes_lost_fails_typed(self):
        plan = FaultPlan([FaultSpec("device", "loss", match="*",
                                    probability=1.0, count=None)], seed=0)
        report = run_load(scheduler("2xu280", fault_plan=plan),
                          small_load())
        assert report.completed == []
        for outcome in report.failed:
            assert isinstance(outcome.error,
                              (FleetDownError, AdmissionError))


class TestBlipRecovery:
    def test_breaker_reopens_then_readmits(self):
        plan = FaultPlan([FaultSpec("device", "blip", match="u280-0",
                                    probability=1.0, count=1,
                                    seconds=0.01)], seed=0)
        sched = scheduler(fault_plan=plan)
        report = run_load(sched, small_load(jobs=10, rate_hz=150.0))
        assert not report.failed
        moves = [(t["from"], t["to"])
                 for t in report.breaker_transitions()
                 if t["lane"] == "u280-0"]
        assert ("closed", "open") in moves
        assert ("open", "half-open") in moves
        assert ("half-open", "closed") in moves
        assert sched.fleet.lane("u280-0").lost_until is None

    def test_default_blip_downtime_applies(self):
        plan = FaultPlan([FaultSpec("device", "blip", match="u280-0",
                                    probability=1.0, count=1)], seed=0)
        sched = scheduler(fault_plan=plan, blip_seconds=0.004)
        run_load(sched, small_load(jobs=4))
        lane = sched.fleet.lane("u280-0")
        # Revived by a probe after the default downtime elapsed.
        assert lane.lost_until is None


class TestTransferFaults:
    def test_redrives_accumulate_breaker_evidence(self):
        plan = FaultPlan([FaultSpec("transfer", "fail",
                                    match="u280-0:*", probability=0.9,
                                    count=6)], seed=3)
        sched = scheduler("2xu280", fault_plan=plan)
        report = run_load(sched, small_load(jobs=10, exact_fraction=0.0,
                                            distinct_inputs=10))
        assert not report.failed
        moves = [(t["from"], t["to"])
                 for t in report.breaker_transitions()]
        assert ("closed", "open") in moves
        assert ("half-open", "closed") in moves  # re-admitted


class TestDeadlines:
    def test_impossible_deadline_rejected_at_admission(self):
        report = run_load(scheduler(),
                          small_load(jobs=4, deadline_seconds=1e-9))
        assert report.completed == []
        assert all(isinstance(o.error, AdmissionError)
                   for o in report.failed)

    def test_feasible_deadline_met_fault_free(self):
        report = run_load(scheduler(),
                          small_load(jobs=4, rate_hz=100.0,
                                     deadline_seconds=0.5))
        assert not report.failed

    def test_queued_past_deadline_fails_typed(self):
        # One slow lane, bursty arrivals, deadlines the queue wait blows.
        fleet = Fleet.from_spec("1xstratix10")
        retry = RetryPolicy(max_attempts=3, base_delay=1e-4)
        # Admission estimates optimistically (quote-based), so a
        # moderately tight deadline admits but later jobs time out in
        # the queue behind exact-tier work.
        admission = AdmissionController(
            fleet, retry=retry, overload_backlog_seconds=10.0)
        sched = FleetScheduler(fleet, admission=admission, retry=retry)
        load = small_load(jobs=12, rate_hz=5000.0, exact_fraction=0.0,
                          distinct_inputs=12, deadline_seconds=0.004)
        report = run_load(sched, load)
        assert report.failed
        for outcome in report.failed:
            assert isinstance(outcome.error,
                              (DeadlineExceededError, AdmissionError))


class TestWatchdog:
    def test_global_watchdog_fails_stragglers_typed(self):
        plan = FaultPlan([FaultSpec("device", "blip", match="*",
                                    probability=1.0, count=None,
                                    seconds=0.5)], seed=0)
        sched = scheduler("1xu280", fault_plan=plan,
                          watchdog_seconds=0.05, max_reshards=100)
        report = run_load(sched, small_load(jobs=3, exact_fraction=0.0))
        assert report.completed == []
        assert any(isinstance(o.error, WatchdogTimeout)
                   for o in report.failed)


class TestReportShape:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile([], 0.5) == 0.0

    def test_to_dict_is_json_clean(self):
        import json

        report = run_load(scheduler(), small_load(jobs=4))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["completed"] == 4
        assert payload["jobs_per_second"] > 0

    def test_arrivals_sorted_and_seeded(self):
        one = build_arrivals(small_load())
        two = build_arrivals(small_load())
        assert [t for t, _ in one] == sorted(t for t, _ in one)
        assert [(t, s.job_id, s.mode, s.seed) for t, s in one] == \
               [(t, s.job_id, s.mode, s.seed) for t, s in two]

    def test_tenant_rollup_partitions_jobs(self):
        report = run_load(scheduler(), small_load(jobs=6))
        rollup = report.tenant_rollup()
        assert sum(row["submitted"] for row in rollup.values()) == 6
