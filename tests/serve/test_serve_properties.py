"""Property suite: bit-identical-or-typed-error under arbitrary faults.

The serving invariant from docs/resilience.md, stated as a property:
for ANY generated fault plan (device losses, blips, transfer failures,
in any combination), every job the scheduler admits either completes
with a checksum bit-identical to the fault-free golden run, or fails
with a typed ``ReproError``.  No hangs (the virtual clock raises
``SchedulerStallError`` instead of deadlocking), no silent divergence.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import ReproError  # noqa: E402
from repro.faults.plan import FaultPlan, FaultSpec  # noqa: E402
from repro.serve import (Fleet, FleetScheduler, PoissonLoad,  # noqa: E402
                         run_load)

LANES = ("u280-0", "u280-1", "stratix10-0")


def fault_specs():
    device_loss = st.sampled_from(LANES).map(
        lambda lane: FaultSpec("device", "loss", match=lane,
                               probability=1.0, count=1))
    device_blip = st.tuples(
        st.sampled_from(LANES + ("*",)),
        st.floats(min_value=1e-4, max_value=0.02),
    ).map(lambda t: FaultSpec("device", "blip", match=t[0],
                              probability=0.8, count=1, seconds=t[1]))
    transfer = st.tuples(
        st.sampled_from(LANES),
        st.sampled_from(("h2d", "d2h")),
        st.floats(min_value=0.1, max_value=0.9),
        st.integers(min_value=1, max_value=4),
    ).map(lambda t: FaultSpec("transfer", "fail",
                              match=f"{t[0]}:{t[1]}*",
                              probability=t[2], count=t[3]))
    return st.one_of(device_loss, device_blip, transfer)


def fault_plans():
    return st.tuples(
        st.lists(fault_specs(), min_size=0, max_size=3),
        st.integers(min_value=0, max_value=2**16),
    ).map(lambda t: FaultPlan(t[0], seed=t[1]))


def loads():
    return st.builds(
        PoissonLoad,
        jobs=st.integers(min_value=2, max_value=6),
        rate_hz=st.sampled_from((150.0, 600.0)),
        seed=st.integers(min_value=0, max_value=64),
        nx=st.just(6), ny=st.just(9), nz=st.just(5),
        exact_fraction=st.sampled_from((0.0, 0.5)),
        no_degrade_fraction=st.just(0.25),
        distinct_inputs=st.integers(min_value=1, max_value=3),
    )


def golden_checksums(load):
    report = run_load(FleetScheduler(Fleet.from_spec("2xu280+1xstratix10")),
                      load)
    assert not report.failed, "fault-free golden run must be clean"
    return {o.spec.job_id: o.result.checksum for o in report.completed}


@settings(max_examples=20, deadline=None)
@given(plan=fault_plans(), load=loads())
def test_bit_identical_or_typed_error(plan, load):
    golden = golden_checksums(load)
    faulted = FleetScheduler(Fleet.from_spec("2xu280+1xstratix10"),
                             fault_plan=plan, watchdog_seconds=30.0)
    report = run_load(faulted, load)
    assert len(report.outcomes) == load.jobs
    for outcome in report.outcomes:
        shape = [(s.site, s.kind, s.match) for s in plan.specs]
        if outcome.ok:
            assert outcome.result.checksum == golden[outcome.spec.job_id], (
                f"silent divergence on {outcome.spec.job_id} "
                f"under plan {shape}")
        else:
            assert isinstance(outcome.error, ReproError), (
                f"untyped failure {type(outcome.error).__name__} "
                f"under plan {shape}")


@settings(max_examples=10, deadline=None)
@given(plan=fault_plans(), load=loads())
def test_faulted_runs_replay_deterministically(plan, load):
    def once():
        plan.reset()
        sched = FleetScheduler(Fleet.from_spec("2xu280+1xstratix10"),
                               fault_plan=plan, watchdog_seconds=30.0)
        return run_load(sched, load).to_dict()

    assert once() == once()


@settings(max_examples=10, deadline=None)
@given(seconds=st.floats(min_value=1e-4, max_value=0.05),
       seed=st.integers(min_value=0, max_value=32))
def test_single_blip_never_loses_jobs(seconds, seed):
    plan = FaultPlan([FaultSpec("device", "blip", match="u280-0",
                                probability=1.0, count=1,
                                seconds=seconds)], seed=seed)
    load = PoissonLoad(jobs=4, rate_hz=200.0, seed=seed, nx=6, ny=9, nz=5,
                       exact_fraction=0.0, distinct_inputs=2)
    report = run_load(
        FleetScheduler(Fleet.from_spec("2xu280+1xstratix10"),
                       fault_plan=plan, watchdog_seconds=30.0),
        load)
    assert not report.failed
