"""Scenario-aware serving: pricing, dispatch, cache separation."""

import pytest

from repro.faults.retry import RetryPolicy
from repro.serve import (AdmissionController, AdmissionError, Fleet,
                         FleetScheduler, PoissonLoad, run_load)
from repro.serve.job import JobSpec

GRID = dict(nx=6, ny=9, nz=5)


def scheduler(spec="2xu280+1xstratix10", **kwargs):
    return FleetScheduler(Fleet.from_spec(spec), **kwargs)


class TestSpec:
    def test_unknown_scenario_rejected_at_construction(self):
        with pytest.raises(AdmissionError, match="job j"):
            JobSpec(job_id="j", scenario="no-such-kernel", **GRID)

    def test_plain_jobs_have_unit_flops_scale(self):
        assert JobSpec(job_id="j", **GRID).flops_scale() == 1.0

    def test_scenario_flops_scale_comes_from_the_registry(self):
        import repro.scenarios as scenarios

        spec = JobSpec(job_id="j", scenario="buoyancy", **GRID)
        assert spec.flops_scale() == \
            scenarios.get("buoyancy").flops_scale
        assert spec.flops_scale() != 1.0

    def test_scenario_fields_use_the_scenario_generator(self):
        import numpy as np

        plain = JobSpec(job_id="a", seed=3, **GRID).fields()
        scenario = JobSpec(job_id="b", seed=3, scenario="diffusion",
                           **GRID).fields()
        assert not np.array_equal(plain.u, scenario.u)


class TestPricing:
    def test_quote_equals_bill_for_scenario_jobs(self):
        fleet = Fleet.from_spec("1xu280+1xstratix10+cpu")
        controller = AdmissionController(
            fleet, retry=RetryPolicy(max_attempts=1))
        for scenario in (None, "diffusion", "buoyancy"):
            spec = JobSpec(job_id="j", scenario=scenario, **GRID)
            for mode in ("fast", "exact"):
                for lane in fleet.lanes:
                    quote = controller.quote_for(lane.device, spec, mode)
                    billed, _ = lane.service_seconds(spec, mode)
                    assert billed == pytest.approx(
                        quote.service_seconds, rel=1e-12), \
                        (scenario, mode, lane.name)

    def test_heavier_scenarios_cost_more(self):
        fleet = Fleet.from_spec("1xu280")
        controller = AdmissionController(
            fleet, retry=RetryPolicy(max_attempts=1))
        device = fleet.lanes[0].device

        def service(scenario):
            spec = JobSpec(job_id="j", scenario=scenario, **GRID)
            return controller.quote_for(device, spec, "fast"
                                        ).service_seconds

        # Every registered scenario is lighter than plain advection
        # (flops_scale < 1 for buoyancy/diffusion, == 1 for the PW
        # suite) — admission prices must track that ordering.
        assert service("diffusion") < service(None)
        assert service("buoyancy") < service("diffusion")
        assert service("pw-advection") == service(None)

    def test_quote_scales_kernel_time_not_transfers(self):
        from repro.core.grid import Grid
        from repro.hardware import device_by_name
        from repro.tune.admission import quote_job

        device = device_by_name("u280")
        grid = Grid(**GRID)
        base = quote_job(device, grid, mode="fast")
        heavy = quote_job(device, grid, mode="fast", flops_scale=3.0)
        assert heavy.kernel_seconds == pytest.approx(
            3.0 * base.kernel_seconds)
        assert heavy.transfer_seconds == base.transfer_seconds
        assert heavy.service_seconds == pytest.approx(
            base.service_seconds + 2.0 * base.kernel_seconds)

    def test_quotes_memoise_per_scenario(self):
        fleet = Fleet.from_spec("1xu280")
        controller = AdmissionController(
            fleet, retry=RetryPolicy(max_attempts=1))
        device = fleet.lanes[0].device
        plain = JobSpec(job_id="a", **GRID)
        scenario = JobSpec(job_id="b", scenario="diffusion", **GRID)
        first = controller.quote_for(device, plain, "fast")
        assert controller.quote_for(device, scenario, "fast") is not first
        assert controller.quote_for(device, plain, "fast") is first


class TestServing:
    def load(self, **kwargs):
        kwargs.setdefault("rate_hz", 400.0)
        kwargs.setdefault("distinct_inputs", 4)
        return PoissonLoad(jobs=8, seed=1, **GRID, **kwargs)

    def test_scenario_load_completes(self):
        report = run_load(scheduler(), self.load(scenario="diffusion"))
        assert len(report.completed) == 8
        assert not report.failed
        assert report.load["scenario"] == "diffusion"

    def test_plain_load_omits_the_scenario_key(self):
        report = run_load(scheduler(), self.load())
        assert "scenario" not in report.load

    def test_scenario_results_checksum_against_the_reference(self):
        import repro.scenarios as scenarios
        from repro.serve.job import checksum_sources

        report = run_load(scheduler(), self.load(scenario="diffusion",
                                                 distinct_inputs=1))
        scenario = scenarios.get("diffusion")
        spec = report.completed[0].spec
        expected = checksum_sources(
            scenario.kernel.reference(spec.fields()))
        for outcome in report.completed:
            assert outcome.result.checksum == expected

    def test_exact_tier_bills_scenario_cycles(self):
        report = run_load(scheduler(), self.load(scenario="diffusion",
                                                 exact_fraction=1.0))
        for outcome in report.completed:
            if not outcome.result.cache_hit:
                assert outcome.result.stats_cycles > 0

    def test_scenario_and_plain_runs_never_share_cache_entries(self):
        """Same input bytes, different kernel => different cache rows."""
        sched = scheduler()
        plain = JobSpec(job_id="plain", mode="fast", **GRID)
        # pw-advection serves the same advection numerics through the
        # scenario path; its fingerprint must still be scenario-scoped.
        scenario = JobSpec(job_id="scen", mode="fast",
                           scenario="pw-advection", **GRID)
        outcomes = sched.serve_sync([(0.0, plain), (1.0, scenario)])
        assert all(outcome.ok for outcome in outcomes)
        assert not outcomes[1].result.cache_hit

    def test_replay_is_deterministic(self):
        first = run_load(scheduler(),
                         self.load(scenario="buoyancy")).to_dict()
        second = run_load(scheduler(),
                          self.load(scenario="buoyancy")).to_dict()
        assert first == second
