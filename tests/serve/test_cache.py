"""Result cache: keying, LRU bounds, accounting, fingerprints."""

import pytest

from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.errors import ConfigurationError
from repro.kernel.functional import execute_chunked
from repro.serve import (CacheEntry, ResultCache, checksum_sources,
                         fingerprint_fields)
from repro.tune import serve_config


def entry(tag="a"):
    return CacheEntry(checksum=tag, sources=None)  # sources unused here


class TestFingerprints:
    def test_identical_inputs_collide(self):
        grid = Grid(6, 9, 5)
        one = fingerprint_fields(random_wind(grid, seed=3))
        two = fingerprint_fields(random_wind(grid, seed=3))
        assert one == two

    def test_different_seeds_separate(self):
        grid = Grid(6, 9, 5)
        assert (fingerprint_fields(random_wind(grid, seed=3))
                != fingerprint_fields(random_wind(grid, seed=4)))

    def test_dims_are_part_of_the_key(self):
        one = fingerprint_fields(random_wind(Grid(6, 9, 5), seed=3))
        two = fingerprint_fields(random_wind(Grid(6, 9, 6), seed=3))
        assert one != two

    def test_checksum_is_bit_exact(self):
        grid = Grid(6, 9, 5)
        fields = random_wind(grid, seed=1, magnitude=2.0)
        config = serve_config(grid)
        first = checksum_sources(execute_chunked(config, fields))
        second = checksum_sources(execute_chunked(config, fields))
        assert first == second


class TestLRU:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("fp", "fast") is None
        cache.put("fp", "fast", entry())
        assert cache.get("fp", "fast").checksum == "a"
        assert cache.hits == 1 and cache.misses == 1

    def test_mode_is_part_of_the_key(self):
        cache = ResultCache(capacity=4)
        cache.put("fp", "fast", entry("fast-entry"))
        assert cache.get("fp", "exact") is None
        assert cache.get("fp", "fast").checksum == "fast-entry"

    def test_capacity_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("a", "fast", entry("a"))
        cache.put("b", "fast", entry("b"))
        cache.get("a", "fast")          # refresh a
        cache.put("c", "fast", entry("c"))  # evicts b
        assert cache.get("b", "fast") is None
        assert cache.get("a", "fast") is not None
        assert cache.evictions == 1

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", "fast", entry())
        assert cache.get("a", "fast") is None
        assert len(cache) == 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            ResultCache(capacity=-1)

    def test_to_dict_reports_counters(self):
        cache = ResultCache(capacity=2)
        cache.get("a", "fast")
        cache.put("a", "fast", entry())
        cache.get("a", "fast")
        assert cache.to_dict() == {
            "capacity": 2, "entries": 1, "hits": 1, "misses": 1,
            "evictions": 0,
        }
