"""Circuit breaker state machine: trip, cool down, probe, re-admit."""

import pytest

from repro.errors import ConfigurationError
from repro.serve import BreakerState, CircuitBreaker


def make(threshold=3, cooldown=1.0):
    return CircuitBreaker("u280-0", failure_threshold=threshold,
                          cooldown_seconds=cooldown)


class TestValidation:
    def test_rejects_zero_threshold(self):
        with pytest.raises(ConfigurationError, match="failure_threshold"):
            CircuitBreaker("x", failure_threshold=0)

    def test_rejects_nonpositive_cooldown(self):
        with pytest.raises(ConfigurationError, match="cooldown"):
            CircuitBreaker("x", cooldown_seconds=0.0)


class TestTripping:
    def test_starts_closed(self):
        breaker = make()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows_dispatch()

    def test_opens_at_threshold(self):
        breaker = make(threshold=3)
        breaker.record_failure(1.0, "redrive")
        breaker.record_failure(2.0, "redrive")
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(3.0, "redrive")
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allows_dispatch()

    def test_clean_success_resets_the_streak(self):
        breaker = make(threshold=3)
        breaker.record_failure(1.0, "redrive")
        breaker.record_failure(2.0, "redrive")
        breaker.record_success(3.0)
        breaker.record_failure(4.0, "redrive")
        breaker.record_failure(5.0, "redrive")
        assert breaker.state is BreakerState.CLOSED

    def test_force_open_trips_immediately(self):
        breaker = make()
        breaker.force_open(2.0, "device loss")
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == 2.0


class TestProbeCycle:
    def test_probe_due_after_cooldown(self):
        breaker = make(cooldown=1.0)
        breaker.force_open(5.0, "device blip")
        assert breaker.probe_at() == 6.0

    def test_successful_probe_closes(self):
        breaker = make(cooldown=1.0)
        breaker.force_open(0.0, "device blip")
        breaker.begin_probe(1.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(1.1)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows_dispatch()

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        breaker = make(cooldown=1.0)
        breaker.force_open(0.0, "device blip")
        breaker.begin_probe(1.0)
        breaker.record_failure(1.1, "still down")
        assert breaker.state is BreakerState.OPEN
        assert breaker.probe_at() == pytest.approx(2.1)

    def test_probe_api_guards_state(self):
        breaker = make()
        with pytest.raises(ConfigurationError, match="begin_probe"):
            breaker.begin_probe(0.0)
        with pytest.raises(ConfigurationError, match="probe_at"):
            breaker.probe_at()


class TestTransitionLog:
    def test_full_recovery_sequence_is_recorded(self):
        breaker = make(threshold=2, cooldown=1.0)
        breaker.record_failure(1.0, "redrive")
        breaker.record_failure(2.0, "redrive")
        breaker.begin_probe(3.0)
        breaker.record_success(3.1)
        moves = [(t.frm, t.to) for t in breaker.transitions]
        assert moves == [("closed", "open"), ("open", "half-open"),
                         ("half-open", "closed")]
        assert all(t.lane == "u280-0" for t in breaker.transitions)

    def test_to_dict_round_trips_transitions(self):
        breaker = make(threshold=1)
        breaker.record_failure(1.5, "redrive")
        payload = breaker.to_dict()
        assert payload["state"] == "open"
        assert payload["transitions"][0]["at"] == 1.5
        assert payload["transitions"][0]["to"] == "open"
