"""Virtual clock: deterministic ordering and typed stall detection."""

import asyncio

import pytest

from repro.serve import SchedulerStallError, VirtualClock, run_virtual


class TestSleepOrdering:
    def test_timers_fire_in_time_order(self):
        clock = VirtualClock()
        order = []

        async def sleeper(name, seconds):
            await clock.sleep(seconds)
            order.append((name, clock.now))

        async def main():
            await asyncio.gather(sleeper("late", 3.0), sleeper("early", 1.0),
                                 sleeper("mid", 2.0))

        run_virtual(clock, main())
        assert order == [("early", 1.0), ("mid", 2.0), ("late", 3.0)]

    def test_equal_deadlines_keep_registration_order(self):
        clock = VirtualClock()
        order = []

        async def sleeper(name):
            await clock.sleep(1.0)
            order.append(name)

        async def main():
            await asyncio.gather(sleeper("a"), sleeper("b"), sleeper("c"))

        run_virtual(clock, main())
        assert order == ["a", "b", "c"]

    def test_time_jumps_not_crawls(self):
        clock = VirtualClock()

        async def main():
            await clock.sleep(1e6)  # a million modelled seconds
            return clock.now

        assert run_virtual(clock, main()) == 1e6

    def test_zero_sleep_still_yields(self):
        clock = VirtualClock()

        async def main():
            await clock.sleep(0.0)
            return clock.now

        assert run_virtual(clock, main()) == 0.0

    def test_nested_sleeps_accumulate(self):
        clock = VirtualClock()

        async def main():
            for _ in range(5):
                await clock.sleep(0.5)
            return clock.now

        assert run_virtual(clock, main()) == pytest.approx(2.5)

    def test_returns_coroutine_value(self):
        clock = VirtualClock()

        async def main():
            await clock.sleep(1.0)
            return "done"

        assert run_virtual(clock, main()) == "done"


class TestStallDetection:
    def test_unresolved_future_raises_typed_error(self):
        clock = VirtualClock()

        async def main():
            # Waits on a future nothing will ever resolve: with no
            # timers pending this must surface as a typed stall, not a
            # hang.
            await asyncio.get_running_loop().create_future()

        with pytest.raises(SchedulerStallError, match="stalled"):
            run_virtual(clock, main())

    def test_stall_after_timers_drain(self):
        clock = VirtualClock()

        async def main():
            await clock.sleep(1.0)
            await asyncio.get_running_loop().create_future()

        with pytest.raises(SchedulerStallError):
            run_virtual(clock, main())

    def test_exception_propagates(self):
        clock = VirtualClock()

        async def main():
            await clock.sleep(1.0)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            run_virtual(clock, main())
