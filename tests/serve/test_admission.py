"""Admission control: pricing, the degrade-or-shed ladder, deadlines."""

import pytest

from repro.faults.retry import RetryPolicy
from repro.serve import (AdmissionController, AdmissionError, Fleet, JobSpec,
                         OverloadError)
from repro.tune import quote_job


def controller(fleet=None, **kwargs):
    fleet = fleet or Fleet.from_spec("2xu280")
    kwargs.setdefault("retry", RetryPolicy(max_attempts=3, base_delay=1e-4))
    return AdmissionController(fleet, **kwargs)


class TestQuotes:
    def test_quotes_are_memoised(self):
        ctrl = controller()
        spec = JobSpec(job_id="j")
        device = ctrl.fleet.lanes[0].device
        assert ctrl.quote_for(device, spec, "fast") is ctrl.quote_for(
            device, spec, "fast")

    def test_cpu_quote_has_no_transfers(self):
        from repro.hardware import device_by_name

        quote = quote_job(device_by_name("cpu"), JobSpec(job_id="j").grid())
        assert quote.transfer_seconds == 0.0
        assert quote.service_seconds == quote.kernel_seconds

    def test_exact_quote_at_least_fast(self):
        from repro.hardware import device_by_name

        grid = JobSpec(job_id="j").grid()
        for name in ("u280", "stratix10", "v100"):
            device = device_by_name(name)
            fast = quote_job(device, grid, mode="fast")
            exact = quote_job(device, grid, mode="exact")
            assert exact.service_seconds >= fast.service_seconds

    def test_retry_budget_uses_the_jobs_keyed_stream(self):
        ctrl = controller()
        budget = ctrl.retry_budget_seconds(JobSpec(job_id="job-7"))
        keyed = ctrl.retry.for_job("job-7")
        assert budget == keyed.total_delay(keyed.max_attempts - 1)


class TestLadder:
    def test_admits_when_idle(self):
        ctrl = controller()
        decision = ctrl.decide(JobSpec(job_id="j", mode="fast"), now=0.0,
                               backlog_seconds=0.0, queue_depth=0)
        assert decision.mode_served == "fast"
        assert not decision.degraded
        assert ctrl.admitted == 1

    def test_no_lane_is_typed_admission_error(self):
        ctrl = controller()
        for lane in ctrl.fleet.lanes:
            lane.mark_lost(until=float("inf"))
        with pytest.raises(AdmissionError, match="no dispatchable"):
            ctrl.decide(JobSpec(job_id="j"), now=0.0,
                        backlog_seconds=0.0, queue_depth=0)

    def test_queue_cap_sheds(self):
        ctrl = controller(max_queue_depth=4)
        with pytest.raises(OverloadError, match="hard cap"):
            ctrl.decide(JobSpec(job_id="j"), now=0.0,
                        backlog_seconds=0.0, queue_depth=4)
        assert ctrl.shed == 1

    def test_overload_degrades_willing_exact_jobs(self):
        ctrl = controller(overload_backlog_seconds=0.01)
        decision = ctrl.decide(
            JobSpec(job_id="j", mode="exact", allow_degrade=True),
            now=0.0, backlog_seconds=0.02, queue_depth=1)
        assert decision.mode_served == "fast"
        assert decision.degraded
        assert ctrl.degraded == 1

    def test_overload_sheds_unwilling_exact_jobs(self):
        ctrl = controller(overload_backlog_seconds=0.01)
        with pytest.raises(OverloadError, match="forbids"):
            ctrl.decide(
                JobSpec(job_id="j", mode="exact", allow_degrade=False),
                now=0.0, backlog_seconds=0.02, queue_depth=1)

    def test_overload_still_admits_fast_jobs(self):
        ctrl = controller(overload_backlog_seconds=0.01)
        decision = ctrl.decide(JobSpec(job_id="j", mode="fast"), now=0.0,
                               backlog_seconds=0.02, queue_depth=1)
        assert decision.mode_served == "fast"


class TestDeadlines:
    def test_infeasible_deadline_rejected_typed(self):
        ctrl = controller()
        with pytest.raises(AdmissionError, match="infeasible"):
            ctrl.decide(JobSpec(job_id="j", mode="fast",
                                deadline_seconds=1e-9),
                        now=0.0, backlog_seconds=0.0, queue_depth=0)
        assert ctrl.rejected == 1

    def test_generous_deadline_admitted(self):
        ctrl = controller()
        decision = ctrl.decide(JobSpec(job_id="j", deadline_seconds=10.0),
                               now=0.0, backlog_seconds=0.0, queue_depth=0)
        assert decision.estimate_seconds <= 10.0

    def test_estimate_includes_wait_and_retry_budget(self):
        ctrl = controller()
        spec = JobSpec(job_id="j", mode="fast")
        idle = ctrl.decide(spec, now=0.0, backlog_seconds=0.0,
                           queue_depth=0)
        busy = ctrl.decide(spec, now=0.0,
                           backlog_seconds=0.008, queue_depth=1)
        # Backlog spread over 2 lanes: estimate grows by backlog/2.
        assert busy.estimate_seconds == pytest.approx(
            idle.estimate_seconds + 0.004, rel=1e-6)
        assert idle.estimate_seconds > idle.quote.service_seconds

    def test_tight_deadline_degrades_before_rejecting(self):
        # Find a deadline between the exact and fast estimates.
        ctrl = controller()
        exact_spec = JobSpec(job_id="probe", mode="exact")
        fast = ctrl.best_quote(exact_spec, "fast", ctrl.fleet.lanes)
        exact = ctrl.best_quote(exact_spec, "exact", ctrl.fleet.lanes)
        assert exact.service_seconds > fast.service_seconds
        retries = ctrl.retry_budget_seconds(exact_spec)
        deadline = retries + (fast.service_seconds
                              + exact.service_seconds) / 2.0
        decision = ctrl.decide(
            JobSpec(job_id="probe", mode="exact", allow_degrade=True,
                    deadline_seconds=deadline),
            now=0.0, backlog_seconds=0.0, queue_depth=0)
        assert decision.degraded and decision.mode_served == "fast"

    def test_validation_bounds(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="max_queue_depth"):
            controller(max_queue_depth=0)
        with pytest.raises(ConfigurationError, match="overload_backlog"):
            controller(overload_backlog_seconds=0.0)
