"""Fleet parsing, lane namespacing, and quote==bill consistency."""

import pytest

from repro.core.grid import Grid
from repro.errors import ConfigurationError
from repro.hardware import CPUModel
from repro.runtime.overlap import build_overlapped_schedule
from repro.serve import DEFAULT_FLEET_SPEC, Fleet, JobSpec, parse_fleet_spec
from repro.tune import out_scale_for_mode, quote_job, serve_session


class TestParse:
    def test_counts_expand(self):
        assert parse_fleet_spec("2xu280+1xstratix10") == [
            "u280", "u280", "stratix10"]

    def test_bare_name_counts_one(self):
        assert parse_fleet_spec("u280+cpu") == ["u280", "cpu"]

    def test_rejects_empty_term(self):
        with pytest.raises(ConfigurationError, match="empty term"):
            parse_fleet_spec("u280++cpu")

    def test_rejects_zero_count(self):
        with pytest.raises(ConfigurationError, match="count"):
            parse_fleet_spec("0xu280")

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError, match="bad fleet term"):
            parse_fleet_spec("2*u280")


class TestFleet:
    def test_lanes_get_ordinal_names(self):
        fleet = Fleet.from_spec("2xu280+1xstratix10")
        assert [lane.name for lane in fleet.lanes] == [
            "u280-0", "u280-1", "stratix10-0"]

    def test_default_spec_parses(self):
        fleet = Fleet.from_spec(DEFAULT_FLEET_SPEC)
        assert len(fleet.lanes) == 3

    def test_unknown_device_is_typed(self):
        with pytest.raises(ConfigurationError):
            Fleet.from_spec("2xnotadevice")

    def test_cpu_lane_flagged(self):
        fleet = Fleet.from_spec("cpu")
        assert fleet.lanes[0].is_cpu
        assert isinstance(fleet.lanes[0].device, CPUModel)

    def test_dispatchable_excludes_lost_lanes(self):
        fleet = Fleet.from_spec("2xu280")
        fleet.lanes[0].mark_lost(until=float("inf"))
        names = [lane.name for lane in fleet.dispatchable(now=0.0)]
        assert names == ["u280-1"]

    def test_recoverable_false_only_when_all_lost_forever(self):
        fleet = Fleet.from_spec("2xu280")
        fleet.lanes[0].mark_lost(until=float("inf"))
        assert fleet.recoverable(now=0.0)
        fleet.lanes[1].mark_lost(until=float("inf"))
        assert not fleet.recoverable(now=0.0)

    def test_blip_is_recoverable(self):
        fleet = Fleet.from_spec("1xu280")
        fleet.lanes[0].mark_lost(until=5.0)
        assert fleet.lanes[0].lost(4.0)
        assert not fleet.lanes[0].lost(6.0)
        assert fleet.recoverable(now=0.0)


class TestLaneBilling:
    def test_commands_are_lane_namespaced(self):
        fleet = Fleet.from_spec("2xu280")
        lane = fleet.lanes[1]
        grid = Grid(8, 9, 8)
        session = lane.session_for(grid)
        queue = build_overlapped_schedule(
            session.chunk_work(grid), lane.device.pcie,
            name_prefix=f"{lane.name}:",
        )
        assert all(cmd.name.startswith("u280-1:") for cmd in queue.commands)

    def test_bill_matches_quote_fault_free(self):
        """The admission quote and the lane's bill must agree exactly."""
        fleet = Fleet.from_spec("1xu280+1xstratix10")
        spec = JobSpec(job_id="j", nx=8, ny=9, nz=8)
        for lane in fleet.lanes:
            for mode in ("fast", "exact"):
                quote = quote_job(lane.device, spec.grid(), mode=mode)
                billed, redrives = lane.service_seconds(spec, mode)
                assert billed == pytest.approx(quote.service_seconds,
                                               rel=1e-12)
                assert redrives == 0

    def test_exact_mode_bills_at_least_fast(self):
        fleet = Fleet.from_spec("1xu280")
        spec = JobSpec(job_id="j", nx=8, ny=9, nz=8)
        fast, _ = fleet.lanes[0].service_seconds(spec, "fast")
        exact, _ = fleet.lanes[0].service_seconds(spec, "exact")
        assert exact >= fast

    def test_out_scale_inflates_d2h_bytes(self):
        grid = Grid(8, 9, 8)
        fleet = Fleet.from_spec("1xu280")
        session = serve_session(fleet.lanes[0].device, grid)
        plain = session.chunk_work(grid)
        scaled = session.chunk_work(grid,
                                    out_scale=out_scale_for_mode("exact"))
        for before, after in zip(plain, scaled):
            assert after.out_bytes == pytest.approx(2.0 * before.out_bytes)
            assert after.in_bytes == before.in_bytes

    def test_sessions_are_cached_per_dims(self):
        lane = Fleet.from_spec("1xu280").lanes[0]
        assert lane.session_for(Grid(8, 9, 8)) is lane.session_for(
            Grid(8, 9, 8))
        assert lane.session_for(Grid(8, 9, 8)) is not lane.session_for(
            Grid(6, 9, 5))
