"""Tests for the analytic wind-field generators."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.wind import (
    constant_wind,
    gravity_current,
    random_wind,
    shear_layer,
    thermal_bubble,
)

GENERATORS = [constant_wind, shear_layer, thermal_bubble, gravity_current,
              random_wind]


@pytest.mark.parametrize("generator", GENERATORS)
def test_shapes_and_halos(generator):
    g = Grid(nx=6, ny=5, nz=4)
    f = generator(g)
    assert f.u.shape == g.halo_shape
    assert g.check_halo_consistent(f.u)
    assert g.check_halo_consistent(f.w)


@pytest.mark.parametrize("generator", GENERATORS)
def test_finite_everywhere(generator):
    f = generator(Grid(nx=5, ny=6, nz=7))
    for name in ("u", "v", "w"):
        assert np.all(np.isfinite(getattr(f, name)))


def test_constant_wind_values():
    f = constant_wind(Grid(nx=3, ny=3, nz=3), u0=1.5, v0=-2.5, w0=0.25)
    assert np.all(f.interior("u") == 1.5)
    assert np.all(f.interior("v") == -2.5)
    assert np.all(f.interior("w") == 0.25)


def test_shear_layer_flips_sign_across_midline():
    g = Grid(nx=4, ny=16, nz=4)
    f = shear_layer(g, magnitude=10.0)
    u = f.interior("u")
    assert np.all(u[:, 0, :] < 0)
    assert np.all(u[:, -1, :] > 0)


def test_thermal_bubble_updraft_at_centre():
    g = Grid(nx=16, ny=16, nz=8)
    f = thermal_bubble(g, updraft=2.0)
    w = f.interior("w")
    centre = w[8, 8, 4]
    corner = w[0, 0, 4]
    assert centre > 10 * abs(corner)
    assert centre > 0


def test_thermal_bubble_horizontally_convergent_low_down():
    g = Grid(nx=16, ny=16, nz=8)
    f = thermal_bubble(g, updraft=2.0)
    u = f.interior("u")
    # Left of centre at low level: flow toward centre (positive u).
    assert u[4, 8, 0] > 0
    assert u[12, 8, 0] < 0


def test_gravity_current_jet_reverses_aloft():
    g = Grid(nx=8, ny=4, nz=16)
    f = gravity_current(g, head_speed=8.0, depth=0.2)
    u = f.interior("u")
    assert np.all(u[:, :, 0] > 0)   # low-level jet
    assert np.all(u[:, :, -1] < 0)  # return flow aloft


def test_random_wind_reproducible_and_bounded():
    g = Grid(nx=5, ny=5, nz=5)
    a = random_wind(g, seed=42, magnitude=3.0)
    b = random_wind(g, seed=42, magnitude=3.0)
    c = random_wind(g, seed=43, magnitude=3.0)
    np.testing.assert_array_equal(a.u, b.u)
    assert not np.array_equal(a.u, c.u)
    assert np.abs(a.interior("u")).max() <= 3.0
