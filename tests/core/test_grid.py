"""Tests for the grid geometry and decomposition."""

import numpy as np
import pytest

from repro.core.grid import Grid, GridDecomposition, HALO_DEPTH
from repro.errors import GridError


class TestGridConstruction:
    def test_basic_sizes(self):
        g = Grid(nx=4, ny=5, nz=6)
        assert g.num_cells == 4 * 5 * 6
        assert g.interior_shape == (4, 5, 6)
        assert g.halo_shape == (6, 7, 6)
        assert g.num_columns == 20

    def test_halo_depth_is_one(self):
        assert HALO_DEPTH == 1

    @pytest.mark.parametrize("bad", [0, -1, -100])
    @pytest.mark.parametrize("dim", ["nx", "ny"])
    def test_rejects_nonpositive_dims(self, bad, dim):
        kwargs = dict(nx=4, ny=4, nz=4)
        kwargs[dim] = bad
        with pytest.raises(GridError):
            Grid(**kwargs)

    def test_rejects_nz_below_two(self):
        with pytest.raises(GridError):
            Grid(nx=4, ny=4, nz=1)

    def test_rejects_non_integer_dims(self):
        with pytest.raises(GridError):
            Grid(nx=4.5, ny=4, nz=4)

    def test_rejects_bool_dims(self):
        with pytest.raises(GridError):
            Grid(nx=True, ny=4, nz=4)

    @pytest.mark.parametrize("spacing", ["dx", "dy", "dz"])
    def test_rejects_nonpositive_spacing(self, spacing):
        kwargs = dict(nx=4, ny=4, nz=4)
        kwargs[spacing] = 0.0
        with pytest.raises(GridError):
            Grid(**kwargs)

    def test_rejects_nan_spacing(self):
        with pytest.raises(GridError):
            Grid(nx=4, ny=4, nz=4, dx=float("nan"))

    def test_field_bytes(self):
        g = Grid(nx=2, ny=3, nz=4)
        assert g.field_bytes() == 2 * 3 * 4 * 8
        assert g.field_bytes(itemsize=4) == 2 * 3 * 4 * 4

    def test_with_size_replaces_only_given(self):
        g = Grid(nx=4, ny=5, nz=6, dx=50.0)
        g2 = g.with_size(ny=10)
        assert (g2.nx, g2.ny, g2.nz) == (4, 10, 6)
        assert g2.dx == 50.0


class TestGridAllocation:
    def test_allocate_with_halo(self):
        g = Grid(nx=3, ny=4, nz=5)
        a = g.allocate()
        assert a.shape == g.halo_shape
        assert a.dtype == np.float64
        assert np.all(a == 0.0)

    def test_allocate_interior(self):
        g = Grid(nx=3, ny=4, nz=5)
        assert g.allocate(halo=False).shape == g.interior_shape

    def test_interior_view_is_view(self):
        g = Grid(nx=3, ny=4, nz=5)
        a = g.allocate()
        view = g.interior(a)
        view[...] = 7.0
        assert a[1, 1, 0] == 7.0
        assert a[0, 0, 0] == 0.0  # halo untouched

    def test_interior_rejects_wrong_shape(self):
        g = Grid(nx=3, ny=4, nz=5)
        with pytest.raises(GridError):
            g.interior(np.zeros((3, 4, 5)))


class TestPeriodicHalo:
    def test_wraps_x(self):
        g = Grid(nx=4, ny=3, nz=2)
        a = g.allocate()
        g.interior(a)[...] = np.arange(4 * 3 * 2).reshape(4, 3, 2)
        g.fill_periodic_halo(a)
        np.testing.assert_array_equal(a[0, 1:-1, :], a[-2, 1:-1, :])
        np.testing.assert_array_equal(a[-1, 1:-1, :], a[1, 1:-1, :])

    def test_wraps_y(self):
        g = Grid(nx=4, ny=3, nz=2)
        a = g.allocate()
        g.interior(a)[...] = np.arange(4 * 3 * 2).reshape(4, 3, 2)
        g.fill_periodic_halo(a)
        np.testing.assert_array_equal(a[:, 0, :], a[:, -2, :])
        np.testing.assert_array_equal(a[:, -1, :], a[:, 1, :])

    def test_corners_consistent(self):
        g = Grid(nx=3, ny=3, nz=2)
        a = g.allocate()
        g.interior(a)[...] = np.random.default_rng(0).normal(size=(3, 3, 2))
        g.fill_periodic_halo(a)
        # Corner equals the diagonally-opposite interior corner.
        np.testing.assert_array_equal(a[0, 0, :], a[3, 3, :])

    def test_check_halo_consistent(self):
        g = Grid(nx=3, ny=3, nz=2)
        a = g.allocate()
        g.interior(a)[...] = 1.5
        g.fill_periodic_halo(a)
        assert g.check_halo_consistent(a)
        a[0, 0, 0] = 99.0
        assert not g.check_halo_consistent(a)

    def test_rejects_wrong_shape(self):
        g = Grid(nx=3, ny=3, nz=2)
        with pytest.raises(GridError):
            g.fill_periodic_halo(np.zeros((3, 3, 2)))


class TestFromCells:
    def test_square_horizontal(self):
        g = Grid.from_cells(16 * 1024 * 1024)
        assert g.nx == g.ny == 512
        assert g.nz == 64

    def test_paper_sizes(self):
        from repro.constants import PAPER_GRID_LABELS

        for label, cells in PAPER_GRID_LABELS.items():
            g = Grid.from_cells(cells)
            # Within 1% of the intended cell count.
            assert abs(g.num_cells - cells) / cells < 0.01, label

    def test_rejects_too_small(self):
        with pytest.raises(GridError):
            Grid.from_cells(10, nz=64)


class TestGridDecomposition:
    def test_even_split(self):
        d = GridDecomposition(Grid(nx=12, ny=4, nz=4), parts=4)
        assert d.bounds == ((0, 3), (3, 6), (6, 9), (9, 12))
        assert all(d.cells(p) == 3 * 4 * 4 for p in range(4))

    def test_uneven_split_front_loaded(self):
        d = GridDecomposition(Grid(nx=10, ny=2, nz=2), parts=4)
        widths = [b - a for a, b in d.bounds]
        assert widths == [3, 3, 2, 2]
        assert sum(widths) == 10

    def test_covers_domain_without_overlap(self):
        d = GridDecomposition(Grid(nx=17, ny=2, nz=2), parts=5)
        stops = [b for _, b in d.bounds]
        starts = [a for a, _ in d.bounds]
        assert starts[0] == 0 and stops[-1] == 17
        assert starts[1:] == stops[:-1]

    def test_subgrid_shapes(self):
        g = Grid(nx=10, ny=6, nz=4, dx=25.0)
        d = GridDecomposition(g, parts=3)
        sub = d.subgrid(0)
        assert sub.ny == 6 and sub.nz == 4 and sub.dx == 25.0
        assert sum(d.subgrid(p).nx for p in range(3)) == 10

    def test_max_cells(self):
        d = GridDecomposition(Grid(nx=10, ny=2, nz=2), parts=3)
        assert d.max_cells == 4 * 2 * 2

    def test_rejects_too_many_parts(self):
        with pytest.raises(GridError):
            GridDecomposition(Grid(nx=3, ny=2, nz=2), parts=4)

    def test_rejects_zero_parts(self):
        with pytest.raises(GridError):
            GridDecomposition(Grid(nx=3, ny=2, nz=2), parts=0)
