"""Tests for the PW advection coefficients."""

import numpy as np
import pytest

from repro.core.coefficients import AdvectionCoefficients
from repro.core.grid import Grid
from repro.errors import ConfigurationError


class TestUniform:
    def test_horizontal_quarter_over_spacing(self):
        g = Grid(nx=4, ny=4, nz=8, dx=100.0, dy=50.0)
        c = AdvectionCoefficients.uniform(g)
        assert c.tcx == pytest.approx(0.25 / 100.0)
        assert c.tcy == pytest.approx(0.25 / 50.0)

    def test_vertical_collapse_to_quarter_over_dz(self):
        g = Grid(nx=4, ny=4, nz=8, dz=40.0)
        c = AdvectionCoefficients.uniform(g)
        expected = 0.25 / 40.0
        np.testing.assert_allclose(c.tzc1[1:], expected)
        np.testing.assert_allclose(c.tzc2[1:], expected)
        np.testing.assert_allclose(c.tzd1[1:-1], expected)
        np.testing.assert_allclose(c.tzd2[1:-1], expected)

    def test_boundary_levels_zero(self):
        g = Grid(nx=4, ny=4, nz=8)
        c = AdvectionCoefficients.uniform(g)
        assert c.tzc1[0] == 0.0 and c.tzc2[0] == 0.0
        assert c.tzd1[0] == 0.0 and c.tzd2[0] == 0.0
        assert c.tzd1[-1] == 0.0 and c.tzd2[-1] == 0.0

    def test_length_matches_grid(self):
        g = Grid(nx=4, ny=4, nz=13)
        assert AdvectionCoefficients.uniform(g).nz == 13


class TestIsothermal:
    def test_density_weighting_below_one_above_level(self):
        g = Grid(nx=4, ny=4, nz=32, dz=100.0)
        c = AdvectionCoefficients.isothermal(g)
        # rho decreases with height, so tzc1 (weighted by rho below) exceeds
        # tzc2 (weighted by rho at the level) at every interior level.
        assert np.all(c.tzc1[1:] > c.tzc2[1:] * 0.999)

    def test_reduces_to_uniform_with_huge_scale_height(self):
        g = Grid(nx=4, ny=4, nz=8)
        iso = AdvectionCoefficients.isothermal(g, scale_height=1e12)
        uni = AdvectionCoefficients.uniform(g)
        np.testing.assert_allclose(iso.tzc1, uni.tzc1, rtol=1e-6)
        np.testing.assert_allclose(iso.tzd2, uni.tzd2, rtol=1e-6)

    def test_rejects_bad_parameters(self):
        g = Grid(nx=4, ny=4, nz=8)
        with pytest.raises(ConfigurationError):
            AdvectionCoefficients.isothermal(g, surface_density=0.0)
        with pytest.raises(ConfigurationError):
            AdvectionCoefficients.isothermal(g, scale_height=-1.0)


class TestFromDensity:
    def test_rejects_wrong_profile_length(self):
        g = Grid(nx=4, ny=4, nz=8)
        with pytest.raises(ConfigurationError):
            AdvectionCoefficients.from_density(
                g, rho_w=np.ones(8), rho_n=np.ones(9)
            )

    def test_rejects_nonpositive_density(self):
        g = Grid(nx=4, ny=4, nz=8)
        rho = np.ones(9)
        rho[3] = -1.0
        with pytest.raises(ConfigurationError):
            AdvectionCoefficients.from_density(g, rho_w=rho, rho_n=np.ones(9))

    def test_density_ratio_enters_tzc(self):
        g = Grid(nx=4, ny=4, nz=4, dz=1.0)
        rho_w = np.array([2.0, 1.0, 0.5, 0.25, 0.125])
        rho_n = np.ones(5)
        c = AdvectionCoefficients.from_density(g, rho_w=rho_w, rho_n=rho_n)
        # tzc1[k] = 0.25 * rho_w[k-1] / rho_n[k]
        assert c.tzc1[1] == pytest.approx(0.25 * 2.0)
        assert c.tzc2[1] == pytest.approx(0.25 * 1.0)


class TestValidation:
    def test_mismatched_array_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            AdvectionCoefficients(
                tcx=1.0, tcy=1.0,
                tzc1=np.zeros(4), tzc2=np.zeros(4),
                tzd1=np.zeros(5), tzd2=np.zeros(4),
            )

    def test_non_finite_rejected(self):
        arr = np.zeros(4)
        bad = arr.copy()
        bad[2] = np.inf
        with pytest.raises(ConfigurationError):
            AdvectionCoefficients(tcx=1.0, tcy=1.0, tzc1=bad, tzc2=arr,
                                  tzd1=arr, tzd2=arr)
        with pytest.raises(ConfigurationError):
            AdvectionCoefficients(tcx=float("nan"), tcy=1.0, tzc1=arr,
                                  tzc2=arr, tzd1=arr, tzd2=arr)

    def test_as_dict_returns_copies(self):
        g = Grid(nx=4, ny=4, nz=8)
        c = AdvectionCoefficients.uniform(g)
        d = c.as_dict()
        d["tzc1"][1] = 99.0
        assert c.tzc1[1] != 99.0
