"""Checkpoint I/O and MONC layout conversion."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.io import (
    from_monc_layout,
    load_fields,
    save_fields,
    to_monc_layout,
)
from repro.core.reference import advect_reference
from repro.core.wind import random_wind
from repro.errors import ConfigurationError


class TestMoncLayout:
    def test_roundtrip_bitwise(self):
        arr = np.random.default_rng(0).normal(size=(5, 6, 7))
        np.testing.assert_array_equal(from_monc_layout(to_monc_layout(arr)),
                                      arr)

    def test_monc_is_kji_fortran_order(self):
        arr = np.arange(24, dtype=float).reshape(2, 3, 4)  # (i, j, k)
        monc = to_monc_layout(arr)
        assert monc.shape == (4, 3, 2)  # (k, j, i)
        assert monc.flags["F_CONTIGUOUS"]
        assert monc[1, 2, 0] == arr[0, 2, 1]

    def test_k_contiguity_preserved(self):
        """Both layouts keep k fastest in memory — the kernel streaming
        order survives the conversion."""
        arr = np.zeros((3, 4, 5))
        monc = to_monc_layout(arr)
        # F-order (k, j, i): first axis (k) has the smallest stride.
        assert monc.strides[0] == min(monc.strides)
        assert arr.strides[2] == min(arr.strides)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ConfigurationError):
            to_monc_layout(np.zeros((3, 3)))
        with pytest.raises(ConfigurationError):
            from_monc_layout(np.zeros(5))


class TestCheckpoints:
    def test_roundtrip_interior_bitwise(self, tmp_path):
        grid = Grid(nx=5, ny=6, nz=7, dx=33.0, dz=12.5)
        fields = random_wind(grid, seed=9)
        path = tmp_path / "state.npz"
        save_fields(path, fields)
        loaded = load_fields(path)
        assert loaded.grid == grid
        for name in ("u", "v", "w"):
            np.testing.assert_array_equal(loaded.interior(name),
                                          fields.interior(name))

    def test_loaded_fields_ready_for_advection(self, tmp_path):
        grid = Grid(nx=4, ny=5, nz=6)
        fields = random_wind(grid, seed=10)
        path = tmp_path / "state.npz"
        save_fields(path, fields)
        loaded = load_fields(path)
        # Same periodic halos -> identical sources.
        assert advect_reference(loaded).max_abs_difference(
            advect_reference(fields)) == 0.0

    def test_open_boundary_load(self, tmp_path):
        grid = Grid(nx=3, ny=3, nz=3)
        fields = random_wind(grid, seed=11)
        path = tmp_path / "state.npz"
        save_fields(path, fields)
        loaded = load_fields(path, periodic=False)
        assert np.all(loaded.u[0, :, :] == 0.0)

    def test_version_check(self, tmp_path):
        grid = Grid(nx=3, ny=3, nz=3)
        path = tmp_path / "state.npz"
        save_fields(path, random_wind(grid, seed=0))
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["format_version"] = np.int64(99)
        np.savez(path, **payload)
        with pytest.raises(ConfigurationError):
            load_fields(path)
