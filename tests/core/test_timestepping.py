"""Tests for the forward-in-time integrator."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.timestepping import AdvectionIntegrator
from repro.core.wind import constant_wind, random_wind, thermal_bubble
from repro.errors import ConfigurationError


def make_integrator(dt=0.01, magnitude=0.5, grid=None):
    grid = grid or Grid(nx=6, ny=6, nz=6)
    return AdvectionIntegrator(
        fields=random_wind(grid, seed=2, magnitude=magnitude), dt=dt
    )


class TestStepping:
    def test_step_advances_time_and_count(self):
        integ = make_integrator()
        rec = integ.step()
        assert integ.steps_taken == 1
        assert integ.time == pytest.approx(0.01)
        assert rec.step == 1

    def test_run_many_steps(self):
        integ = make_integrator()
        records = integ.run(5)
        assert len(records) == 5
        assert integ.steps_taken == 5
        assert [r.step for r in records] == [1, 2, 3, 4, 5]

    def test_run_zero_steps(self):
        assert make_integrator().run(0) == []

    def test_run_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            make_integrator().run(-1)

    def test_history_accumulates(self):
        integ = make_integrator()
        integ.run(3)
        assert len(integ.history) == 3

    def test_state_changes(self):
        integ = make_integrator()
        before = integ.fields.u.copy()
        integ.step()
        assert not np.array_equal(before, integ.fields.u)

    def test_halos_valid_after_step(self):
        integ = make_integrator()
        integ.step()
        assert integ.fields.grid.check_halo_consistent(integ.fields.u)

    def test_constant_wind_nearly_steady(self):
        """Constant wind with w=0 has zero tendency; state is unchanged."""
        g = Grid(nx=5, ny=5, nz=5)
        integ = AdvectionIntegrator(
            fields=constant_wind(g, u0=1.0, v0=1.0, w0=0.0), dt=0.1
        )
        before = integ.fields.u.copy()
        integ.step()
        np.testing.assert_array_equal(before, integ.fields.u)


class TestCFL:
    def test_cfl_number_scales_with_dt(self):
        a = make_integrator(dt=0.01)
        b = make_integrator(dt=0.02)
        assert b.cfl_number() == pytest.approx(2 * a.cfl_number())

    def test_cfl_guard_rejects_wild_step(self):
        integ = make_integrator(dt=1e6, magnitude=10.0)
        with pytest.raises(ConfigurationError):
            integ.step()

    def test_cfl_guard_can_be_disabled(self):
        g = Grid(nx=4, ny=4, nz=4)
        integ = AdvectionIntegrator(
            fields=random_wind(g, seed=1, magnitude=10.0), dt=1e5,
            enforce_cfl=False,
        )
        integ.step()  # allowed to blow up
        assert integ.steps_taken == 1

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ConfigurationError):
            make_integrator(dt=0.0)


class TestPluggableBackend:
    def test_custom_advect_backend_used(self):
        g = Grid(nx=4, ny=4, nz=4)
        calls = []

        def fake_advect(fields):
            from repro.core.fields import SourceSet

            calls.append(1)
            return SourceSet.zeros(g)

        integ = AdvectionIntegrator(
            fields=thermal_bubble(g), dt=0.01, advect=fake_advect
        )
        before = integ.fields.u.copy()
        integ.step()
        assert calls == [1]
        np.testing.assert_array_equal(before, integ.fields.u)

    def test_device_backend_matches_reference(self):
        """Integrating via the chunked functional kernel equals the
        reference integrator step for step."""
        from repro.kernel.config import KernelConfig
        from repro.kernel.functional import execute_chunked

        g = Grid(nx=6, ny=9, nz=5)
        config = KernelConfig(grid=g, chunk_width=3)
        ref = AdvectionIntegrator(fields=random_wind(g, seed=4), dt=0.01)
        dev = AdvectionIntegrator(
            fields=random_wind(g, seed=4), dt=0.01,
            advect=lambda f: execute_chunked(config, f),
        )
        for _ in range(3):
            ref.step()
            dev.step()
        np.testing.assert_array_equal(ref.fields.u, dev.fields.u)
        np.testing.assert_array_equal(ref.fields.w, dev.fields.w)
