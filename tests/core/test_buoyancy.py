"""The buoyancy smoothing scheme: specification, reference, kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buoyancy import (
    BUOYANCY_OPS_PER_CELL,
    BUOYANCY_OPS_PER_FIELD,
    BUOYANCY_OPS_PER_TOP_CELL,
    buoyancy_golden,
    buoyancy_reference,
)
from repro.core.grid import Grid
from repro.core.wind import constant_wind, random_wind
from repro.errors import ConfigurationError
from repro.kernel.buoyancy import buoyancy_shiftbuffer


class TestSpecificationEquality:
    @pytest.mark.parametrize("shape", [(3, 3, 3), (5, 6, 4), (2, 2, 8)])
    def test_golden_equals_reference_bitwise(self, shape):
        grid = Grid(nx=shape[0], ny=shape[1], nz=shape[2])
        fields = random_wind(grid, seed=sum(shape))
        assert buoyancy_golden(fields, alpha=0.3).max_abs_difference(
            buoyancy_reference(fields, alpha=0.3)) == 0.0

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000),
           alpha=st.floats(min_value=0.05, max_value=0.5))
    def test_property_bitwise(self, seed, alpha):
        grid = Grid(nx=4, ny=4, nz=5)
        fields = random_wind(grid, seed=seed)
        assert buoyancy_golden(fields, alpha).max_abs_difference(
            buoyancy_reference(fields, alpha)) == 0.0

    def test_shiftbuffer_kernel_matches_reference_bitwise(self):
        grid = Grid(nx=4, ny=5, nz=6)
        fields = random_wind(grid, seed=11, magnitude=3.0)
        expected = buoyancy_reference(fields)
        assert buoyancy_shiftbuffer(fields).max_abs_difference(
            expected) == 0.0


class TestPhysics:
    def test_constant_field_is_invariant(self):
        """The filter weights sum to one: constants pass through."""
        grid = Grid(nx=4, ny=4, nz=5)
        fields = constant_wind(grid, u0=2.0, v0=-1.0, w0=0.5)
        smoothed = buoyancy_reference(fields)
        np.testing.assert_allclose(smoothed.su, 2.0, rtol=1e-12)
        np.testing.assert_allclose(smoothed.sv, -1.0, rtol=1e-12)
        np.testing.assert_allclose(smoothed.sw, 0.5, rtol=1e-12)

    def test_damps_vertical_extrema(self):
        grid = Grid(nx=3, ny=3, nz=7)
        fields = constant_wind(grid, u0=0.0, v0=0.0, w0=0.0)
        fields.interior("u")[1, 1, 3] = 1.0  # isolated vertical spike
        fields.fill_halos()
        smoothed = buoyancy_reference(fields)
        assert smoothed.su[1, 1, 3] < 1.0      # peak decays
        assert smoothed.su[1, 1, 2] > 0.0      # neighbours gain
        assert smoothed.su[1, 1, 4] > 0.0

    def test_full_column_sum_is_conserved(self):
        """Every source cell's weights sum to one across the column
        (including the one-sided rows), so the column integral is
        preserved exactly up to rounding."""
        grid = Grid(nx=4, ny=4, nz=16)
        fields = random_wind(grid, seed=5, magnitude=2.0)
        smoothed = buoyancy_reference(fields)
        raw = fields.u[1:-1, 1:-1, :].sum(axis=2)
        np.testing.assert_allclose(smoothed.su.sum(axis=2), raw,
                                   rtol=1e-10, atol=1e-10)


class TestValidationAndAccounting:
    def test_rejects_bad_weight(self):
        fields = random_wind(Grid(nx=3, ny=3, nz=3), seed=0)
        for alpha in (0.0, -0.1, 0.6):
            with pytest.raises(ConfigurationError):
                buoyancy_reference(fields, alpha=alpha)
            with pytest.raises(ConfigurationError):
                buoyancy_golden(fields, alpha=alpha)
            with pytest.raises(ConfigurationError):
                buoyancy_shiftbuffer(fields, alpha=alpha)

    def test_shiftbuffer_needs_vertical_room(self):
        from repro.core.fields import FieldSet

        too_shallow = FieldSet.zeros(Grid(nx=3, ny=3, nz=2))
        with pytest.raises(ConfigurationError, match="nz"):
            buoyancy_shiftbuffer(too_shallow)

    def test_out_buffer_reuse(self):
        grid = Grid(nx=4, ny=4, nz=4)
        fields = random_wind(grid, seed=0)
        out = buoyancy_reference(fields)
        again = buoyancy_reference(fields, out=out)
        assert again is out

    def test_flop_accounting(self):
        assert BUOYANCY_OPS_PER_FIELD == 5
        assert BUOYANCY_OPS_PER_CELL == 15
        assert BUOYANCY_OPS_PER_TOP_CELL == 9
