"""Tests for FieldSet and SourceSet containers."""

import numpy as np
import pytest

from repro.core.fields import FieldSet, SourceSet
from repro.core.grid import Grid
from repro.errors import GridError


class TestFieldSet:
    def test_zeros_shapes(self):
        g = Grid(nx=3, ny=4, nz=5)
        f = FieldSet.zeros(g)
        for name in ("u", "v", "w"):
            assert getattr(f, name).shape == g.halo_shape

    def test_rejects_wrong_shape(self):
        g = Grid(nx=3, ny=4, nz=5)
        with pytest.raises(GridError):
            FieldSet(g, np.zeros((3, 4, 5)), g.allocate(), g.allocate())

    def test_rejects_wrong_dtype(self):
        g = Grid(nx=3, ny=4, nz=5)
        with pytest.raises(GridError):
            FieldSet(g, g.allocate().astype(np.float32), g.allocate(),
                     g.allocate())

    def test_from_interior_periodic(self):
        g = Grid(nx=3, ny=3, nz=2)
        u = np.arange(18, dtype=float).reshape(3, 3, 2)
        f = FieldSet.from_interior(g, u, u, u)
        # Left x halo equals right-most interior plane.
        np.testing.assert_array_equal(f.u[0, 1:-1, :], u[-1])

    def test_from_interior_open_boundaries(self):
        g = Grid(nx=3, ny=3, nz=2)
        u = np.ones((3, 3, 2))
        f = FieldSet.from_interior(g, u, u, u, periodic=False)
        assert np.all(f.u[0, :, :] == 0.0)

    def test_from_interior_rejects_wrong_shape(self):
        g = Grid(nx=3, ny=3, nz=2)
        with pytest.raises(GridError):
            FieldSet.from_interior(g, np.ones((2, 3, 2)), np.ones((3, 3, 2)),
                                   np.ones((3, 3, 2)))

    def test_interior_accessor(self):
        g = Grid(nx=3, ny=3, nz=2)
        f = FieldSet.zeros(g)
        f.interior("u")[...] = 5.0
        assert f.u[1, 1, 0] == 5.0
        assert f.u[0, 0, 0] == 0.0

    def test_interior_rejects_unknown_name(self):
        f = FieldSet.zeros(Grid(nx=3, ny=3, nz=2))
        with pytest.raises(KeyError):
            f.interior("q")

    def test_momentum_sums_interior_only(self):
        g = Grid(nx=2, ny=2, nz=2)
        f = FieldSet.zeros(g)
        f.interior("u")[...] = 1.0
        f.u[0, 0, 0] = 100.0  # halo junk must not count
        assert f.momentum()[0] == pytest.approx(8.0)

    def test_max_speed(self):
        g = Grid(nx=2, ny=2, nz=2)
        f = FieldSet.zeros(g)
        f.interior("u")[0, 0, 0] = 3.0
        f.interior("v")[0, 0, 0] = 4.0
        assert f.max_speed() == pytest.approx(5.0)

    def test_copy_is_deep(self):
        f = FieldSet.zeros(Grid(nx=2, ny=2, nz=2))
        g = f.copy()
        g.u[1, 1, 0] = 9.0
        assert f.u[1, 1, 0] == 0.0

    def test_nbytes_interior(self):
        g = Grid(nx=2, ny=3, nz=4)
        assert FieldSet.zeros(g).nbytes_interior == 3 * 2 * 3 * 4 * 8


class TestSourceSet:
    def test_zeros_shapes(self):
        g = Grid(nx=3, ny=4, nz=5)
        s = SourceSet.zeros(g)
        assert s.su.shape == g.interior_shape

    def test_rejects_wrong_shape(self):
        g = Grid(nx=3, ny=4, nz=5)
        with pytest.raises(GridError):
            SourceSet(g, np.zeros(g.halo_shape),
                      np.zeros(g.interior_shape), np.zeros(g.interior_shape))

    def test_allclose_and_max_diff(self):
        g = Grid(nx=2, ny=2, nz=2)
        a = SourceSet.zeros(g)
        b = a.copy()
        assert a.allclose(b)
        assert a.max_abs_difference(b) == 0.0
        b.sv[1, 1, 1] = 1e-3
        assert not a.allclose(b)
        assert a.max_abs_difference(b) == pytest.approx(1e-3)

    def test_as_tuple_order(self):
        g = Grid(nx=2, ny=2, nz=2)
        s = SourceSet.zeros(g)
        su, sv, sw = s.as_tuple()
        assert su is s.su and sv is s.sv and sw is s.sw

    def test_nbytes(self):
        g = Grid(nx=2, ny=3, nz=4)
        assert SourceSet.zeros(g).nbytes == 3 * 24 * 8
