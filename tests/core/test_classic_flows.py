"""Classic validation flows: Taylor-Green and solid-body rotation."""

import numpy as np
import pytest

from repro.analysis import divergence, vorticity_z
from repro.core.grid import Grid
from repro.core.reference import advect_reference
from repro.core.wind import solid_body_rotation, taylor_green


class TestTaylorGreen:
    def test_divergence_free(self):
        grid = Grid(nx=32, ny=32, nz=4)
        div = divergence(taylor_green(grid))
        # Centred differences of the sampled analytic field: small but not
        # exactly zero (discretisation of sin/cos products).
        assert np.abs(div).max() < 1e-2 * 2 * np.pi / grid.dx

    def test_vorticity_pattern(self):
        """Vorticity = -4*pi*A/L * sin sin in physical units; its extrema
        sit at the cell corners of the vortex lattice."""
        grid = Grid(nx=32, ny=32, nz=4, dx=1.0, dy=1.0)
        vort = vorticity_z(taylor_green(grid, magnitude=1.0))
        assert vort.min() < 0 < vort.max()
        # Anti-symmetric lattice: zero net circulation.
        assert abs(vort.sum()) < 1e-8 * np.abs(vort).max() * vort.size

    def test_no_vertical_flow(self):
        grid = Grid(nx=16, ny=16, nz=4)
        fields = taylor_green(grid)
        assert np.all(fields.interior("w") == 0.0)
        # With w = 0 everywhere, the W sources vanish identically.
        sources = advect_reference(fields)
        assert np.all(sources.sw == 0.0)

    def test_magnitude_scaling(self):
        grid = Grid(nx=8, ny=8, nz=4)
        a = taylor_green(grid, magnitude=1.0)
        b = taylor_green(grid, magnitude=2.0)
        np.testing.assert_allclose(b.interior("u"), 2 * a.interior("u"))


class TestSolidBodyRotation:
    def test_uniform_vorticity(self):
        grid = Grid(nx=16, ny=16, nz=4, dx=10.0, dy=10.0)
        omega = 1e-3
        vort = vorticity_z(solid_body_rotation(grid, omega=omega))
        # Interior (away from the open-boundary halos): exactly 2*omega.
        np.testing.assert_allclose(vort[2:-2, 2:-2, :], 2 * omega,
                                   rtol=1e-10)

    def test_divergence_free_interior(self):
        grid = Grid(nx=16, ny=16, nz=4)
        div = divergence(solid_body_rotation(grid))
        np.testing.assert_allclose(div[2:-2, 2:-2, :], 0.0, atol=1e-15)

    def test_velocity_grows_with_radius(self):
        grid = Grid(nx=16, ny=16, nz=4, dx=10.0, dy=10.0)
        fields = solid_body_rotation(grid, omega=1e-3)
        speed = np.sqrt(fields.interior("u") ** 2
                        + fields.interior("v") ** 2)
        assert speed[0, 0, 0] > speed[8, 8, 0]  # corner beats centre

    def test_open_halos(self):
        """Linear-in-space flow cannot be periodic; halos stay open."""
        grid = Grid(nx=8, ny=8, nz=4)
        fields = solid_body_rotation(grid)
        assert np.all(fields.u[0, :, :] == 0.0)
