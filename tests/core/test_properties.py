"""Property-based tests (hypothesis) on the advection numerics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet
from repro.core.golden import advect_golden
from repro.core.grid import Grid
from repro.core.reference import advect_reference

# Small dimensions keep the scalar golden path fast.
dims = st.tuples(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=2, max_value=6),
)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
scales = st.floats(min_value=0.125, max_value=8.0, allow_nan=False)


def random_fields(grid: Grid, seed: int, magnitude: float = 2.0) -> FieldSet:
    rng = np.random.default_rng(seed)
    shape = grid.interior_shape
    return FieldSet.from_interior(
        grid,
        rng.uniform(-magnitude, magnitude, shape),
        rng.uniform(-magnitude, magnitude, shape),
        rng.uniform(-magnitude, magnitude, shape),
    )


@settings(max_examples=25, deadline=None)
@given(dims=dims, seed=seeds)
def test_reference_equals_golden(dims, seed):
    """The vectorised kernel matches the scalar specification bit for bit
    on arbitrary grids and random data."""
    grid = Grid(nx=dims[0], ny=dims[1], nz=dims[2])
    fields = random_fields(grid, seed)
    coeffs = AdvectionCoefficients.isothermal(grid)
    assert advect_golden(fields, coeffs).max_abs_difference(
        advect_reference(fields, coeffs)
    ) == 0.0


@settings(max_examples=25, deadline=None)
@given(dims=dims, seed=seeds, scale=scales)
def test_quadratic_homogeneity(dims, seed, scale):
    """advect(a * fields) == a^2 * advect(fields), a structural property of
    the flux-form products (exact for power-of-two scales)."""
    grid = Grid(nx=dims[0], ny=dims[1], nz=dims[2])
    fields = random_fields(grid, seed)
    base = advect_reference(fields)
    scaled = FieldSet(grid, scale * fields.u, scale * fields.v,
                      scale * fields.w)
    result = advect_reference(scaled)
    np.testing.assert_allclose(result.su, scale**2 * base.su,
                               rtol=1e-12, atol=1e-13)
    np.testing.assert_allclose(result.sv, scale**2 * base.sv,
                               rtol=1e-12, atol=1e-13)
    np.testing.assert_allclose(result.sw, scale**2 * base.sw,
                               rtol=1e-12, atol=1e-13)


@settings(max_examples=20, deadline=None)
@given(dims=dims, seed=seeds)
def test_sources_finite_and_bounded(dims, seed):
    """Sources stay finite and bounded by the analytic worst case
    (3 flux pairs, each |coef| * 2 * max|field|^2)."""
    grid = Grid(nx=dims[0], ny=dims[1], nz=dims[2])
    fields = random_fields(grid, seed, magnitude=4.0)
    coeffs = AdvectionCoefficients.uniform(grid)
    sources = advect_reference(fields, coeffs)
    bound = 3 * max(coeffs.tcx, coeffs.tcy, 0.25 / grid.dz) * 4 * 4.0**2
    for arr in sources.as_tuple():
        assert np.all(np.isfinite(arr))
        assert np.abs(arr).max(initial=0.0) <= bound + 1e-12


@settings(max_examples=15, deadline=None)
@given(seed=seeds, shift=st.integers(min_value=0, max_value=7))
def test_translation_equivariance_y(seed, shift):
    """Periodic roll in y commutes with the kernel."""
    grid = Grid(nx=3, ny=8, nz=4)
    fields = random_fields(grid, seed)
    base = advect_reference(fields)
    rolled = FieldSet.from_interior(
        grid,
        np.roll(fields.interior("u"), shift, axis=1),
        np.roll(fields.interior("v"), shift, axis=1),
        np.roll(fields.interior("w"), shift, axis=1),
    )
    result = advect_reference(rolled)
    np.testing.assert_allclose(result.su, np.roll(base.su, shift, axis=1),
                               rtol=0, atol=1e-15)
    np.testing.assert_allclose(result.sv, np.roll(base.sv, shift, axis=1),
                               rtol=0, atol=1e-15)


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_zero_wind_zero_sources(seed):
    """The zero state is a fixed point regardless of coefficients."""
    grid = Grid(nx=4, ny=4, nz=5)
    fields = FieldSet.zeros(grid)
    coeffs = AdvectionCoefficients.isothermal(grid)
    sources = advect_reference(fields, coeffs)
    for arr in sources.as_tuple():
        assert np.all(arr == 0.0)
