"""Correctness of the PW advection numerics: golden vs reference, known
values, boundary behaviour, and conservation."""

import numpy as np
import pytest

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet
from repro.core.golden import advect_cell, advect_golden
from repro.core.grid import Grid
from repro.core.reference import advect_reference
from repro.core.wind import constant_wind, random_wind, shear_layer


@pytest.mark.parametrize("shape", [(3, 3, 3), (6, 7, 5), (4, 9, 8), (1, 1, 4)])
@pytest.mark.parametrize("coeffs_kind", ["uniform", "isothermal"])
def test_golden_equals_reference_bitwise(shape, coeffs_kind):
    """The vectorised kernel is the scalar specification, exactly."""
    g = Grid(nx=shape[0], ny=shape[1], nz=shape[2])
    f = random_wind(g, seed=hash(shape) % 2**32, magnitude=3.0)
    coeffs = (AdvectionCoefficients.uniform(g) if coeffs_kind == "uniform"
              else AdvectionCoefficients.isothermal(g))
    golden = advect_golden(f, coeffs)
    reference = advect_reference(f, coeffs)
    assert golden.max_abs_difference(reference) == 0.0


def test_bottom_level_sources_are_zero(small_fields):
    s = advect_reference(small_fields)
    assert np.all(s.su[:, :, 0] == 0.0)
    assert np.all(s.sv[:, :, 0] == 0.0)
    assert np.all(s.sw[:, :, 0] == 0.0)


def test_top_level_w_source_is_zero(small_fields):
    s = advect_reference(small_fields)
    assert np.all(s.sw[:, :, -1] == 0.0)


def test_constant_wind_horizontal_terms_vanish():
    """With u,v,w constant, the x/y flux differences cancel exactly."""
    g = Grid(nx=5, ny=5, nz=6)
    f = constant_wind(g, u0=3.0, v0=-2.0, w0=0.0)  # w=0: no vertical terms
    s = advect_reference(f, AdvectionCoefficients.uniform(g))
    assert s.max_abs_difference(type(s).zeros(g)) == 0.0


def test_constant_wind_with_w_only_top_asymmetry():
    """With w != 0 the interior still cancels; only the one-sided top
    level of U/V picks up a non-zero source."""
    g = Grid(nx=5, ny=5, nz=6)
    f = constant_wind(g, u0=3.0, v0=-2.0, w0=0.5)
    s = advect_reference(f, AdvectionCoefficients.uniform(g))
    assert np.all(s.su[:, :, 1:-1] == 0.0)
    assert np.all(s.sw == 0.0)
    assert np.all(s.su[:, :, -1] != 0.0)  # one-sided vertical term remains


def test_quadratic_scaling():
    """PW source terms are quadratic in the wind: advect(a*f) == a^2 advect(f)."""
    g = Grid(nx=4, ny=5, nz=6)
    f = random_wind(g, seed=3)
    s1 = advect_reference(f)
    f2 = FieldSet(g, 2.0 * f.u, 2.0 * f.v, 2.0 * f.w)
    s2 = advect_reference(f2)
    np.testing.assert_allclose(s2.su, 4.0 * s1.su, rtol=1e-12, atol=1e-15)
    np.testing.assert_allclose(s2.sw, 4.0 * s1.sw, rtol=1e-12, atol=1e-15)


def test_known_value_single_cell():
    """Hand-computed U source for a tiny configuration."""
    g = Grid(nx=1, ny=1, nz=3, dx=4.0, dy=4.0, dz=4.0)
    c = AdvectionCoefficients.uniform(g)  # all coefficients = 1/16
    f = FieldSet.zeros(g)
    # Fill u with 1 everywhere (periodic halos), v = w = 0.
    f.interior("u")[...] = 1.0
    f.fill_halos()
    su, sv, sw = advect_cell(f.u, f.v, f.w, c, 1, 1, 1, g.nz)
    # x-line: tcx*(1*(1+1) - 1*(1+1)) = 0; y-line: 0 (v=0);
    # z-line: tzc1*1*(0+0) - tzc2*1*(0+0) = 0.
    assert su == 0.0 and sv == 0.0 and sw == 0.0


def test_known_value_sheared_u():
    """U source from a pure x-gradient in u matches the hand expansion."""
    g = Grid(nx=3, ny=1, nz=3, dx=1.0, dy=1.0, dz=1.0)
    c = AdvectionCoefficients.uniform(g)  # tcx = 0.25
    f = FieldSet.zeros(g)
    f.interior("u")[:, 0, :] = np.array([[1.0], [2.0], [3.0]])  # u = 1,2,3 in x
    f.fill_halos()
    # Cell (i=2 halo coord -> interior x=1, u=2), k=1:
    # su = 0.25 * (u[i-1]*(u[i]+u[i-1]) - u[i+1]*(u[i]+u[i+1]))
    #    = 0.25 * (1*(2+1) - 3*(2+3)) = 0.25 * (3 - 15) = -3.0
    su, _, _ = advect_cell(f.u, f.v, f.w, c, 2, 1, 1, g.nz)
    assert su == pytest.approx(-3.0)


def test_momentum_conservation_periodic():
    """Piacsek-Williams conserves the domain sum of each horizontal
    momentum component under periodic boundaries with no vertical flow."""
    g = Grid(nx=8, ny=8, nz=6)
    f = shear_layer(g)
    f.interior("w")[...] = 0.0  # keep the open vertical boundary inert
    f.fill_halos()
    s = advect_reference(f, AdvectionCoefficients.uniform(g))
    # Horizontal flux-form differences telescope around the torus: the
    # domain-summed tendencies vanish (to rounding) on each level.
    for k in range(1, g.nz - 1):
        assert abs(s.su[:, :, k].sum()) < 1e-10
        assert abs(s.sv[:, :, k].sum()) < 1e-10


def test_output_reuse_buffer():
    g = Grid(nx=4, ny=4, nz=4)
    f = random_wind(g, seed=5)
    out = advect_reference(f)
    out2 = advect_reference(f, out=out)
    assert out2 is out
    fresh = advect_reference(f)
    assert out.max_abs_difference(fresh) == 0.0


def test_output_buffer_is_overwritten_not_accumulated():
    g = Grid(nx=4, ny=4, nz=4)
    f = random_wind(g, seed=5)
    out = advect_reference(f)
    first = out.copy()
    advect_reference(f, out=out)
    assert out.max_abs_difference(first) == 0.0


def test_mismatched_coefficients_rejected():
    g = Grid(nx=4, ny=4, nz=4)
    other = AdvectionCoefficients.uniform(Grid(nx=4, ny=4, nz=8))
    f = random_wind(g, seed=1)
    with pytest.raises(ValueError):
        advect_reference(f, other)
    with pytest.raises(ValueError):
        advect_golden(f, other)


def test_wrong_out_grid_rejected():
    from repro.core.fields import SourceSet

    g = Grid(nx=4, ny=4, nz=4)
    f = random_wind(g, seed=1)
    with pytest.raises(ValueError):
        advect_reference(f, out=SourceSet.zeros(Grid(nx=5, ny=4, nz=4)))


def test_translation_equivariance_x():
    """Rolling the periodic wind field in x rolls the sources in x."""
    g = Grid(nx=6, ny=5, nz=4)
    f = random_wind(g, seed=11)
    s = advect_reference(f)
    rolled = FieldSet.from_interior(
        g,
        np.roll(f.interior("u"), 2, axis=0),
        np.roll(f.interior("v"), 2, axis=0),
        np.roll(f.interior("w"), 2, axis=0),
    )
    s_rolled = advect_reference(rolled)
    np.testing.assert_allclose(s_rolled.su, np.roll(s.su, 2, axis=0),
                               rtol=0, atol=1e-15)
    np.testing.assert_allclose(s_rolled.sw, np.roll(s.sw, 2, axis=0),
                               rtol=0, atol=1e-15)
