"""Vertically stretched grids (a MONC feature the kernel is agnostic to)."""

import numpy as np
import pytest

from repro.core.coefficients import AdvectionCoefficients
from repro.core.grid import Grid
from repro.core.golden import advect_golden
from repro.core.reference import advect_reference
from repro.core.wind import random_wind
from repro.errors import ConfigurationError


@pytest.fixture
def grid():
    return Grid(nx=4, ny=5, nz=6, dz=50.0)


@pytest.fixture
def stretched(grid):
    # Fine levels near the surface, coarsening upward (typical LES setup).
    dz = np.array([10.0, 15.0, 25.0, 40.0, 60.0, 90.0])
    return AdvectionCoefficients.stretched(grid, dz)


class TestStretchedCoefficients:
    def test_coefficients_follow_spacing(self, stretched):
        # Thinner cells -> larger vertical coefficients.
        inner = stretched.tzc1[1:]
        assert np.all(np.diff(inner) < 0)

    def test_uniform_spacing_reduces_to_uniform_factory(self, grid):
        via_stretched = AdvectionCoefficients.stretched(
            grid, np.full(grid.nz, grid.dz))
        uniform = AdvectionCoefficients.uniform(grid)
        np.testing.assert_allclose(via_stretched.tzc1, uniform.tzc1)
        np.testing.assert_allclose(via_stretched.tzc2, uniform.tzc2)
        np.testing.assert_allclose(via_stretched.tzd1, uniform.tzd1)
        np.testing.assert_allclose(via_stretched.tzd2, uniform.tzd2)

    def test_boundary_zeros_survive(self, stretched):
        assert stretched.tzc1[0] == 0.0
        assert stretched.tzd1[0] == 0.0 and stretched.tzd1[-1] == 0.0

    def test_density_weighting_composes(self, grid):
        dz = np.full(grid.nz, grid.dz)
        rho = np.exp(-np.arange(grid.nz + 1) * 0.1)
        both = AdvectionCoefficients.stretched(grid, dz, rho_w=rho,
                                               rho_n=np.ones(grid.nz + 1))
        assert both.tzc1[2] != both.tzc2[2]  # density ratio visible

    def test_validation(self, grid):
        with pytest.raises(ConfigurationError):
            AdvectionCoefficients.stretched(grid, np.ones(grid.nz - 1))
        bad = np.full(grid.nz, 10.0)
        bad[3] = -1.0
        with pytest.raises(ConfigurationError):
            AdvectionCoefficients.stretched(grid, bad)

    def test_from_density_rejects_nonpositive_rdz(self, grid):
        ones = np.ones(grid.nz + 1)
        with pytest.raises(ConfigurationError):
            AdvectionCoefficients.from_density(grid, rho_w=ones, rho_n=ones,
                                               rdz=-1.0)


class TestStretchedNumerics:
    def test_golden_equals_reference(self, grid, stretched):
        fields = random_wind(grid, seed=7)
        assert advect_golden(fields, stretched).max_abs_difference(
            advect_reference(fields, stretched)) == 0.0

    def test_kernel_paths_agree_on_stretched_grid(self, grid, stretched):
        from repro.kernel.config import KernelConfig
        from repro.kernel.functional import execute_shiftbuffer
        from repro.kernel.simulate import simulate_kernel

        fields = random_wind(grid, seed=8)
        config = KernelConfig(grid=grid, chunk_width=3)
        reference = advect_reference(fields, stretched)
        assert execute_shiftbuffer(config, fields,
                                   stretched).max_abs_difference(
            reference) == 0.0
        assert simulate_kernel(config, fields,
                               stretched).sources.max_abs_difference(
            reference) == 0.0
