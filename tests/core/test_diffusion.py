"""The diffusion scheme: specification, reference, and physics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diffusion import (
    DIFFUSION_OPS_PER_CELL,
    DIFFUSION_OPS_PER_FIELD,
    diffuse_golden,
    diffuse_reference,
)
from repro.core.fields import FieldSet
from repro.core.grid import Grid
from repro.core.wind import constant_wind, random_wind, thermal_bubble
from repro.errors import ConfigurationError


class TestSpecificationEquality:
    @pytest.mark.parametrize("shape", [(3, 3, 3), (5, 6, 4), (2, 2, 8)])
    def test_golden_equals_reference_bitwise(self, shape):
        grid = Grid(nx=shape[0], ny=shape[1], nz=shape[2],
                    dx=30.0, dy=45.0, dz=20.0)
        fields = random_wind(grid, seed=sum(shape))
        assert diffuse_golden(fields, nu=7.5).max_abs_difference(
            diffuse_reference(fields, nu=7.5)) == 0.0

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000),
           nu=st.floats(min_value=0.0, max_value=100.0))
    def test_property_bitwise(self, seed, nu):
        grid = Grid(nx=4, ny=4, nz=4)
        fields = random_wind(grid, seed=seed)
        assert diffuse_golden(fields, nu).max_abs_difference(
            diffuse_reference(fields, nu)) == 0.0


class TestPhysics:
    def test_constant_field_no_diffusion(self):
        grid = Grid(nx=5, ny=5, nz=5)
        sources = diffuse_reference(constant_wind(grid), nu=10.0)
        for arr in sources.as_tuple():
            np.testing.assert_allclose(arr, 0.0, atol=1e-12)

    def test_zero_viscosity_zero_sources(self):
        grid = Grid(nx=4, ny=4, nz=4)
        sources = diffuse_reference(thermal_bubble(grid), nu=0.0)
        for arr in sources.as_tuple():
            assert np.all(arr == 0.0)

    def test_linear_in_viscosity(self):
        grid = Grid(nx=4, ny=5, nz=4)
        fields = random_wind(grid, seed=1)
        one = diffuse_reference(fields, nu=1.0)
        four = diffuse_reference(fields, nu=4.0)
        np.testing.assert_allclose(four.su, 4.0 * one.su, rtol=1e-12)

    def test_smooths_extrema(self):
        """The source opposes local extrema: negative at a maximum."""
        grid = Grid(nx=5, ny=5, nz=5)
        fields = FieldSet.zeros(grid)
        fields.interior("u")[2, 2, 2] = 1.0  # isolated peak
        fields.fill_halos()
        sources = diffuse_reference(fields, nu=1.0)
        assert sources.su[2, 2, 2] < 0.0       # peak decays
        assert sources.su[1, 2, 2] > 0.0       # neighbours gain

    def test_dissipates_kinetic_energy(self):
        """Explicit diffusion stepping reduces total KE."""
        from repro.analysis import kinetic_energy
        from repro.core.timestepping import AdvectionIntegrator

        grid = Grid(nx=8, ny=8, nz=8)
        integ = AdvectionIntegrator(
            fields=thermal_bubble(grid), dt=0.5,
            advect=lambda f: diffuse_reference(f, nu=50.0))
        before = kinetic_energy(integ.fields)
        integ.run(5)
        assert kinetic_energy(integ.fields) < before

    def test_conserves_momentum_periodic_interior(self):
        """Zero-flux vertical + periodic horizontal: the domain sum of
        each component's source vanishes."""
        grid = Grid(nx=6, ny=6, nz=6)
        fields = random_wind(grid, seed=3)
        sources = diffuse_reference(fields, nu=2.0)
        for arr in sources.as_tuple():
            assert abs(arr.sum()) < 1e-9


class TestValidationAndAccounting:
    def test_rejects_negative_viscosity(self):
        fields = random_wind(Grid(nx=3, ny=3, nz=3), seed=0)
        with pytest.raises(ConfigurationError):
            diffuse_reference(fields, nu=-1.0)
        with pytest.raises(ConfigurationError):
            diffuse_golden(fields, nu=-1.0)

    def test_out_buffer_reuse(self):
        grid = Grid(nx=4, ny=4, nz=4)
        fields = random_wind(grid, seed=0)
        out = diffuse_reference(fields)
        again = diffuse_reference(fields, out=out)
        assert again is out

    def test_flop_accounting(self):
        assert DIFFUSION_OPS_PER_FIELD == 15
        assert DIFFUSION_OPS_PER_CELL == 45
