"""FLOP accounting: must reproduce the paper's arithmetic exactly."""

import pytest

from repro import constants
from repro.core.flops import (
    cell_flops,
    column_flops,
    field_flops,
    grid_flops,
    strict_cell_flops,
    strict_grid_flops,
)
from repro.core.grid import Grid


class TestPaperNumbers:
    def test_21_ops_per_field(self):
        assert field_flops(field="u") == 21
        assert field_flops(field="v") == 21
        assert field_flops(field="w") == 21

    def test_63_ops_per_cell(self):
        assert cell_flops() == 63

    def test_55_ops_at_column_top(self):
        assert cell_flops(top=True) == 55

    def test_top_saving_only_u_and_v(self):
        assert field_flops(top=True, field="u") == 17
        assert field_flops(top=True, field="v") == 17
        assert field_flops(top=True, field="w") == 21

    def test_line_breakdown_sums_to_21(self):
        assert (constants.OPS_X_LINE + constants.OPS_Y_LINE
                + constants.OPS_Z_LINE) == constants.OPS_PER_FIELD

    def test_average_ops_per_cycle_default_column(self):
        # (63*63 + 55) / 64 = 62.875 -> the paper's 18.86/25.02 GFLOPS.
        assert constants.average_ops_per_cycle(64) == pytest.approx(62.875)

    def test_theoretical_gflops_alveo(self):
        assert constants.average_ops_per_cycle() * 300e6 / 1e9 == pytest.approx(
            18.86, abs=0.005
        )

    def test_theoretical_gflops_stratix(self):
        assert constants.average_ops_per_cycle() * 398e6 / 1e9 == pytest.approx(
            25.02, abs=0.005
        )


class TestColumnAndGrid:
    def test_column_flops(self):
        assert column_flops(64) == 63 * 63 + 55

    def test_column_rejects_short(self):
        with pytest.raises(ValueError):
            column_flops(1)

    def test_grid_flops(self):
        g = Grid(nx=2, ny=3, nz=4)
        assert grid_flops(g) == 6 * (3 * 63 + 55)

    def test_field_flops_rejects_unknown(self):
        with pytest.raises(ValueError):
            field_flops(field="t")


class TestStrictConvention:
    def test_bottom_level_zero(self):
        assert strict_cell_flops(0, 8) == 0

    def test_interior_full(self):
        assert strict_cell_flops(3, 8) == 63

    def test_top_drops_w_entirely(self):
        # U and V one-sided (17 each), no W -> 34.
        assert strict_cell_flops(7, 8) == 34

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            strict_cell_flops(8, 8)
        with pytest.raises(ValueError):
            strict_cell_flops(-1, 8)

    def test_strict_below_paper_convention(self):
        g = Grid(nx=4, ny=4, nz=16)
        assert strict_grid_flops(g) < grid_flops(g)

    def test_strict_grid_value(self):
        g = Grid(nx=1, ny=1, nz=4)
        # k=0: 0; k=1,2: 63 each; k=3 (top): 34.
        assert strict_grid_flops(g) == 63 * 2 + 34
