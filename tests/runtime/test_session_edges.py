"""Session edge cases and misconfiguration paths."""

import pytest

from repro.core.grid import Grid
from repro.errors import ConfigurationError
from repro.hardware import ALVEO_U280, STRATIX10_GX2800
from repro.kernel.config import KernelConfig
from repro.runtime.session import AdvectionSession


@pytest.fixture
def grid():
    return Grid.from_cells(16 * 1024 * 1024)


class TestMemoryOverrides:
    def test_invalid_memory_override_rejected_at_run(self, grid):
        session = AdvectionSession(STRATIX10_GX2800, KernelConfig(grid=grid),
                                   memory="hbm2")  # Stratix has no HBM
        with pytest.raises(ConfigurationError):
            session.run(grid, overlapped=True)

    def test_explicit_kernel_count_respected(self, grid):
        session = AdvectionSession(ALVEO_U280, KernelConfig(grid=grid),
                                   num_kernels=2)
        assert session.run(grid, overlapped=True).num_kernels == 2

    def test_zero_kernel_count_rejected(self, grid):
        with pytest.raises(ConfigurationError):
            AdvectionSession(ALVEO_U280, KernelConfig(grid=grid),
                             num_kernels=0)


class TestChunkingEdges:
    def test_single_chunk_equals_sequential_kernel_time(self, grid):
        """x_chunks=1 still overlaps nothing inside the run but uses the
        streamed transfer regime (bulk registration)."""
        session = AdvectionSession(ALVEO_U280, KernelConfig(grid=grid),
                                   x_chunks=1)
        result = session.run(grid, overlapped=True)
        schedule = result.schedule
        assert schedule.overlap_seconds("pcie_h2d", "kernel") == 0.0

    def test_chunks_capped_by_domain(self):
        """A tiny domain cannot be cut into more chunks than half its
        planes."""
        grid = Grid(nx=8, ny=64, nz=64)
        session = AdvectionSession(ALVEO_U280, KernelConfig(grid=grid),
                                   x_chunks=1000)
        result = session.run(grid, overlapped=True)
        kernels = [c for c in result.schedule.timeline
                   if c[1] == "kernel"]
        assert len(kernels) == 4  # nx // 2

    def test_tiny_grid_runs(self):
        grid = Grid(nx=4, ny=4, nz=4)
        session = AdvectionSession(ALVEO_U280, KernelConfig(grid=grid))
        result = session.run(grid, overlapped=True)
        assert result.gflops > 0


class TestResultBookkeeping:
    def test_memory_recorded_matches_selection(self, grid):
        from repro.constants import PAPER_GRID_LABELS

        big = Grid.from_cells(PAPER_GRID_LABELS["268M"])
        session = AdvectionSession(ALVEO_U280, KernelConfig(grid=big))
        result = session.run(big, overlapped=True)
        assert result.memory == "ddr"
        assert result.average_watts > AdvectionSession(
            ALVEO_U280, KernelConfig(grid=grid)).run(
                grid, overlapped=True).average_watts

    def test_overlapped_flag_recorded(self, grid):
        session = AdvectionSession(ALVEO_U280, KernelConfig(grid=grid))
        assert session.run(grid, overlapped=True).overlapped
        assert not session.run(grid, overlapped=False).overlapped
