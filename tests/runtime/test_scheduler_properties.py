"""Property-based tests of the discrete-event scheduler.

Random command DAGs must satisfy the structural invariants of list
scheduling: no resource double-booking, dependency ordering respected,
the makespan bounded below by both the critical path and each resource's
busy time, and bounded above by the fully-serialised sum.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.event import Command
from repro.runtime.queue import CommandQueue
from repro.runtime.simulator import simulate_schedule

RESOURCES = ("pcie_h2d", "kernel", "pcie_d2h")


@st.composite
def random_dag(draw):
    """A random command list; each command may wait on earlier ones."""
    n = draw(st.integers(min_value=1, max_value=14))
    commands: list[Command] = []
    for index in range(n):
        duration = draw(st.floats(min_value=0.001, max_value=1.0))
        resource = draw(st.sampled_from(RESOURCES))
        wait_indices = []
        if commands:
            count = draw(st.integers(min_value=0,
                                     max_value=min(2, len(commands))))
            wait_indices = draw(st.lists(
                st.integers(0, len(commands) - 1),
                min_size=count, max_size=count, unique=True))
        command = Command(
            f"c{index}", resource, duration,
            wait_for=[commands[i].event for i in wait_indices],
        )
        commands.append(command)
    return commands


def critical_path(commands: list[Command]) -> float:
    """Longest dependency chain (ignoring resource contention)."""
    finish: dict[str, float] = {}
    for command in commands:  # commands are in topological (creation) order
        start = max((finish[e.name] for e in command.wait_for), default=0.0)
        finish[command.event.name] = start + command.duration
    return max(finish.values(), default=0.0)


@settings(max_examples=80, deadline=None)
@given(random_dag())
def test_schedule_invariants(commands):
    queue = CommandQueue()
    for command in commands:
        queue.enqueue(command)
    result = simulate_schedule(queue)

    # Every command ran, start/end consistent.
    for command in commands:
        assert command.start is not None and command.end is not None
        assert command.end == command.start + command.duration
        for event in command.wait_for:
            assert command.start >= event.time - 1e-12

    # No resource double-booking.
    for resource in RESOURCES:
        spans = sorted(
            (c.start, c.end) for c in commands if c.resource == resource
        )
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert s2 >= e1 - 1e-12

    # Makespan bounds.
    total = sum(c.duration for c in commands)
    assert result.makespan <= total + 1e-9
    assert result.makespan >= critical_path(commands) - 1e-9
    for resource, busy in result.busy.items():
        assert result.makespan >= busy - 1e-9

    # Busy accounting is exact.
    for resource in RESOURCES:
        expected = sum(c.duration for c in commands
                       if c.resource == resource)
        assert abs(result.busy.get(resource, 0.0) - expected) < 1e-9
