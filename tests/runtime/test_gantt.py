"""ASCII Gantt rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.event import Command
from repro.runtime.gantt import render_gantt
from repro.runtime.queue import CommandQueue
from repro.runtime.simulator import ScheduleResult, simulate_schedule


def simple_schedule():
    q = CommandQueue()
    a = Command("a", "kernel", 1.0)
    q.enqueue(a)
    q.enqueue(Command("b", "pcie_h2d", 2.0))
    q.enqueue(Command("c", "kernel", 1.0, wait_for=[a.event]))
    return simulate_schedule(q)


class TestRendering:
    def test_one_row_per_resource(self):
        out = render_gantt(simple_schedule())
        lines = out.splitlines()
        assert len(lines) == 3  # heading + 2 resources
        assert any("kernel" in line for line in lines)
        assert any("pcie_h2d" in line for line in lines)

    def test_busy_resource_fully_hatched(self):
        out = render_gantt(simple_schedule(), width=40)
        for line in out.splitlines():
            if "pcie_h2d" in line:
                bar = line.split("|")[1]
                assert bar.count("#") == pytest.approx(40, abs=2)
                assert "100% busy" in line

    def test_title_and_makespan_in_heading(self):
        out = render_gantt(simple_schedule(), title="demo")
        assert out.splitlines()[0].startswith("demo")
        assert "makespan" in out.splitlines()[0]

    def test_custom_width(self):
        out = render_gantt(simple_schedule(), width=20)
        bar = out.splitlines()[1].split("|")[1]
        assert len(bar) == 20

    def test_rejects_small_width(self):
        with pytest.raises(ConfigurationError):
            render_gantt(simple_schedule(), width=5)

    def test_rejects_empty_schedule(self):
        with pytest.raises(ConfigurationError):
            render_gantt(ScheduleResult(makespan=0.0))

    def test_session_schedule_renders(self):
        from repro.core.grid import Grid
        from repro.hardware import ALVEO_U280
        from repro.kernel.config import KernelConfig
        from repro.runtime.session import AdvectionSession

        grid = Grid.from_cells(16 * 1024 * 1024)
        session = AdvectionSession(ALVEO_U280, KernelConfig(grid=grid),
                                   x_chunks=4)
        result = session.run(grid, overlapped=True)
        out = render_gantt(result.schedule, title="overlapped")
        assert "pcie_h2d" in out and "pcie_d2h" in out and "kernel" in out
