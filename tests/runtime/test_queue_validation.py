"""Property tests for CommandQueue.validate().

The queue must reject, before any timing is computed, the two schedule
shapes the simulator could never complete: waits on events no enqueued
command produces, and dependency cycles (explicit event edges combined
with the implicit per-resource in-order edges).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.runtime.event import Command, Event
from repro.runtime.queue import CommandQueue
from repro.runtime.simulator import simulate_schedule

RESOURCES = ("pcie_h2d", "kernel", "pcie_d2h")


@st.composite
def valid_queue(draw):
    """A random well-formed queue: waits only on earlier commands."""
    queue = CommandQueue("prop")
    events = []
    for index in range(draw(st.integers(min_value=1, max_value=12))):
        wait_indices = []
        if events:
            count = draw(st.integers(0, min(2, len(events))))
            wait_indices = draw(st.lists(
                st.integers(0, len(events) - 1),
                min_size=count, max_size=count, unique=True))
        events.append(queue.enqueue(Command(
            f"c{index}", draw(st.sampled_from(RESOURCES)),
            draw(st.floats(min_value=0.001, max_value=1.0)),
            wait_for=[events[i] for i in wait_indices],
        )))
    return queue


class TestValidQueues:
    @settings(max_examples=60, deadline=None)
    @given(valid_queue())
    def test_forward_dags_always_validate(self, queue):
        queue.validate()  # must not raise
        result = simulate_schedule(queue)
        assert result.makespan > 0

    def test_empty_queue_validates(self):
        CommandQueue().validate()


class TestPhantomEvents:
    @settings(max_examples=40, deadline=None)
    @given(valid_queue(), st.integers(0, 1_000_000))
    def test_wait_on_never_enqueued_event_raises(self, queue, tag):
        phantom = Event(name=f"phantom{tag}")
        queue.enqueue(Command("waiter", "kernel", 0.1,
                              wait_for=[phantom]))
        with pytest.raises(ScheduleError, match="produces"):
            queue.validate()
        with pytest.raises(ScheduleError):
            simulate_schedule(queue)

    def test_wait_on_unenqueued_command_event_raises(self):
        orphan = Command("orphan", "kernel", 0.1)  # never enqueued
        queue = CommandQueue()
        queue.enqueue(Command("waiter", "kernel", 0.1,
                              wait_for=[orphan.event]))
        with pytest.raises(ScheduleError, match="produces"):
            queue.validate()

    def test_already_complete_foreign_event_is_fine(self):
        done = Event(name="earlier.done", time=1.0)
        queue = CommandQueue()
        queue.enqueue(Command("waiter", "kernel", 0.1, wait_for=[done]))
        queue.validate()  # satisfied before this queue starts


class TestCycles:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=2, max_value=10))
    def test_event_ring_always_deadlocks(self, n):
        """c0 -> c1 -> ... -> c(n-1) -> c0 through pure event edges."""
        commands = [Command(f"c{i}", f"r{i}", 0.1) for i in range(n)]
        for i, command in enumerate(commands):
            command.wait_for.append(commands[(i + 1) % n].event)
        queue = CommandQueue("ring")
        for command in commands:
            queue.enqueue(command)
        with pytest.raises(ScheduleError, match="deadlock"):
            queue.validate()

    def test_resource_order_closes_the_cycle(self):
        """First-on-resource waits on second-on-resource: the implicit
        in-order edge plus the event edge form a two-command cycle."""
        second = Command("second", "kernel", 0.1)
        first = Command("first", "kernel", 0.1,
                        wait_for=[second.event])
        queue = CommandQueue()
        queue.enqueue(first)
        queue.enqueue(second)
        with pytest.raises(ScheduleError, match="deadlock"):
            queue.validate()

    def test_self_wait_deadlocks(self):
        command = Command("selfie", "kernel", 0.1)
        command.wait_for.append(command.event)
        queue = CommandQueue()
        queue.enqueue(command)
        with pytest.raises(ScheduleError, match="deadlock"):
            queue.validate()

    @settings(max_examples=30, deadline=None)
    @given(valid_queue())
    def test_back_edge_onto_dependent_chain_deadlocks(self, queue):
        """Appending a command the head waits on, on the head's resource,
        always creates a cycle through the in-order edge."""
        head = queue.commands[0]
        tail = Command("tail", head.resource, 0.1)
        head.wait_for.append(tail.event)
        queue.enqueue(tail)
        with pytest.raises(ScheduleError, match="deadlock"):
            queue.validate()
