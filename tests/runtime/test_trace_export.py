"""Chrome trace-event export of schedules."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.runtime.event import Command
from repro.runtime.queue import CommandQueue
from repro.runtime.simulator import ScheduleResult, simulate_schedule
from repro.runtime.trace_export import to_trace_events, write_chrome_trace


def sample_schedule():
    q = CommandQueue()
    a = Command("h2d[0]", "pcie_h2d", 0.010)
    q.enqueue(a)
    q.enqueue(Command("kernel[0]", "kernel", 0.005, wait_for=[a.event]))
    return simulate_schedule(q)


class TestTraceEvents:
    def test_complete_events_for_each_command(self):
        events = to_trace_events(sample_schedule())
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"h2d[0]", "kernel[0]"}

    def test_times_in_microseconds(self):
        events = to_trace_events(sample_schedule())
        h2d = next(e for e in events if e["name"] == "h2d[0]")
        assert h2d["ts"] == pytest.approx(0.0)
        assert h2d["dur"] == pytest.approx(10_000.0)

    def test_dependency_visible_in_timestamps(self):
        events = to_trace_events(sample_schedule())
        h2d = next(e for e in events if e["name"] == "h2d[0]")
        kernel = next(e for e in events if e["name"] == "kernel[0]")
        assert kernel["ts"] >= h2d["ts"] + h2d["dur"]

    def test_thread_metadata_per_resource(self):
        events = to_trace_events(sample_schedule())
        threads = [e for e in events if e["name"] == "thread_name"]
        names = {e["args"]["name"] for e in threads}
        assert names == {"pcie_h2d", "kernel"}

    def test_stable_row_order(self):
        events = to_trace_events(sample_schedule())
        by_resource = {
            e["args"]["name"]: e["tid"]
            for e in events if e["name"] == "thread_name"
        }
        assert by_resource["pcie_h2d"] < by_resource["kernel"]

    def test_empty_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            to_trace_events(ScheduleResult(makespan=0.0))

    def test_overlapping_events_share_one_row(self):
        # A hand-built timeline where two transfers overlap on the same
        # resource (e.g. a duplexed link): both must export as complete
        # events on one thread row, durations intact.
        schedule = ScheduleResult(makespan=0.03, timeline=[
            ("h2d[0]", "pcie", 0.000, 0.020),
            ("h2d[1]", "pcie", 0.010, 0.030),
        ])
        events = to_trace_events(schedule)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        assert len({e["tid"] for e in complete}) == 1
        assert len([e for e in events if e["name"] == "thread_name"]) == 1
        first, second = complete
        assert first["ts"] + first["dur"] > second["ts"]  # truly overlap
        assert second["dur"] == pytest.approx(20_000.0)

    def test_non_ascii_resource_names_survive(self, tmp_path):
        schedule = ScheduleResult(makespan=0.01, timeline=[
            ("übertragung", "pcie→h2d", 0.0, 0.01),
        ])
        events = to_trace_events(schedule)
        row = next(e for e in events if e["name"] == "thread_name")
        assert row["args"]["name"] == "pcie→h2d"
        path = write_chrome_trace(schedule, tmp_path / "utf8.json")
        payload = json.loads(path.read_text())
        assert any(e.get("cat") == "pcie→h2d"
                   for e in payload["traceEvents"])

    def test_pid_parameter_tags_every_event(self):
        events = to_trace_events(sample_schedule(), pid=7)
        assert {e["pid"] for e in events} == {7}


class TestFileOutput:
    def test_written_file_is_valid_json(self, tmp_path):
        path = write_chrome_trace(sample_schedule(), tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert payload["displayTimeUnit"] == "ms"

    def test_session_trace_end_to_end(self, tmp_path):
        from repro.core.grid import Grid
        from repro.hardware import ALVEO_U280
        from repro.kernel.config import KernelConfig
        from repro.runtime.session import AdvectionSession

        grid = Grid.from_cells(16 * 1024 * 1024)
        session = AdvectionSession(ALVEO_U280, KernelConfig(grid=grid),
                                   x_chunks=4)
        result = session.run(grid, overlapped=True)
        path = write_chrome_trace(result.schedule, tmp_path / "run.json",
                                  process_name="u280-16M")
        payload = json.loads(path.read_text())
        kernels = [e for e in payload["traceEvents"]
                   if e.get("cat") == "kernel"]
        assert len(kernels) == 4  # one per X chunk
