"""Word-width (precision) effects on the end-to-end model (§V)."""

import pytest

from repro.constants import PAPER_GRID_LABELS
from repro.core.grid import Grid
from repro.errors import CapacityError, ConfigurationError
from repro.hardware import ALVEO_U280, TESLA_V100
from repro.kernel.config import KernelConfig
from repro.runtime.session import AdvectionSession


class TestConfigWordBytes:
    def test_default_is_double(self):
        config = KernelConfig(grid=Grid(nx=4, ny=4, nz=4))
        assert config.word_bytes == 8
        assert config.bytes_per_cell_cycle == 48

    def test_single_precision_halves_traffic_and_buffers(self):
        grid = Grid(nx=4, ny=4, nz=4)
        double = KernelConfig(grid=grid)
        single = KernelConfig(grid=grid, word_bytes=4)
        assert single.bytes_per_cell_cycle == 24
        assert single.buffer_bytes == double.buffer_bytes // 2
        assert single.in_bytes_per_cell == 12

    def test_rejects_odd_widths(self):
        with pytest.raises(ConfigurationError):
            KernelConfig(grid=Grid(nx=4, ny=4, nz=4), word_bytes=3)


class TestEndToEndEffects:
    def test_single_precision_improves_overall(self):
        grid = Grid.from_cells(PAPER_GRID_LABELS["16M"])
        double = AdvectionSession(
            ALVEO_U280, KernelConfig(grid=grid)).run(grid, overlapped=True)
        single = AdvectionSession(
            ALVEO_U280, KernelConfig(grid=grid, word_bytes=4)).run(
                grid, overlapped=True)
        # Transfer-bound kernel: halving bytes roughly doubles GFLOPS.
        assert single.gflops > 1.5 * double.gflops

    def test_single_precision_avoids_ddr_cliff(self):
        """At 268M cells the double-precision working set (12.9 GB)
        overflows HBM2, the single-precision one (6.4 GB) does not — so
        narrow storage removes the paper's Fig. 6 performance cliff."""
        grid = Grid.from_cells(PAPER_GRID_LABELS["268M"])
        double = AdvectionSession(
            ALVEO_U280, KernelConfig(grid=grid)).run(grid, overlapped=True)
        single = AdvectionSession(
            ALVEO_U280, KernelConfig(grid=grid, word_bytes=4)).run(
                grid, overlapped=True)
        assert double.memory == "ddr"
        assert single.memory == "hbm2"
        assert single.gflops > 3 * double.gflops

    def test_single_precision_fits_gpu_at_536m(self):
        """The V100 has no double-precision 536M point (25.8 GB > 16 GB);
        at single precision the working set (12.9 GB) fits."""
        grid = Grid.from_cells(PAPER_GRID_LABELS["536M"])
        double = AdvectionSession(TESLA_V100, KernelConfig(grid=grid))
        with pytest.raises(CapacityError):
            double.run(grid, overlapped=True)
        single = AdvectionSession(
            TESLA_V100, KernelConfig(grid=grid, word_bytes=4))
        result = single.run(grid, overlapped=True)
        assert result.gflops > 0
