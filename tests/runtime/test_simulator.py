"""Discrete-event schedule simulation."""

import pytest

from repro.errors import ScheduleError
from repro.runtime.event import Command, Event
from repro.runtime.queue import CommandQueue
from repro.runtime.simulator import simulate_schedule


class TestSerialResource:
    def test_commands_serialise_on_one_resource(self):
        q = CommandQueue()
        q.enqueue(Command("a", "r", 1.0))
        q.enqueue(Command("b", "r", 2.0))
        result = simulate_schedule(q)
        assert result.makespan == pytest.approx(3.0)
        assert result.busy["r"] == pytest.approx(3.0)

    def test_in_order_per_resource(self):
        q = CommandQueue()
        first = Command("first", "r", 1.0)
        second = Command("second", "r", 1.0)
        q.enqueue(first)
        q.enqueue(second)
        simulate_schedule(q)
        assert first.end <= second.start

    def test_independent_resources_parallel(self):
        q = CommandQueue()
        q.enqueue(Command("a", "r1", 2.0))
        q.enqueue(Command("b", "r2", 2.0))
        result = simulate_schedule(q)
        assert result.makespan == pytest.approx(2.0)


class TestDependencies:
    def test_wait_for_delays_start(self):
        q = CommandQueue()
        a = Command("a", "r1", 2.0)
        q.enqueue(a)
        b = Command("b", "r2", 1.0, wait_for=[a.event])
        q.enqueue(b)
        result = simulate_schedule(q)
        assert b.start == pytest.approx(2.0)
        assert result.makespan == pytest.approx(3.0)

    def test_chain_of_dependencies(self):
        q = CommandQueue()
        prev: Event | None = None
        for i in range(5):
            cmd = Command(f"c{i}", f"r{i % 2}", 1.0,
                          wait_for=[prev] if prev else [])
            q.enqueue(cmd)
            prev = cmd.event
        result = simulate_schedule(q)
        assert result.makespan == pytest.approx(5.0)

    def test_event_times_recorded(self):
        q = CommandQueue()
        a = Command("a", "r", 1.5)
        q.enqueue(a)
        simulate_schedule(q)
        assert a.event.complete
        assert a.event.time == pytest.approx(1.5)

    def test_dependency_cycle_detected(self):
        q = CommandQueue()
        a = Command("a", "r1", 1.0)
        b = Command("b", "r2", 1.0)
        a.wait_for.append(b.event)
        b.wait_for.append(a.event)
        q.enqueue(a)
        q.enqueue(b)
        with pytest.raises(ScheduleError, match="deadlock"):
            simulate_schedule(q)


class TestOverlapMeasurement:
    def test_overlap_seconds(self):
        q = CommandQueue()
        q.enqueue(Command("x", "r1", 4.0))
        q.enqueue(Command("y", "r2", 2.0))
        result = simulate_schedule(q)
        assert result.overlap_seconds("r1", "r2") == pytest.approx(2.0)

    def test_no_overlap_when_dependent(self):
        q = CommandQueue()
        a = Command("a", "r1", 1.0)
        q.enqueue(a)
        q.enqueue(Command("b", "r2", 1.0, wait_for=[a.event]))
        result = simulate_schedule(q)
        assert result.overlap_seconds("r1", "r2") == pytest.approx(0.0)

    def test_utilisation(self):
        q = CommandQueue()
        q.enqueue(Command("a", "r1", 1.0))
        q.enqueue(Command("b", "r2", 4.0))
        result = simulate_schedule(q)
        assert result.utilisation("r1") == pytest.approx(0.25)
        assert result.utilisation("r2") == pytest.approx(1.0)
        assert result.utilisation("ghost") == 0.0

    def test_timeline_sorted_by_completion(self):
        q = CommandQueue()
        q.enqueue(Command("slow", "r1", 5.0))
        q.enqueue(Command("fast", "r2", 1.0))
        result = simulate_schedule(q)
        assert [name for name, *_ in result.timeline] == ["fast", "slow"]


class TestCommandValidation:
    def test_negative_duration_rejected(self):
        with pytest.raises(ScheduleError):
            Command("bad", "r", -1.0)

    def test_requeue_of_executed_command_rejected(self):
        q = CommandQueue()
        cmd = Command("a", "r", 1.0)
        q.enqueue(cmd)
        simulate_schedule(q)
        q2 = CommandQueue()
        with pytest.raises(ScheduleError):
            q2.enqueue(cmd)

    def test_queue_helpers_create_expected_resources(self):
        q = CommandQueue()
        q.enqueue_write("w", 1.0)
        q.enqueue_kernel("k", 1.0)
        q.enqueue_read("r", 1.0)
        resources = [c.resource for c in q.commands]
        assert resources == ["pcie_h2d", "kernel", "pcie_d2h"]
        assert len(q) == 3
