"""The sequential (Fig. 5) and overlapped (Fig. 6) schedule builders."""

import pytest

from repro.errors import ScheduleError
from repro.hardware.pcie import PCIeLink
from repro.runtime.overlap import (
    ChunkWork,
    build_overlapped_schedule,
    build_sequential_schedule,
)
from repro.runtime.simulator import simulate_schedule


@pytest.fixture
def link():
    return PCIeLink(streamed_bandwidth=10e9, synchronous_bandwidth=5e9,
                    latency=0.0)


def chunks(n, in_bytes=1e9, out_bytes=1e9, kernel_seconds=0.05):
    return [ChunkWork(index=i, in_bytes=in_bytes, out_bytes=out_bytes,
                      kernel_seconds=kernel_seconds) for i in range(n)]


class TestSequential:
    def test_everything_serialises(self, link):
        q = build_sequential_schedule(5e9, 5e9, 0.5, link)
        result = simulate_schedule(q)
        # 1s in + 0.5 kernel + 1s out at the synchronous 5 GB/s rate.
        assert result.makespan == pytest.approx(2.5)

    def test_no_transfer_compute_overlap(self, link):
        q = build_sequential_schedule(5e9, 5e9, 0.5, link)
        result = simulate_schedule(q)
        assert result.overlap_seconds("pcie", "kernel") == pytest.approx(0.0)

    def test_uses_synchronous_bandwidth(self, link):
        q = build_sequential_schedule(5e9, 0.0, 0.0, link)
        result = simulate_schedule(q)
        assert result.makespan == pytest.approx(1.0)  # 5 GB at 5 GB/s


class TestOverlapped:
    def test_transfer_hidden_behind_compute(self, link):
        """With kernel-dominated chunks the makespan approaches the sum of
        kernel times plus one transfer edge."""
        work = chunks(8, in_bytes=1e8, out_bytes=1e8, kernel_seconds=0.1)
        result = simulate_schedule(build_overlapped_schedule(work, link))
        kernel_total = 0.8
        first_in = 1e8 / 10e9
        last_out = 1e8 / 10e9
        assert result.makespan == pytest.approx(
            kernel_total + first_in + last_out, rel=0.01)

    def test_compute_hidden_behind_transfer(self, link):
        """With transfer-dominated chunks the makespan approaches the input
        stream time: the Fig. 6 regime for all accelerators."""
        work = chunks(8, in_bytes=2e9, out_bytes=2e9, kernel_seconds=0.01)
        result = simulate_schedule(build_overlapped_schedule(work, link))
        stream_in = 8 * 2e9 / 10e9
        assert result.makespan == pytest.approx(stream_in + 0.01 + 0.2,
                                                rel=0.02)

    def test_overlap_is_measurable(self, link):
        work = chunks(8)
        result = simulate_schedule(build_overlapped_schedule(work, link))
        assert result.overlap_seconds("pcie_h2d", "kernel") > 0.0

    def test_beats_sequential(self, link):
        work = chunks(8)
        overlapped = simulate_schedule(build_overlapped_schedule(work, link))
        total_in = sum(c.in_bytes for c in work)
        total_out = sum(c.out_bytes for c in work)
        total_kernel = sum(c.kernel_seconds for c in work)
        sequential = simulate_schedule(build_sequential_schedule(
            total_in, total_out, total_kernel, link))
        assert overlapped.makespan < 0.75 * sequential.makespan

    def test_duplex_runs_directions_concurrently(self):
        duplex = PCIeLink(streamed_bandwidth=10e9, synchronous_bandwidth=5e9,
                          latency=0.0, duplex=True)
        simplex = PCIeLink(streamed_bandwidth=10e9, synchronous_bandwidth=5e9,
                           latency=0.0, duplex=False)
        work = chunks(8, in_bytes=2e9, out_bytes=2e9, kernel_seconds=0.0)
        t_duplex = simulate_schedule(
            build_overlapped_schedule(work, duplex)).makespan
        t_simplex = simulate_schedule(
            build_overlapped_schedule(work, simplex)).makespan
        assert t_simplex > 1.7 * t_duplex

    def test_kernels_wait_for_their_input(self, link):
        work = chunks(3)
        q = build_overlapped_schedule(work, link)
        simulate_schedule(q)
        by_name = {c.name: c for c in q.commands}
        for i in range(3):
            assert by_name[f"kernel[{i}]"].start >= by_name[f"h2d[{i}]"].end
            assert by_name[f"d2h[{i}]"].start >= by_name[f"kernel[{i}]"].end

    def test_empty_chunk_list_rejected(self, link):
        with pytest.raises(ScheduleError):
            build_overlapped_schedule([], link)


class TestChunkWork:
    def test_rejects_negative_values(self):
        with pytest.raises(ScheduleError):
            ChunkWork(index=0, in_bytes=-1, out_bytes=0, kernel_seconds=0)
        with pytest.raises(ScheduleError):
            ChunkWork(index=0, in_bytes=0, out_bytes=0, kernel_seconds=-1)
