"""Property-based tests of end-to-end sessions across parameters."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import Grid
from repro.hardware import ALVEO_U280, STRATIX10_GX2800
from repro.kernel.config import KernelConfig
from repro.runtime.session import AdvectionSession

DEVICES = {"u280": ALVEO_U280, "stratix": STRATIX10_GX2800}


@settings(max_examples=30, deadline=None)
@given(
    device_key=st.sampled_from(sorted(DEVICES)),
    cells_m=st.sampled_from([1, 4, 16, 67]),
    x_chunks=st.integers(1, 32),
    overlapped=st.booleans(),
    chunk_width=st.sampled_from([16, 64, 256]),
    word_bytes=st.sampled_from([4, 8]),
)
def test_session_invariants(device_key, cells_m, x_chunks, overlapped,
                            chunk_width, word_bytes):
    """Any legal session parameterisation yields a self-consistent run."""
    device = DEVICES[device_key]
    grid = Grid.from_cells(cells_m * 1024 * 1024)
    config = KernelConfig(grid=grid, chunk_width=chunk_width,
                          word_bytes=word_bytes)
    session = AdvectionSession(device, config, x_chunks=x_chunks)
    result = session.run(grid, overlapped=overlapped)

    # Basic sanity.
    assert result.runtime_seconds > 0
    assert result.gflops > 0
    assert result.average_watts > 0
    assert result.num_kernels >= 1
    assert result.memory in ("hbm2", "ddr")

    # Busy times never exceed the makespan per engine.
    schedule = result.schedule
    assert schedule is not None
    for resource in schedule.busy:
        assert schedule.busy[resource] <= schedule.makespan + 1e-12

    # Kernel-only time bounds the end-to-end time from below.
    assert result.runtime_seconds >= result.kernel_seconds / max(
        1, result.num_kernels) - 1e-12

    # Energy is watts x runtime, and efficiency is consistent.
    assert result.energy_joules > 0
    assert abs(result.gflops_per_watt
               - result.gflops / result.average_watts) < 1e-12


@settings(max_examples=15, deadline=None)
@given(cells_m=st.sampled_from([4, 16, 67]),
       x_chunks=st.integers(2, 24))
def test_overlap_never_loses(cells_m, x_chunks):
    """The overlapped schedule never performs worse than the sequential
    one for the same configuration."""
    grid = Grid.from_cells(cells_m * 1024 * 1024)
    session = AdvectionSession(ALVEO_U280, KernelConfig(grid=grid),
                               x_chunks=x_chunks)
    sequential = session.run(grid, overlapped=False)
    overlapped = session.run(grid, overlapped=True)
    assert overlapped.gflops >= sequential.gflops


@settings(max_examples=10, deadline=None)
@given(chunk_width=st.sampled_from([2, 8, 32, 128]))
def test_wider_chunks_never_slower(chunk_width):
    """Kernel-only time is monotone non-increasing in chunk width (less
    halo re-read, fewer pipeline fills, longer bursts)."""
    grid = Grid.from_cells(16 * 1024 * 1024)
    narrow = ALVEO_U280.invocation(
        KernelConfig(grid=grid, chunk_width=chunk_width), grid,
        num_kernels=1, memory="hbm2")
    wide = ALVEO_U280.invocation(
        KernelConfig(grid=grid, chunk_width=chunk_width * 2), grid,
        num_kernels=1, memory="hbm2")
    assert wide.seconds <= narrow.seconds + 1e-12
