"""Device buffer allocation against memory capacity."""

import pytest

from repro.errors import CapacityError, ScheduleError
from repro.hardware.memory import MemorySpec, StreamingMemoryModel
from repro.runtime.buffer import BufferAllocator


@pytest.fixture
def allocator():
    return BufferAllocator(StreamingMemoryModel(MemorySpec(
        name="hbm2", capacity_bytes=1000,
        per_kernel_bandwidth=1.0, aggregate_bandwidth=1.0,
    )))


class TestAllocation:
    def test_basic_accounting(self, allocator):
        buf = allocator.allocate("u", 400)
        assert buf.nbytes == 400
        assert buf.memory == "hbm2"
        assert allocator.used_bytes == 400
        assert allocator.free_bytes == 600
        assert allocator.live_buffers == 1

    def test_capacity_enforced(self, allocator):
        allocator.allocate("u", 600)
        with pytest.raises(CapacityError):
            allocator.allocate("v", 500)

    def test_exact_fit_allowed(self, allocator):
        allocator.allocate("u", 1000)
        assert allocator.free_bytes == 0

    def test_negative_size_rejected(self, allocator):
        with pytest.raises(ScheduleError):
            allocator.allocate("u", -1)

    def test_peak_tracking(self, allocator):
        a = allocator.allocate("a", 500)
        allocator.release(a)
        allocator.allocate("b", 300)
        assert allocator.peak_bytes == 500
        assert allocator.used_bytes == 300


class TestRelease:
    def test_release_frees_space(self, allocator):
        buf = allocator.allocate("u", 800)
        allocator.release(buf)
        allocator.allocate("v", 900)  # fits again

    def test_double_free_rejected(self, allocator):
        buf = allocator.allocate("u", 100)
        allocator.release(buf)
        with pytest.raises(ScheduleError):
            allocator.release(buf)

    def test_reset(self, allocator):
        allocator.allocate("u", 100)
        allocator.reset()
        assert allocator.used_bytes == 0
        assert allocator.live_buffers == 0

    def test_unique_buffer_ids(self, allocator):
        a = allocator.allocate("x", 1)
        b = allocator.allocate("x", 1)
        assert a.uid != b.uid
