"""End-to-end AdvectionSession runs on every device model."""

import pytest

from repro.core.grid import Grid
from repro.core.reference import advect_reference
from repro.core.wind import random_wind
from repro.errors import CapacityError, ConfigurationError
from repro.hardware import ALVEO_U280, STRATIX10_GX2800, TESLA_V100, XEON_8260M
from repro.kernel.config import KernelConfig
from repro.runtime.session import AdvectionSession


@pytest.fixture
def grid():
    return Grid.from_cells(16 * 1024 * 1024)


@pytest.fixture
def config(grid):
    return KernelConfig(grid=grid)


class TestFPGASessions:
    def test_default_kernel_count_is_max_fit(self, config):
        assert AdvectionSession(ALVEO_U280, config).num_kernels == 6
        assert AdvectionSession(STRATIX10_GX2800, config).num_kernels == 5

    def test_overlap_improves_performance(self, config, grid):
        session = AdvectionSession(ALVEO_U280, config)
        seq = session.run(grid, overlapped=False)
        ovl = session.run(grid, overlapped=True)
        assert ovl.gflops > 3 * seq.gflops

    def test_memory_fallback_at_large_sizes(self, config):
        from repro.constants import PAPER_GRID_LABELS

        session = AdvectionSession(ALVEO_U280, config)
        small = Grid.from_cells(PAPER_GRID_LABELS["67M"])
        large = Grid.from_cells(PAPER_GRID_LABELS["268M"])
        assert session.memory_for(small) == "hbm2"
        assert session.memory_for(large) == "ddr"

    def test_memory_override(self, config, grid):
        session = AdvectionSession(ALVEO_U280, config, memory="ddr")
        result = session.run(grid, overlapped=True)
        assert result.memory == "ddr"

    def test_run_result_fields_consistent(self, config, grid):
        result = AdvectionSession(ALVEO_U280, config).run(grid,
                                                          overlapped=True)
        assert result.runtime_seconds > 0
        assert result.kernel_seconds > 0
        assert result.transfer_seconds > 0
        assert result.gflops_per_watt == pytest.approx(
            result.gflops / result.average_watts)
        assert result.energy_joules == pytest.approx(
            result.average_watts * result.runtime_seconds)
        assert result.schedule is not None

    def test_sequential_has_zero_overlap(self, config, grid):
        result = AdvectionSession(ALVEO_U280, config).run(grid,
                                                          overlapped=False)
        assert result.schedule.overlap_seconds("pcie", "kernel") == 0.0

    def test_rejects_bad_chunks(self, config):
        with pytest.raises(ConfigurationError):
            AdvectionSession(ALVEO_U280, config, x_chunks=0)


class TestGPUSessions:
    def test_runs_and_uses_hbm(self, config, grid):
        result = AdvectionSession(TESLA_V100, config).run(grid,
                                                          overlapped=True)
        assert result.memory == "hbm2"
        assert result.gflops > 0

    def test_capacity_error_at_536m(self, config):
        from repro.constants import PAPER_GRID_LABELS

        grid = Grid.from_cells(PAPER_GRID_LABELS["536M"])
        session = AdvectionSession(TESLA_V100, config)
        with pytest.raises(CapacityError):
            session.run(grid, overlapped=True)

    def test_setup_cost_included(self, config, grid):
        result = AdvectionSession(TESLA_V100, config).run(grid,
                                                          overlapped=True)
        assert result.runtime_seconds >= TESLA_V100.setup_seconds


class TestCPUSessions:
    def test_no_transfer_time(self, config, grid):
        result = AdvectionSession(XEON_8260M, config).run(grid,
                                                          overlapped=False)
        assert result.transfer_seconds == 0.0
        assert result.gflops == pytest.approx(15.2, rel=0.01)

    def test_overlap_flag_is_noop(self, config, grid):
        session = AdvectionSession(XEON_8260M, config)
        seq = session.run(grid, overlapped=False)
        ovl = session.run(grid, overlapped=True)
        assert seq.gflops == pytest.approx(ovl.gflops)

    def test_buffers_not_allocated_for_cpu(self, config, grid):
        session = AdvectionSession(XEON_8260M, config)
        with pytest.raises(ConfigurationError):
            session.allocate_buffers(grid)


class TestFunctionalExecution:
    def test_execute_matches_reference(self):
        grid = Grid(nx=6, ny=9, nz=5)
        fields = random_wind(grid, seed=6)
        session = AdvectionSession(
            ALVEO_U280, KernelConfig(grid=grid, chunk_width=4))
        result = session.execute(fields)
        assert result.max_abs_difference(advect_reference(fields)) == 0.0
