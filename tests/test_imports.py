"""Import hygiene: every subpackage must import standalone, in any order.

A circular import can hide behind a lucky import order in the test suite
(it did once, between ``repro.hardware`` and ``repro.kernel``); these
tests import each entry point in a fresh interpreter to rule that out.
"""

import subprocess
import sys

import pytest

ENTRY_POINTS = [
    "repro",
    "repro.core",
    "repro.dataflow",
    "repro.shiftbuffer",
    "repro.kernel",
    "repro.hardware",
    "repro.runtime",
    "repro.perf",
    "repro.experiments",
    "repro.precision",
    "repro.distributed",
    "repro.analysis",
    "repro.cli",
]


@pytest.mark.parametrize("module", ENTRY_POINTS)
def test_subpackage_imports_standalone(module):
    result = subprocess.run(
        [sys.executable, "-c", f"import {module}"],
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr


@pytest.mark.parametrize("first,second", [
    ("repro.hardware", "repro.kernel"),   # the historical cycle
    ("repro.kernel", "repro.hardware"),
    ("repro.runtime", "repro.experiments"),
    ("repro.precision", "repro.hardware"),
])
def test_import_order_independence(first, second):
    result = subprocess.run(
        [sys.executable, "-c", f"import {first}; import {second}"],
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr


def test_public_api_surface():
    """The documented top-level names resolve."""
    import repro

    assert repro.__version__
    assert repro.constants.OPS_PER_CELL == 63
    assert issubclass(repro.ReproError, Exception)
