"""Cross-mode behaviour of the generic stencil machine.

The shift-buffer and window-compute stages are data-dependent
(``unit_rate = False``, no fast-forward signature), so the engine's
optimised paths must *demote* — fast mode records a veto and batched
exact falls back to the scalar loop — and the demoted runs must stay
byte-for-byte identical to forced-scalar execution.  These tests pin
that contract for both kernels built on the machine.
"""

import numpy as np
import pytest

from repro.core.buoyancy import buoyancy_reference
from repro.core.diffusion import diffuse_reference
from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.scenarios.conformance import STATS_BATCH_KEYS
from repro.scenarios.kernels import BuoyancyKernel, DiffusionKernel


def run_field(kernel, fields, name, *, mode="exact", batched=True):
    from repro.kernel.generic import run_stencil_kernel

    grid = fields.grid
    out = np.zeros(grid.interior_shape)
    stats = run_stencil_kernel(
        getattr(fields, name), kernel.window_fn(grid), out,
        mode=mode, batched=batched)
    return out, stats


@pytest.mark.parametrize("kernel,reference", [
    (DiffusionKernel(nu=1.5), lambda f: diffuse_reference(f, nu=1.5)),
    (BuoyancyKernel(), buoyancy_reference),
])
class TestGenericKernelModes:
    def test_ff_signature_veto_is_declared(self, kernel, reference):
        """Both stages opt out of steady-state detection entirely."""
        from repro.kernel.generic import (
            GeneralShiftBufferStage,
            WindowComputeStage,
        )

        shift = GeneralShiftBufferStage("s", 4, 4, 4)
        compute = WindowComputeStage("c", lambda w: [])
        for stage in (shift, compute):
            assert stage.unit_rate is False
            assert stage.ff_signature(0) is None
            assert stage.ff_signature(10_000) is None

    def test_batched_exact_matches_scalar_byte_for_byte(self, kernel,
                                                        reference):
        grid = Grid(nx=4, ny=5, nz=6)
        fields = random_wind(grid, seed=23, magnitude=2.0)
        expected = reference(fields)
        for name, ref in (("u", expected.su), ("v", expected.sv),
                          ("w", expected.sw)):
            scalar, s_stats = run_field(kernel, fields, name,
                                        batched=False)
            batched, b_stats = run_field(kernel, fields, name,
                                         batched=True)
            np.testing.assert_array_equal(scalar, batched)
            np.testing.assert_array_equal(scalar, ref)
            assert s_stats.cycles == b_stats.cycles
            # The fallback is recorded, and everything else matches.
            assert b_stats.batch_fallback_reason
            assert b_stats.batched_windows == 0
            s_dict = s_stats.to_dict()
            b_dict = b_stats.to_dict()
            for key in STATS_BATCH_KEYS:
                s_dict.pop(key), b_dict.pop(key)
            assert s_dict == b_dict

    def test_fast_mode_demotes_with_identical_results(self, kernel,
                                                      reference):
        grid = Grid(nx=4, ny=4, nz=5)
        fields = random_wind(grid, seed=7, magnitude=1.5)
        scalar, s_stats = run_field(kernel, fields, "u", batched=False)
        fast, f_stats = run_field(kernel, fields, "u", mode="fast",
                                  batched=False)
        np.testing.assert_array_equal(scalar, fast)
        assert s_stats.cycles == f_stats.cycles
        assert f_stats.ff_veto_reason
        assert f_stats.ff_advances == 0
