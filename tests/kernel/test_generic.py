"""The generic cycle-level stencil kernel."""

import numpy as np
import pytest

from repro.core.diffusion import diffuse_reference
from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.errors import ConfigurationError
from repro.kernel.diffusion import (
    diffusion_boundary_from_window,
    diffusion_from_window,
)
from repro.kernel.generic import run_stencil_kernel
from repro.shiftbuffer.ports import MemoryPortTracker


def diffusion_fn(grid: Grid, nu: float):
    """Window function computing diffusion incl. vertical boundaries."""

    def fn(window):
        cx, cy, cz = window.center
        results = [((cx, cy, cz), diffusion_from_window(window, grid, nu))]
        if cz == 1:
            results.append(((cx, cy, 0), diffusion_boundary_from_window(
                window, grid, nu, top=False)))
        if cz == grid.nz - 2:
            results.append(((cx, cy, grid.nz - 1),
                            diffusion_boundary_from_window(
                                window, grid, nu, top=True)))
        return results

    return fn


class TestDiffusionCycleAccurate:
    def test_bitwise_equal_to_reference(self):
        """The diffusion kernel, run cycle-accurately on the generic
        dataflow machine, reproduces the reference bit for bit."""
        grid = Grid(nx=4, ny=5, nz=5, dx=20.0, dy=30.0, dz=10.0)
        fields = random_wind(grid, seed=11, magnitude=2.0)
        reference = diffuse_reference(fields, nu=4.0)
        for name, expected in (("u", reference.su), ("v", reference.sv),
                               ("w", reference.sw)):
            out = np.zeros(grid.interior_shape)
            run_stencil_kernel(getattr(fields, name),
                               diffusion_fn(grid, 4.0), out)
            np.testing.assert_array_equal(out, expected)

    def test_ii1_machine_behaviour(self):
        """One value consumed per cycle in steady state: the dataflow
        design generalises beyond advection."""
        grid = Grid(nx=4, ny=4, nz=8)
        fields = random_wind(grid, seed=1)
        out = np.zeros(grid.interior_shape)
        stats = run_stencil_kernel(fields.u, diffusion_fn(grid, 1.0), out)
        feeds = (grid.nx + 2) * (grid.ny + 2) * grid.nz
        assert stats.fires["shift"] == feeds
        assert stats.cycles <= feeds + 40  # fill only

    def test_port_budget(self):
        grid = Grid(nx=4, ny=4, nz=4)
        fields = random_wind(grid, seed=2)
        out = np.zeros(grid.interior_shape)
        tracker = MemoryPortTracker(enforce=True)
        run_stencil_kernel(fields.u, diffusion_fn(grid, 1.0), out,
                           tracker=tracker)
        assert tracker.worst_case == 2


class TestGenericMechanics:
    def test_identity_stencil(self):
        """fn returning the centre value copies the interior."""
        block = np.arange(4 * 5 * 3, dtype=float).reshape(4, 5, 3)
        out = np.zeros((2, 3, 3))
        run_stencil_kernel(
            block, lambda w: [(w.center, w.at(0, 0, 0))], out)
        np.testing.assert_array_equal(out[:, :, 1], block[1:-1, 1:-1, 1])

    def test_radius_two(self):
        """A radius-2 mean filter through the same machinery."""
        block = np.random.default_rng(3).normal(size=(6, 6, 6))
        out = np.zeros((2, 2, 6))

        def mean5(window):
            values = [window.at(di, 0, 0) for di in range(-2, 3)]
            return [(window.center, sum(values) / 5.0)]

        run_stencil_kernel(block, mean5, out, radius=2)
        cx, cy, cz = 2, 2, 2  # a centre the buffer emits
        expected = block[0:5, cy, cz].sum() / 5.0
        assert out[0, 0, 2] == pytest.approx(expected)

    def test_output_shape_validated(self):
        block = np.zeros((4, 4, 4))
        with pytest.raises(ConfigurationError):
            run_stencil_kernel(block, lambda w: [], np.zeros((3, 3, 4)))

    def test_block_rank_validated(self):
        with pytest.raises(ConfigurationError):
            run_stencil_kernel(np.zeros((4, 4)), lambda w: [],
                               np.zeros((2, 2)))
