"""Tests for kernel configuration validation and derived geometry."""

import pytest

from repro.core.grid import Grid
from repro.errors import ConfigurationError
from repro.kernel.config import KernelConfig


@pytest.fixture
def grid():
    return Grid(nx=8, ny=32, nz=16)


class TestValidation:
    def test_defaults_are_legal(self, grid):
        KernelConfig(grid=grid)

    def test_rejects_bad_chunk_width(self, grid):
        with pytest.raises(ConfigurationError):
            KernelConfig(grid=grid, chunk_width=0)

    def test_rejects_stream_depth_below_two(self, grid):
        """Depth >= 2 is required to absorb column-top double emissions."""
        with pytest.raises(ConfigurationError):
            KernelConfig(grid=grid, stream_depth=1)

    def test_rejects_bad_ii(self, grid):
        with pytest.raises(ConfigurationError):
            KernelConfig(grid=grid, shift_buffer_ii=0)

    def test_rejects_bad_latencies(self, grid):
        with pytest.raises(ConfigurationError):
            KernelConfig(grid=grid, advect_latency=0)
        with pytest.raises(ConfigurationError):
            KernelConfig(grid=grid, memory_latency=0)

    def test_rejects_short_column(self):
        with pytest.raises(ConfigurationError):
            KernelConfig(grid=Grid(nx=4, ny=4, nz=2))


class TestDerivedGeometry:
    def test_chunk_plan_matches_width(self, grid):
        plan = KernelConfig(grid=grid, chunk_width=8).chunk_plan()
        assert plan.num_chunks == 4

    def test_buffer_ny_includes_halo(self, grid):
        config = KernelConfig(grid=grid, chunk_width=8)
        assert config.buffer_ny == 10

    def test_buffer_ny_capped_by_domain(self):
        config = KernelConfig(grid=Grid(nx=4, ny=4, nz=8), chunk_width=64)
        assert config.buffer_ny == 6

    def test_buffer_words_formula(self, grid):
        config = KernelConfig(grid=grid, chunk_width=8)
        per_field = 3 * 10 * 16 + 9 * 16
        assert config.buffer_words_per_field == per_field
        assert config.buffer_words == 3 * per_field
        assert config.buffer_bytes == 24 * per_field

    def test_memory_bounded_by_y_and_z_only(self):
        """The paper's motivation for chunking: buffer size must not depend
        on the X extent of the domain."""
        small_x = KernelConfig(grid=Grid(nx=4, ny=32, nz=16), chunk_width=8)
        huge_x = KernelConfig(grid=Grid(nx=4096, ny=32, nz=16), chunk_width=8)
        assert small_x.buffer_bytes == huge_x.buffer_bytes

    def test_bytes_per_cell_cycle(self, grid):
        assert KernelConfig(grid=grid).bytes_per_cell_cycle == 48

    def test_for_grid_preserves_design(self, grid):
        config = KernelConfig(grid=grid, chunk_width=8, advect_latency=10)
        other = config.for_grid(Grid(nx=2, ny=2, nz=4))
        assert other.chunk_width == 8
        assert other.advect_latency == 10
        assert other.grid.nx == 2
