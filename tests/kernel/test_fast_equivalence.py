"""Fast mode reproduces exact kernel simulation bit-for-bit.

Equivalence is checked at the level the paper cares about: total cycle
counts, per-stage fire/stall counters, stream sizing bounds, and the
output source arrays — across chunked, memory-starved, and multi-kernel
configurations.  Also covers the batched shift-buffer feed path and the
benchmark record module the perf harness is built on.
"""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.errors import ConfigurationError, DataflowError, ShiftBufferError
from repro.kernel.config import KernelConfig
from repro.kernel.multi_simulate import simulate_multi_kernel
from repro.kernel.simulate import simulate_kernel
from repro.perf.bench import BenchRecord, BenchSuite, load_suite, speedup
from repro.shiftbuffer.buffer3d import ShiftBuffer3D


def run_both(config, fields, **kwargs):
    exact = simulate_kernel(config, fields, mode="exact", **kwargs)
    fast = simulate_kernel(config, fields, mode="fast", **kwargs)
    return exact, fast


def assert_identical(exact, fast):
    assert fast.total_cycles == exact.total_cycles
    agg_exact, agg_fast = exact.aggregate_stats(), fast.aggregate_stats()
    assert agg_fast.fires == agg_exact.fires
    assert agg_fast.stalls == agg_exact.stalls
    assert agg_fast.stream_high_water == agg_exact.stream_high_water
    for name in ("su", "sv", "sw"):
        assert np.array_equal(getattr(exact.sources, name),
                              getattr(fast.sources, name)), name


class TestSingleKernel:
    def test_unchunked_bit_identical(self):
        grid = Grid(nx=8, ny=8, nz=8)
        fields = random_wind(grid, seed=3, magnitude=2.0)
        exact, fast = run_both(KernelConfig(grid=grid, chunk_width=64),
                               fields)
        assert_identical(exact, fast)
        # The steady state is long enough that fast mode must have skipped
        # the bulk of the run.
        agg = fast.aggregate_stats()
        assert agg.ff_advances >= 1
        assert agg.ff_cycles > fast.total_cycles // 2

    def test_chunked_bit_identical(self):
        grid = Grid(nx=10, ny=14, nz=9)
        fields = random_wind(grid, seed=11, magnitude=2.0)
        exact, fast = run_both(KernelConfig(grid=grid, chunk_width=5),
                               fields)
        assert_identical(exact, fast)
        # One advance per chunk: the fast-forward table resets per engine.
        assert fast.aggregate_stats().ff_advances >= len(fast.chunk_stats)

    def test_starved_read_bit_identical(self):
        grid = Grid(nx=8, ny=8, nz=8)
        fields = random_wind(grid, seed=3)
        exact, fast = run_both(KernelConfig(grid=grid, chunk_width=64),
                               fields, read_ii=2)
        assert_identical(exact, fast)

    def test_exact_mode_reports_no_advances(self):
        grid = Grid(nx=6, ny=6, nz=6)
        fields = random_wind(grid, seed=1)
        result = simulate_kernel(KernelConfig(grid=grid), fields)
        agg = result.aggregate_stats()
        assert agg.ff_advances == 0
        assert agg.ff_cycles == 0

    def test_bad_mode_rejected(self):
        grid = Grid(nx=4, ny=4, nz=4)
        fields = random_wind(grid, seed=0)
        with pytest.raises(DataflowError, match="mode"):
            simulate_kernel(KernelConfig(grid=grid), fields, mode="warp")

    def test_aggregate_stats_sums_chunks(self):
        grid = Grid(nx=8, ny=10, nz=6)
        fields = random_wind(grid, seed=5)
        result = simulate_kernel(KernelConfig(grid=grid, chunk_width=4),
                                 fields)
        agg = result.aggregate_stats()
        assert agg.cycles == result.total_cycles
        assert agg.fires["shift_buffer"] == sum(
            s.fires["shift_buffer"] for s in result.chunk_stats)


class TestMultiKernel:
    def test_ample_bandwidth_bit_identical(self):
        grid = Grid(nx=8, ny=6, nz=4)
        fields = random_wind(grid, seed=2)
        config = KernelConfig(grid=grid, chunk_width=3)
        exact = simulate_multi_kernel(config, fields, num_kernels=2)
        fast = simulate_multi_kernel(config, fields, num_kernels=2,
                                     mode="fast")
        assert fast.total_cycles == exact.total_cycles
        assert fast.arbiter.grants == exact.arbiter.grants
        assert fast.arbiter.denials == exact.arbiter.denials
        for name in ("su", "sv", "sw"):
            assert np.array_equal(getattr(exact.sources, name),
                                  getattr(fast.sources, name))

    def test_starved_arbiter_disables_fast_forward(self):
        """A contended memory makes read counts data-dependent: the read
        stage vetoes and the run must match exact ticking regardless."""
        grid = Grid(nx=8, ny=6, nz=4)
        fields = random_wind(grid, seed=2)
        config = KernelConfig(grid=grid, chunk_width=3)
        exact = simulate_multi_kernel(config, fields, num_kernels=2,
                                      memory_cells_per_cycle=1.5)
        fast = simulate_multi_kernel(config, fields, num_kernels=2,
                                     memory_cells_per_cycle=1.5, mode="fast")
        assert exact.arbiter.denials > 0  # the scenario really starves
        assert fast.total_cycles == exact.total_cycles
        assert fast.arbiter.grants == exact.arbiter.grants
        assert fast.arbiter.denials == exact.arbiter.denials
        for name in ("su", "sv", "sw"):
            assert np.array_equal(getattr(exact.sources, name),
                                  getattr(fast.sources, name))


class TestBatchedFeed:
    def block(self, nx=5, ny=6, nz=4, seed=7):
        rng = np.random.default_rng(seed)
        return rng.normal(size=(nx, ny, nz))

    def test_feed_block_matches_scalar_feeds(self):
        block = self.block()
        batched = ShiftBuffer3D(*block.shape, name="b")
        scalar = ShiftBuffer3D(*block.shape, name="s")
        fast_windows = batched.feed_block(block)
        slow_windows = []
        for value in block.reshape(-1):
            slow_windows.extend(scalar.feed(float(value)))
        assert len(fast_windows) == len(slow_windows)
        for got, want in zip(fast_windows, slow_windows):
            assert got.center == want.center
            assert got.top == want.top
            assert np.array_equal(got.raw, want.raw)

    def test_feed_bulk_matches_scalar_state(self):
        block = self.block()
        bulk = ShiftBuffer3D(*block.shape, name="b")
        scalar = ShiftBuffer3D(*block.shape, name="s")
        flat = block.reshape(-1)
        count = 37
        emitted = sum(len(scalar.feed(float(v))) for v in flat[:count])
        first, stop = bulk.feed_bulk(count, block)
        assert (first, stop) == (0, emitted)
        assert bulk.position == scalar.position
        assert bulk.fed == scalar.fed

    def test_partially_fed_buffer_overrun_is_caught(self):
        """feed_block on a non-fresh buffer takes the scalar path, which
        enforces the block budget: the overrun raises cleanly instead of
        silently corrupting state."""
        block = self.block()
        buf = ShiftBuffer3D(*block.shape, name="b")
        buf.feed(float(block.reshape(-1)[0]))
        with pytest.raises(ShiftBufferError, match="already consumed|full block"):
            buf.feed_block(block)

    def test_reset_reopens_the_batched_path(self):
        block = self.block()
        buf = ShiftBuffer3D(*block.shape, name="b")
        first_pass = buf.feed_block(block)
        buf.reset()
        second_pass = buf.feed_block(block)
        assert len(second_pass) == len(first_pass) == buf.expected_emissions

    def test_transposed_block_raises_with_hint(self):
        block = self.block(nx=5, ny=6, nz=4)
        buf = ShiftBuffer3D(5, 6, 4, name="b")
        with pytest.raises(ShiftBufferError, match="axes are permuted"):
            buf.feed_block(block.transpose(2, 0, 1))
        # ShiftBufferError is a DataflowError: one except clause catches
        # every machine-model failure.
        with pytest.raises(DataflowError):
            buf.feed_block(block.transpose(2, 0, 1))

    def test_wrong_shape_raises_without_hint(self):
        buf = ShiftBuffer3D(5, 6, 4, name="b")
        with pytest.raises(ShiftBufferError, match="does not match"):
            buf.feed_block(np.zeros((5, 6, 5)))


class TestBenchRecords:
    def record(self, name="r", wall=2.0, cycles=1000, mode="exact"):
        return BenchRecord(name=name, wall_seconds=wall, cycles=cycles,
                           cells=512, mode=mode)

    def test_round_trip(self, tmp_path):
        suite = BenchSuite(context={"grid": "8x8x8"})
        suite.add(self.record("a", wall=2.0))
        suite.add(self.record("b", wall=0.5, mode="fast"))
        path = suite.write(tmp_path / "bench.json")
        loaded = load_suite(path)
        assert loaded.context["grid"] == "8x8x8"
        assert [r.name for r in loaded.records] == ["a", "b"]
        assert loaded.find("b").mode == "fast"

    def test_cycles_per_second(self):
        assert self.record(wall=2.0, cycles=1000).cycles_per_second == 500.0

    def test_speedup(self):
        base = self.record("base", wall=2.0)
        cand = self.record("cand", wall=0.5, mode="fast")
        assert speedup(base, cand) == pytest.approx(4.0)

    def test_speedup_rejects_mismatched_cycles(self):
        base = self.record("base", cycles=1000)
        cand = self.record("cand", cycles=999, mode="fast")
        with pytest.raises(ConfigurationError):
            speedup(base, cand)

    def test_rejects_nonpositive_wall_time(self):
        with pytest.raises(ConfigurationError):
            self.record(wall=0.0)
