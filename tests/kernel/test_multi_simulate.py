"""Cycle-accurate multi-kernel co-simulation with shared-memory contention."""

import pytest

from repro.core.coefficients import AdvectionCoefficients
from repro.core.grid import Grid
from repro.core.reference import advect_reference
from repro.core.wind import random_wind
from repro.errors import ConfigurationError
from repro.kernel.config import KernelConfig
from repro.kernel.multi import MultiKernel
from repro.kernel.multi_simulate import (
    MemoryArbiter,
    MultiKernelSimResult,
    simulate_multi_kernel,
)


@pytest.fixture
def setup():
    grid = Grid(nx=8, ny=6, nz=4)
    fields = random_wind(grid, seed=2)
    config = KernelConfig(grid=grid, chunk_width=3)
    return grid, fields, config


class TestMemoryArbiter:
    def test_integer_rate(self):
        arbiter = MemoryArbiter(2.0)
        arbiter.tick(0)
        assert arbiter.request() and arbiter.request()
        assert not arbiter.request()
        arbiter.tick(1)
        assert arbiter.request()

    def test_fractional_rate_accumulates(self):
        arbiter = MemoryArbiter(0.5)
        arbiter.tick(0)
        assert not arbiter.request()
        arbiter.tick(1)
        assert arbiter.request()  # two half-credits make one grant

    def test_credit_cap_prevents_bursts(self):
        arbiter = MemoryArbiter(1.0)
        for cycle in range(10):  # idle cycles must not bank credits
            arbiter.tick(cycle)
        arbiter.tick(10)
        assert arbiter.request()
        assert arbiter.request()  # one banked credit is allowed
        assert not arbiter.request()

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            MemoryArbiter(0.0)


class TestCoSimulation:
    @pytest.mark.parametrize("num_kernels", [1, 2, 4])
    def test_bitwise_correct_any_kernel_count(self, setup, num_kernels):
        grid, fields, config = setup
        result = simulate_multi_kernel(config, fields,
                                       num_kernels=num_kernels)
        assert result.sources.max_abs_difference(
            advect_reference(fields)) == 0.0

    def test_ample_bandwidth_matches_analytic_model(self, setup):
        """With one read grant per kernel per cycle the co-simulation and
        the closed-form multi-kernel model agree exactly."""
        grid, fields, config = setup
        result = simulate_multi_kernel(config, fields, num_kernels=2)
        assert result.total_cycles == MultiKernel(config, 2).cycles()
        assert result.read_starvation_fraction == 0.0

    def test_starved_memory_slows_and_still_correct(self, setup):
        grid, fields, config = setup
        ample = simulate_multi_kernel(config, fields, num_kernels=2)
        starved = simulate_multi_kernel(config, fields, num_kernels=2,
                                        memory_cells_per_cycle=1.0)
        assert starved.sources.max_abs_difference(ample.sources) == 0.0
        assert starved.total_cycles > 1.5 * ample.total_cycles
        assert starved.read_starvation_fraction > 0.2

    def test_fractional_rate_interpolates(self, setup):
        grid, fields, config = setup
        ample = simulate_multi_kernel(config, fields, num_kernels=2)
        starved = simulate_multi_kernel(config, fields, num_kernels=2,
                                        memory_cells_per_cycle=1.0)
        middle = simulate_multi_kernel(config, fields, num_kernels=2,
                                       memory_cells_per_cycle=1.5)
        assert ample.total_cycles < middle.total_cycles < starved.total_cycles

    def test_isothermal_coefficients(self, setup):
        grid, fields, config = setup
        coeffs = AdvectionCoefficients.isothermal(grid)
        result = simulate_multi_kernel(config, fields, coeffs,
                                       num_kernels=3)
        assert result.sources.max_abs_difference(
            advect_reference(fields, coeffs)) == 0.0

    def test_kernel_count_capped_by_nx(self):
        grid = Grid(nx=3, ny=4, nz=4)
        fields = random_wind(grid, seed=0)
        result = simulate_multi_kernel(
            KernelConfig(grid=grid, chunk_width=4), fields, num_kernels=8)
        assert result.num_kernels == 3

    def test_validation(self, setup):
        grid, fields, config = setup
        with pytest.raises(ConfigurationError):
            simulate_multi_kernel(config, fields, num_kernels=0)
        wrong = random_wind(Grid(nx=4, ny=4, nz=4), seed=0)
        with pytest.raises(ConfigurationError):
            simulate_multi_kernel(config, wrong, num_kernels=2)

    def test_extreme_starvation_no_false_deadlock(self, setup):
        """Rates far below one grant/cycle stall reads for long stretches;
        the widened engine grace must not misdiagnose a deadlock, and the
        result stays exact."""
        grid, fields, config = setup
        from repro.core.reference import advect_reference

        result = simulate_multi_kernel(config, fields, num_kernels=2,
                                       memory_cells_per_cycle=0.1)
        assert result.sources.max_abs_difference(
            advect_reference(fields)) == 0.0
        assert result.read_starvation_fraction > 0.8

    def test_chunk_cycles_recorded(self, setup):
        grid, fields, config = setup
        result = simulate_multi_kernel(config, fields, num_kernels=2)
        assert isinstance(result, MultiKernelSimResult)
        assert len(result.chunk_cycles) == config.chunk_plan().num_chunks
        assert sum(result.chunk_cycles) == result.total_cycles
