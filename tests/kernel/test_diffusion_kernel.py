"""The diffusion kernel on the general-purpose shift buffer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diffusion import diffuse_reference
from repro.core.grid import Grid
from repro.core.wind import random_wind, thermal_bubble
from repro.errors import ConfigurationError
from repro.kernel.diffusion import diffuse_shiftbuffer
from repro.shiftbuffer.ports import MemoryPortTracker


class TestCorrectness:
    @pytest.mark.parametrize("shape", [(3, 3, 3), (5, 6, 4), (4, 4, 8)])
    def test_bitwise_equal_to_reference(self, shape):
        grid = Grid(nx=shape[0], ny=shape[1], nz=shape[2],
                    dx=25.0, dy=35.0, dz=15.0)
        fields = random_wind(grid, seed=sum(shape), magnitude=3.0)
        assert diffuse_shiftbuffer(fields, nu=5.0).max_abs_difference(
            diffuse_reference(fields, nu=5.0)) == 0.0

    def test_structured_field(self):
        grid = Grid(nx=6, ny=6, nz=6)
        fields = thermal_bubble(grid)
        assert diffuse_shiftbuffer(fields).max_abs_difference(
            diffuse_reference(fields)) == 0.0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_random_fields(self, seed):
        grid = Grid(nx=4, ny=5, nz=4)
        fields = random_wind(grid, seed=seed)
        assert diffuse_shiftbuffer(fields, nu=2.0).max_abs_difference(
            diffuse_reference(fields, nu=2.0)) == 0.0


class TestMachineProperties:
    def test_dual_port_budget_respected(self):
        """The general buffer's port guarantee holds for this kernel too."""
        grid = Grid(nx=4, ny=4, nz=4)
        fields = random_wind(grid, seed=0)
        tracker = MemoryPortTracker(enforce=True)
        diffuse_shiftbuffer(fields, tracker=tracker)
        assert tracker.worst_case == 2
        assert tracker.achievable_ii() == 1

    def test_boundary_cells_all_written(self):
        """Every vertical boundary cell receives a value (the adjacent-
        window trick covers k=0 and k=nz-1)."""
        import numpy as np

        grid = Grid(nx=4, ny=4, nz=5)
        fields = random_wind(grid, seed=4, magnitude=2.0)
        result = diffuse_shiftbuffer(fields, nu=3.0)
        reference = diffuse_reference(fields, nu=3.0)
        np.testing.assert_array_equal(result.su[:, :, 0],
                                      reference.su[:, :, 0])
        np.testing.assert_array_equal(result.su[:, :, -1],
                                      reference.su[:, :, -1])
        # And boundary sources are generically non-zero for random fields.
        assert np.abs(result.su[:, :, 0]).max() > 0.0

    def test_validation(self):
        fields = random_wind(Grid(nx=4, ny=4, nz=2), seed=0)
        with pytest.raises(ConfigurationError):
            diffuse_shiftbuffer(fields)
        fields3 = random_wind(Grid(nx=4, ny=4, nz=4), seed=0)
        with pytest.raises(ConfigurationError):
            diffuse_shiftbuffer(fields3, nu=-1.0)
