"""The closed-form cycle model must track the cycle-accurate simulator."""

import pytest

from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.kernel.config import KernelConfig
from repro.kernel.cycle_model import KernelCycleModel
from repro.kernel.simulate import simulate_kernel


class TestAgainstSimulator:
    @pytest.mark.parametrize("dims,chunk", [
        ((5, 6, 4), 64), ((6, 11, 5), 4), ((4, 9, 3), 3), ((7, 8, 6), 8),
        ((3, 3, 3), 2),
    ])
    def test_exact_match_default_latencies(self, dims, chunk):
        grid = Grid(nx=dims[0], ny=dims[1], nz=dims[2])
        config = KernelConfig(grid=grid, chunk_width=chunk)
        sim = simulate_kernel(config, random_wind(grid, seed=1))
        assert KernelCycleModel(config).cycles() == sim.total_cycles

    @pytest.mark.parametrize("ml,al", [(16, 28), (1, 1), (8, 14), (4, 52)])
    def test_exact_match_latency_sweep(self, ml, al):
        grid = Grid(nx=5, ny=6, nz=4)
        config = KernelConfig(grid=grid, chunk_width=64, memory_latency=ml,
                              advect_latency=al)
        sim = simulate_kernel(config, random_wind(grid, seed=1))
        assert KernelCycleModel(config).cycles() == sim.total_cycles

    def test_ii2_tracked_within_tolerance(self):
        grid = Grid(nx=5, ny=6, nz=4)
        config = KernelConfig(grid=grid, chunk_width=64, shift_buffer_ii=2)
        sim = simulate_kernel(config, random_wind(grid, seed=1))
        model = KernelCycleModel(config).cycles()
        assert abs(model - sim.total_cycles) <= 2

    def test_read_ii_tracked(self):
        grid = Grid(nx=5, ny=6, nz=4)
        config = KernelConfig(grid=grid, chunk_width=64)
        sim = simulate_kernel(config, random_wind(grid, seed=1), read_ii=2)
        model = KernelCycleModel(config, read_ii=2).cycles()
        assert abs(model - sim.total_cycles) <= 2


class TestBreakdown:
    def test_components_sum(self):
        config = KernelConfig(grid=Grid(nx=8, ny=32, nz=16), chunk_width=8)
        bd = KernelCycleModel(config).breakdown()
        assert bd.total == bd.steady_cycles + bd.fill_cycles
        assert bd.chunks == 4
        assert 0.0 < bd.fill_fraction < 1.0

    def test_effective_ii_is_max(self):
        config = KernelConfig(grid=Grid(nx=4, ny=4, nz=4), shift_buffer_ii=2)
        assert KernelCycleModel(config, read_ii=3).effective_ii == 3
        assert KernelCycleModel(config, read_ii=1).effective_ii == 2

    def test_rejects_bad_read_ii(self):
        config = KernelConfig(grid=Grid(nx=4, ny=4, nz=4))
        with pytest.raises(ValueError):
            KernelCycleModel(config, read_ii=0)

    def test_runtime_scales_with_clock(self):
        config = KernelConfig(grid=Grid(nx=8, ny=8, nz=8))
        model = KernelCycleModel(config)
        assert model.runtime_seconds(400e6) == pytest.approx(
            model.runtime_seconds(200e6) / 2)
        with pytest.raises(ValueError):
            model.runtime_seconds(-1.0)


class TestEfficiency:
    def test_large_grid_efficiency_near_one(self):
        """Paper-scale grids run at >95% of one cell per cycle: the whole
        point of the II=1 shift-buffer design."""
        grid = Grid.from_cells(16 * 1024 * 1024)
        model = KernelCycleModel(KernelConfig(grid=grid))
        assert model.efficiency() > 0.95

    def test_small_grid_efficiency_lower(self):
        small = KernelCycleModel(KernelConfig(grid=Grid(nx=4, ny=4, nz=4)))
        large = KernelCycleModel(
            KernelConfig(grid=Grid(nx=64, ny=64, nz=64)))
        assert small.efficiency() < large.efficiency()

    def test_narrow_chunks_cost_efficiency(self):
        grid = Grid(nx=32, ny=64, nz=16)
        wide = KernelCycleModel(KernelConfig(grid=grid, chunk_width=64))
        narrow = KernelCycleModel(KernelConfig(grid=grid, chunk_width=2))
        assert narrow.cycles() > wide.cycles()

    def test_alternate_grid_argument(self):
        config = KernelConfig(grid=Grid(nx=4, ny=4, nz=4))
        other = Grid(nx=8, ny=8, nz=8)
        model = KernelCycleModel(config)
        assert model.cycles(other) > model.cycles()
