"""The Fig. 2 graph builder and the kernel's streaming order."""

import pytest

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import SourceSet
from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.kernel.builder import build_advection_graph, chunk_cell_stream
from repro.kernel.config import KernelConfig


@pytest.fixture
def setup():
    grid = Grid(nx=4, ny=6, nz=3)
    fields = random_wind(grid, seed=1)
    config = KernelConfig(grid=grid, chunk_width=3)
    chunk = config.chunk_plan().chunks[0]
    return grid, fields, config, chunk


class TestCellStream:
    def test_streaming_order_z_fastest(self, setup):
        grid, fields, config, chunk = setup
        cells = list(chunk_cell_stream(fields, chunk))
        nz = grid.nz
        # First nz cells walk one column of the first (halo) X plane.
        block = fields.u[:, chunk.read_start:chunk.read_stop, :]
        for k in range(nz):
            assert cells[k].u == block[0, 0, k]
        # The next column follows in Y.
        assert cells[nz].u == block[0, 1, 0]

    def test_stream_length(self, setup):
        grid, fields, config, chunk = setup
        cells = list(chunk_cell_stream(fields, chunk))
        assert len(cells) == (grid.nx + 2) * chunk.read_width * grid.nz

    def test_all_three_fields_packed(self, setup):
        grid, fields, config, chunk = setup
        cell = next(chunk_cell_stream(fields, chunk))
        assert cell.u == fields.u[0, chunk.read_start, 0]
        assert cell.v == fields.v[0, chunk.read_start, 0]
        assert cell.w == fields.w[0, chunk.read_start, 0]


class TestGraphStructure:
    def test_fig2_stage_names(self, setup):
        grid, fields, config, chunk = setup
        graph = build_advection_graph(
            config, fields, chunk, AdvectionCoefficients.uniform(grid),
            SourceSet.zeros(grid))
        names = {stage.name for stage in graph.stages}
        assert names == {"read_data", "shift_buffer", "replicate",
                         "advect_u", "advect_v", "advect_w", "write_data"}

    def test_fig2_stream_count(self, setup):
        """read->shift, shift->replicate, 3x replicate->advect,
        3x advect->write: eight streams."""
        grid, fields, config, chunk = setup
        graph = build_advection_graph(
            config, fields, chunk, AdvectionCoefficients.uniform(grid),
            SourceSet.zeros(grid))
        assert len(graph.streams) == 8

    def test_graph_validates(self, setup):
        grid, fields, config, chunk = setup
        graph = build_advection_graph(
            config, fields, chunk, AdvectionCoefficients.uniform(grid),
            SourceSet.zeros(grid))
        graph.validate()
        order = [s.name for s in graph.topological_order()]
        assert order.index("read_data") < order.index("shift_buffer")
        assert order.index("replicate") < order.index("advect_u")
        assert order.index("advect_w") < order.index("write_data")

    def test_stream_depths_follow_config(self, setup):
        grid, fields, config, chunk = setup
        graph = build_advection_graph(
            config, fields, chunk, AdvectionCoefficients.uniform(grid),
            SourceSet.zeros(grid))
        assert all(s.depth == config.stream_depth for s in graph.streams)
