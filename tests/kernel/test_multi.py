"""Multi-kernel decomposition behaviour (Section IV)."""

import pytest

from repro.core.grid import Grid
from repro.errors import ConfigurationError
from repro.kernel.config import KernelConfig
from repro.kernel.cycle_model import KernelCycleModel
from repro.kernel.multi import MultiKernel


@pytest.fixture
def config():
    return KernelConfig(grid=Grid(nx=48, ny=32, nz=16), chunk_width=8)


class TestDecomposition:
    def test_parts_capped_by_nx(self):
        config = KernelConfig(grid=Grid(nx=3, ny=8, nz=8))
        mk = MultiKernel(config, num_kernels=6)
        assert mk.decomposition().parts == 3

    def test_rejects_zero_kernels(self, config):
        with pytest.raises(ConfigurationError):
            MultiKernel(config, num_kernels=0)


class TestScaling:
    def test_more_kernels_fewer_cycles(self, config):
        one = MultiKernel(config, 1).cycles()
        six = MultiKernel(config, 6).cycles()
        assert six < one

    def test_single_kernel_equals_cycle_model(self, config):
        assert MultiKernel(config, 1).cycles() == KernelCycleModel(
            config).cycles()

    def test_speedup_sublinear(self, config):
        """Halo re-reads and per-part pipeline fills keep the speedup
        strictly below the kernel count."""
        mk = MultiKernel(config, 6)
        speedup = mk.speedup_over_single()
        assert 4.0 < speedup < 6.0

    def test_speedup_monotone_in_kernels(self, config):
        s2 = MultiKernel(config, 2).speedup_over_single()
        s4 = MultiKernel(config, 4).speedup_over_single()
        assert s4 > s2 > 1.0

    def test_cycles_is_worst_part(self, config):
        """An uneven split is dominated by the widest part."""
        grid = Grid(nx=7, ny=8, nz=8)  # 7 into 3 -> parts of 3,2,2
        mk = MultiKernel(config.for_grid(grid), 3)
        decomp = mk.decomposition()
        worst = max(
            KernelCycleModel(config.for_grid(decomp.subgrid(p))).cycles()
            for p in range(3)
        )
        assert mk.cycles() == worst

    def test_runtime_scaling_with_clock(self, config):
        mk = MultiKernel(config, 4)
        assert mk.runtime_seconds(250e6) == pytest.approx(
            mk.cycles() / 250e6)
        with pytest.raises(ValueError):
            mk.runtime_seconds(0.0)

    def test_read_ii_propagates(self, config):
        mk = MultiKernel(config, 2)
        assert mk.cycles(read_ii=2) > 1.8 * mk.cycles(read_ii=1)
