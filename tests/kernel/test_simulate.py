"""Cycle-accurate kernel simulation: numerics and machine behaviour."""

import pytest

from repro.core.coefficients import AdvectionCoefficients
from repro.core.grid import Grid
from repro.core.reference import advect_reference
from repro.core.wind import random_wind
from repro.kernel.config import KernelConfig
from repro.kernel.simulate import simulate_kernel


@pytest.fixture(scope="module")
def sim_setup():
    grid = Grid(nx=5, ny=7, nz=5)
    fields = random_wind(grid, seed=17, magnitude=2.0)
    coeffs = AdvectionCoefficients.isothermal(grid)
    config = KernelConfig(grid=grid, chunk_width=3)
    result = simulate_kernel(config, fields, coeffs)
    return grid, fields, coeffs, config, result


class TestNumerics:
    def test_bitwise_equal_to_reference(self, sim_setup):
        grid, fields, coeffs, config, result = sim_setup
        assert result.sources.max_abs_difference(
            advect_reference(fields, coeffs)) == 0.0

    def test_all_chunks_ran(self, sim_setup):
        _, _, _, config, result = sim_setup
        assert len(result.chunk_stats) == config.chunk_plan().num_chunks


class TestMachineBehaviour:
    def test_port_budget_enforced_during_run(self, sim_setup):
        _, _, _, _, result = sim_setup
        assert result.port_tracker.worst_case <= 2

    def test_steady_state_one_result_per_cycle(self):
        """With II=1 the advect stages fire once per cycle in steady state."""
        grid = Grid(nx=4, ny=4, nz=8)
        fields = random_wind(grid, seed=2)
        config = KernelConfig(grid=grid, chunk_width=64)
        result = simulate_kernel(config, fields)
        stats = result.chunk_stats[0]
        feeds = (grid.nx + 2) * (grid.ny + 2) * grid.nz
        # Shift buffer consumes one value per cycle: fires == feeds, and the
        # run is only slightly longer than the feed count.
        assert stats.fires["shift_buffer"] == feeds
        assert stats.cycles <= feeds + 60

    def test_uram_ii2_halves_throughput(self):
        """Section III-A: URAM's read-write dependency forces II=2, halving
        performance — 'as such we considered it unacceptable'."""
        grid = Grid(nx=4, ny=4, nz=6)
        fields = random_wind(grid, seed=2)
        fast = simulate_kernel(KernelConfig(grid=grid, chunk_width=64),
                               fields)
        slow = simulate_kernel(
            KernelConfig(grid=grid, chunk_width=64, shift_buffer_ii=2),
            fields)
        assert slow.total_cycles == pytest.approx(2 * fast.total_cycles,
                                                  rel=0.15)
        # And the numerics are unharmed.
        assert slow.sources.max_abs_difference(fast.sources) == 0.0

    def test_memory_starved_read_slows_kernel(self):
        grid = Grid(nx=4, ny=4, nz=6)
        fields = random_wind(grid, seed=2)
        config = KernelConfig(grid=grid, chunk_width=64)
        fast = simulate_kernel(config, fields, read_ii=1)
        slow = simulate_kernel(config, fields, read_ii=2)
        assert slow.total_cycles > 1.8 * fast.total_cycles

    def test_runtime_seconds(self, sim_setup):
        _, _, _, _, result = sim_setup
        assert result.runtime_seconds(300e6) == pytest.approx(
            result.total_cycles / 300e6)
        with pytest.raises(ValueError):
            result.runtime_seconds(0.0)

    def test_cells_per_cycle_below_one(self, sim_setup):
        _, _, _, _, result = sim_setup
        assert 0.0 < result.cells_per_cycle < 1.0

    def test_grid_mismatch_rejected(self):
        config = KernelConfig(grid=Grid(nx=4, ny=4, nz=4))
        fields = random_wind(Grid(nx=5, ny=4, nz=4), seed=0)
        with pytest.raises(ValueError):
            simulate_kernel(config, fields)
