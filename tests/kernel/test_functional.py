"""Functional kernel execution vs the reference (chunking correctness)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coefficients import AdvectionCoefficients
from repro.core.grid import Grid
from repro.core.reference import advect_reference
from repro.core.wind import random_wind, thermal_bubble
from repro.kernel.config import KernelConfig
from repro.kernel.functional import execute_chunked, execute_shiftbuffer
from repro.shiftbuffer.ports import MemoryPortTracker


class TestChunkedExecution:
    # Width 1 is rejected up front (chunk_width must exceed the halo);
    # 2 is the narrowest legal chunk.
    @pytest.mark.parametrize("chunk_width", [2, 3, 5, 7, 64])
    def test_equals_reference_any_chunk_width(self, chunk_width):
        """Fig. 4's claim: chunking changes resources, never results."""
        grid = Grid(nx=5, ny=11, nz=6)
        fields = random_wind(grid, seed=8)
        config = KernelConfig(grid=grid, chunk_width=chunk_width)
        reference = advect_reference(fields)
        assert execute_chunked(config, fields).max_abs_difference(
            reference) == 0.0

    def test_isothermal_coefficients(self):
        grid = Grid(nx=4, ny=9, nz=5)
        fields = thermal_bubble(grid)
        coeffs = AdvectionCoefficients.isothermal(grid)
        config = KernelConfig(grid=grid, chunk_width=4)
        assert execute_chunked(config, fields, coeffs).max_abs_difference(
            advect_reference(fields, coeffs)) == 0.0

    def test_chunk_wider_than_domain(self):
        grid = Grid(nx=4, ny=3, nz=4)
        fields = random_wind(grid, seed=1)
        config = KernelConfig(grid=grid, chunk_width=100)
        assert execute_chunked(config, fields).max_abs_difference(
            advect_reference(fields)) == 0.0

    @settings(max_examples=15, deadline=None)
    @given(ny=st.integers(1, 14), chunk_width=st.integers(2, 8),
           seed=st.integers(0, 10_000))
    def test_property_chunked_equals_unchunked(self, ny, chunk_width, seed):
        grid = Grid(nx=4, ny=ny, nz=4)
        fields = random_wind(grid, seed=seed)
        config = KernelConfig(grid=grid, chunk_width=chunk_width)
        assert execute_chunked(config, fields).max_abs_difference(
            advect_reference(fields)) == 0.0


class TestShiftBufferExecution:
    def test_equals_reference_bitwise(self):
        grid = Grid(nx=5, ny=8, nz=5)
        fields = random_wind(grid, seed=21, magnitude=3.0)
        coeffs = AdvectionCoefficients.isothermal(grid)
        config = KernelConfig(grid=grid, chunk_width=3)
        result = execute_shiftbuffer(config, fields, coeffs)
        assert result.max_abs_difference(
            advect_reference(fields, coeffs)) == 0.0

    def test_single_chunk(self):
        grid = Grid(nx=4, ny=4, nz=4)
        fields = random_wind(grid, seed=3)
        config = KernelConfig(grid=grid, chunk_width=64)
        assert execute_shiftbuffer(config, fields).max_abs_difference(
            advect_reference(fields)) == 0.0

    def test_port_budget_respected_throughout(self):
        grid = Grid(nx=4, ny=7, nz=4)
        fields = random_wind(grid, seed=4)
        config = KernelConfig(grid=grid, chunk_width=3)
        tracker = MemoryPortTracker(enforce=True)  # raises on violation
        execute_shiftbuffer(config, fields, tracker=tracker)
        assert tracker.worst_case == 2

    def test_unpartitioned_layout_reports_conflicts(self):
        grid = Grid(nx=4, ny=4, nz=4)
        fields = random_wind(grid, seed=4)
        config = KernelConfig(grid=grid, chunk_width=4, partitioned=False)
        tracker = MemoryPortTracker(enforce=False)
        result = execute_shiftbuffer(config, fields, tracker=tracker)
        # Numerics still correct; the hardware would just need II >= 2.
        assert result.max_abs_difference(advect_reference(fields)) == 0.0
        assert tracker.achievable_ii() > 1
