"""Window-based advection arithmetic vs the scalar specification."""

import numpy as np
import pytest

from repro.core.coefficients import AdvectionCoefficients
from repro.core.golden import advect_cell
from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.kernel.compute import (
    UNIQUE_STENCIL_POINTS,
    advect_cell_windows,
    advect_u,
    advect_v,
    advect_w,
)
from repro.shiftbuffer.window import StencilWindow


def window_at(arr, i, j, k, *, top=False):
    """Build a StencilWindow presenting arr's true neighbourhood of (i,j,k)."""
    raw = np.zeros((3, 3, 3))
    for s in range(3):
        for dy in range(3):
            for dz in range(3):
                kk = k - dz + (0 if top else 1)
                if 0 <= kk < arr.shape[2]:
                    raw[s, dy, dz] = arr[i + 1 - s, j + 1 - dy, kk]
                else:
                    raw[s, dy, dz] = np.nan  # stale register
    return StencilWindow(raw=raw, center=(i, j, k), top=top)


@pytest.fixture
def setup():
    grid = Grid(nx=5, ny=5, nz=6)
    fields = random_wind(grid, seed=99, magnitude=2.0)
    coeffs = AdvectionCoefficients.isothermal(grid)
    return grid, fields, coeffs


class TestAgainstGolden:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_interior_levels_bitwise(self, setup, k):
        grid, fields, coeffs = setup
        for i in (1, 2, 3):
            for j in (1, 2, 3):
                wu = window_at(fields.u, i, j, k)
                wv = window_at(fields.v, i, j, k)
                ww = window_at(fields.w, i, j, k)
                su, sv, sw = advect_cell_windows(wu, wv, ww, coeffs, k,
                                                 grid.nz)
                gu, gv, gw = advect_cell(fields.u, fields.v, fields.w,
                                         coeffs, i, j, k, grid.nz)
                assert su == gu and sv == gv and sw == gw

    def test_column_top_bitwise(self, setup):
        grid, fields, coeffs = setup
        k = grid.nz - 1
        for i in (1, 3):
            for j in (2, 3):
                wu = window_at(fields.u, i, j, k, top=True)
                wv = window_at(fields.v, i, j, k, top=True)
                ww = window_at(fields.w, i, j, k, top=True)
                su, sv, sw = advect_cell_windows(wu, wv, ww, coeffs, k,
                                                 grid.nz)
                gu, gv, gw = advect_cell(fields.u, fields.v, fields.w,
                                         coeffs, i, j, k, grid.nz)
                assert su == gu and sv == gv
                assert sw == 0.0 == gw

    def test_top_never_touches_stale_plane(self, setup):
        """Top windows carry NaN in the dk=+1 registers; any illegal read
        would poison the result."""
        grid, fields, coeffs = setup
        k = grid.nz - 1
        wu = window_at(fields.u, 2, 2, k, top=True)
        wv = window_at(fields.v, 2, 2, k, top=True)
        ww = window_at(fields.w, 2, 2, k, top=True)
        su, sv, sw = advect_cell_windows(wu, wv, ww, coeffs, k, grid.nz)
        assert np.isfinite(su) and np.isfinite(sv) and np.isfinite(sw)


class TestFieldFunctions:
    def test_w_zero_at_top(self, setup):
        grid, fields, coeffs = setup
        k = grid.nz - 1
        wu = window_at(fields.u, 2, 2, k, top=True)
        wv = window_at(fields.v, 2, 2, k, top=True)
        ww = window_at(fields.w, 2, 2, k, top=True)
        assert advect_w(wu, wv, ww, coeffs, k, grid.nz) == 0.0

    def test_individual_functions_match_tuple(self, setup):
        grid, fields, coeffs = setup
        wu = window_at(fields.u, 2, 2, 2)
        wv = window_at(fields.v, 2, 2, 2)
        ww = window_at(fields.w, 2, 2, 2)
        tup = advect_cell_windows(wu, wv, ww, coeffs, 2, grid.nz)
        assert tup[0] == advect_u(wu, wv, ww, coeffs, 2, grid.nz)
        assert tup[1] == advect_v(wu, wv, ww, coeffs, 2, grid.nz)
        assert tup[2] == advect_w(wu, wv, ww, coeffs, 2, grid.nz)

    def test_unique_stencil_points_documented(self):
        # The paper: "typically only 8 unique values of the 27 point 3D
        # stencil are required for each field advection".
        assert UNIQUE_STENCIL_POINTS["u"] == 8
        assert UNIQUE_STENCIL_POINTS["v"] == 8
