"""The HLS-style synthesis report."""

import pytest

from repro.core.grid import Grid
from repro.hardware import ALVEO_U280, STRATIX10_GX2800
from repro.kernel.config import KernelConfig
from repro.kernel.report import synthesis_report


@pytest.fixture
def grid():
    return Grid.from_cells(16 * 1024 * 1024)


class TestCleanDesign:
    def test_no_warnings_and_ii1(self, grid):
        report = synthesis_report(KernelConfig(grid=grid), ALVEO_U280)
        assert report.achieved_ii == 1
        assert report.timing_met
        assert report.warnings == []

    def test_paper_fit_and_clock(self, grid):
        report = synthesis_report(KernelConfig(grid=grid), ALVEO_U280)
        assert report.kernels_fit == 6
        assert report.clock_mhz == 300.0
        assert report.theoretical_gflops == pytest.approx(18.86, abs=0.01)

    def test_stratix_multi_kernel_clock_reported(self, grid):
        report = synthesis_report(KernelConfig(grid=grid), STRATIX10_GX2800)
        assert report.kernels_fit == 5
        assert report.clock_mhz == 250.0  # the multi-kernel derated clock

    def test_render_contains_key_lines(self, grid):
        text = synthesis_report(KernelConfig(grid=grid), ALVEO_U280).render()
        assert "initiation interval (II) : 1" in text
        assert "replicas that fit" in text
        assert "warnings: none" in text


class TestWarnings:
    def test_unpartitioned_raises_ii_to_three(self, grid):
        report = synthesis_report(
            KernelConfig(grid=grid, partitioned=False), ALVEO_U280)
        assert report.achieved_ii == 3
        assert not report.timing_met
        assert any("partition" in w for w in report.warnings)

    def test_uram_ii2_warning(self, grid):
        report = synthesis_report(
            KernelConfig(grid=grid, shift_buffer_ii=2), ALVEO_U280)
        assert report.achieved_ii == 2
        assert any("II=2" in w for w in report.warnings)
        # Theoretical peak halves with II=2 (the paper's 'unacceptable').
        clean = synthesis_report(KernelConfig(grid=grid), ALVEO_U280)
        assert report.theoretical_gflops == pytest.approx(
            clean.theoretical_gflops / 2)

    def test_narrow_chunk_warning(self, grid):
        report = synthesis_report(
            KernelConfig(grid=grid, chunk_width=4), ALVEO_U280)
        assert any("burst" in w for w in report.warnings)

    def test_warnings_render(self, grid):
        text = synthesis_report(
            KernelConfig(grid=grid, partitioned=False), ALVEO_U280).render()
        assert "! " in text
