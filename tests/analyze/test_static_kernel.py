"""The static kernel-cycle bound versus the cycle-accurate simulator."""

import pytest

from repro.analyze import interpret, static_kernel_cycles
from repro.analyze.kernel import static_kernel_cycles as direct_import
from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.kernel.config import KernelConfig
from repro.kernel.simulate import simulate_kernel
from repro.lint.builders import build_structural_graph


class TestStaticKernelCycles:
    def test_sums_one_interp_per_distinct_chunk_width(self):
        grid = Grid(nx=6, ny=9, nz=5)
        config = KernelConfig(grid=grid, chunk_width=4)
        graph = build_structural_graph(config)
        plan = config.chunk_plan()
        expected = sum(
            interpret(graph, (grid.nx + 2) * grid.nz
                      * chunk.read_width).cycles
            for chunk in plan.chunks)
        assert static_kernel_cycles(config) == expected

    @pytest.mark.parametrize("dims", [(6, 9, 5), (8, 12, 6)])
    def test_tracks_the_measured_count_to_within_one_cycle_per_chunk(
            self, dims):
        grid = Grid(nx=dims[0], ny=dims[1], nz=dims[2])
        config = KernelConfig(grid=grid, chunk_width=4)
        fields = random_wind(grid, seed=3)
        measured = simulate_kernel(config, fields).total_cycles
        static = static_kernel_cycles(config)
        chunks = len(config.chunk_plan().chunks)
        # The structural Fig. 2 graph is the control machine the shift
        # buffer implements; the real kernel pays at most one extra
        # restart cycle per chunk on top of it.
        assert 0 <= measured - static <= chunks
        assert abs(measured - static) / measured < 0.01

    def test_grid_override_rescales_the_bound(self):
        config = KernelConfig(grid=Grid(nx=6, ny=9, nz=5), chunk_width=4)
        small = static_kernel_cycles(config)
        large = static_kernel_cycles(config, grid=Grid(nx=12, ny=9, nz=5))
        assert large > small

    def test_read_ii_throttles_the_bound(self):
        config = KernelConfig(grid=Grid(nx=6, ny=9, nz=5), chunk_width=4)
        assert (static_kernel_cycles(config, read_ii=2)
                > static_kernel_cycles(config))

    def test_package_export(self):
        assert static_kernel_cycles is direct_import


class TestTuneIntegration:
    def test_evaluation_carries_the_proved_bound(self):
        from repro.hardware import ALVEO_U280
        from repro.tune.cost import CostModel
        from repro.tune.space import TunePoint

        grid = Grid(nx=8, ny=12, nz=6)
        model = CostModel(ALVEO_U280, grid)
        point = TunePoint(chunk_width=4, num_kernels=1, stream_depth=4,
                          precision="float64", memory="hbm2", x_chunks=4,
                          overlapped=True)
        evaluation = model.evaluate(point)
        assert evaluation.feasible
        assert evaluation.static_cycles == static_kernel_cycles(
            point.config(grid))
        assert evaluation.to_dict()["static_cycles"] > 0

    def test_measured_result_reports_the_static_error(self):
        from repro.hardware import ALVEO_U280
        from repro.tune.cost import CostModel
        from repro.tune.measure import measure_one
        from repro.tune.space import TunePoint

        grid = Grid(nx=8, ny=12, nz=6)
        model = CostModel(ALVEO_U280, grid)
        point = TunePoint(chunk_width=4, num_kernels=1, stream_depth=4,
                          precision="float64", memory="hbm2", x_chunks=4,
                          overlapped=True)
        result = measure_one(model.evaluate(point), grid, seed=0,
                             clock_hz=300e6)
        assert result.static_cycles > 0
        # The proof tracks the measurement far tighter than 1%.
        assert result.static_error < 0.01
        assert "static_error" in result.to_dict()
