"""Shared structural graphs for the static-verifier tests."""

from repro.dataflow.graph import DataflowGraph
from repro.lint.spec import SpecStage


def chain_graph(n_stages: int = 3, *, latency: int = 2, ii: int = 1,
                depth: int = 4) -> DataflowGraph:
    """src -> s0 -> ... -> sink, all unit rate."""
    graph = DataflowGraph("chain")
    graph.add(SpecStage("src", outputs=("out",), latency=1))
    previous = "src"
    for index in range(n_stages):
        name = f"s{index}"
        graph.add(SpecStage(name, inputs=("in",), outputs=("out",),
                            ii=ii, latency=latency))
        graph.connect(previous, "out", name, "in", depth=depth)
        previous = name
    graph.add(SpecStage("sink", inputs=("in",)))
    graph.connect(previous, "out", "sink", "in", depth=depth)
    return graph


def fork_join_graph(*, fast_depth: int = 2, slow_latency: int = 20,
                    depth: int = 2) -> DataflowGraph:
    """src -> fork -> {direct a, slow b} -> join -> sink.

    With ``fast_depth`` well below ``slow_latency`` the direct branch
    fills and backpressures the fork: the canonical under-depth
    reconvergence the prover must flag as throughput collapse.
    """
    graph = DataflowGraph("forkjoin")
    graph.add(SpecStage("src", outputs=("out",), latency=1))
    graph.add(SpecStage("fork", inputs=("in",), outputs=("a", "b"),
                        latency=1))
    graph.add(SpecStage("slow", inputs=("in",), outputs=("out",),
                        latency=slow_latency))
    graph.add(SpecStage("join", inputs=("a", "b"), outputs=("out",),
                        latency=1))
    graph.add(SpecStage("sink", inputs=("in",)))
    graph.connect("src", "out", "fork", "in", depth=depth)
    graph.connect("fork", "a", "join", "a", depth=fast_depth)
    graph.connect("fork", "b", "slow", "in", depth=depth)
    graph.connect("slow", "out", "join", "b", depth=depth)
    graph.connect("join", "out", "sink", "in", depth=depth)
    return graph
