"""Schedule analyzer: the start-cycle DP is exact, not a bound."""

from repro.analyze import analyze_schedule, interpret, start_cycles
from repro.dataflow.graph import DataflowGraph
from repro.lint.spec import SpecStage

from .conftest import chain_graph, fork_join_graph


class TestStartCycleDP:
    def test_dp_equals_observed_first_fires(self):
        for graph in (chain_graph(4, latency=3),
                      fork_join_graph(fast_depth=25, slow_latency=20)):
            timing = start_cycles(graph)
            run = interpret(graph, 40)
            for name, (_, start) in timing.items():
                assert run.first_fire[name] == start, name

    def test_levels_follow_topology(self):
        timing = start_cycles(fork_join_graph())
        levels = {name: level for name, (level, _) in timing.items()}
        assert levels["src"] == 0
        assert levels["fork"] == 1
        assert levels["join"] == 3  # behind the slow branch
        assert levels["sink"] == 4

    def test_join_start_is_the_slowest_branch(self):
        timing = start_cycles(fork_join_graph(slow_latency=20))
        # src(1) + fork(1) + slow(20) = 22.
        assert timing["join"][1] == 22


class TestTotals:
    def test_stall_free_total_matches_the_closed_form(self):
        sched = analyze_schedule(chain_graph(3, latency=3), 50)
        assert sched.stall_free
        assert sched.total_cycles == sched.analytic_total
        assert sched.analytic_total == (sched.prime_latency
                                        + 49 * sched.ideal_period + 2)
        assert sched.stall_overhead == 0

    def test_backpressure_shows_as_proved_overhead(self):
        sched = analyze_schedule(
            fork_join_graph(fast_depth=2, slow_latency=20), 50)
        assert not sched.stall_free
        assert sched.total_cycles > sched.analytic_total
        assert sched.stall_overhead == (sched.total_cycles
                                        - sched.analytic_total)

    def test_ii_sets_the_ideal_period(self):
        sched = analyze_schedule(chain_graph(2, ii=3), 30)
        assert sched.ideal_period == 3
        assert sched.total_cycles == sched.analytic_total

    def test_zero_tokens_is_the_quiescence_cycle(self):
        sched = analyze_schedule(chain_graph(2), 0)
        assert sched.analytic_total == 1
        assert sched.total_cycles == 1


class TestSchema:
    def test_to_dict_lists_every_stage(self):
        graph = fork_join_graph()
        sched = analyze_schedule(graph, 20)
        data = sched.to_dict()
        assert set(data["stages"]) == {s.name for s in graph.stages}
        for record in data["stages"].values():
            assert set(record) == {"name", "level", "start_cycle", "ii",
                                   "latency"}

    def test_empty_source_only_graph(self):
        graph = DataflowGraph("lonely")
        graph.add(SpecStage("a", outputs=("out",)))
        graph.add(SpecStage("b", inputs=("in",)))
        graph.connect("a", "out", "b", "in")
        sched = analyze_schedule(graph, 5)
        assert sched.prime_latency == 1
