"""Property tests: on random acyclic graphs the proofs equal the engine.

Random small layered DAGs (every stage reachable from a source, every
port wired exactly once) are pushed through both the abstract
interpreter and the exact :class:`DataflowEngine` on the token twin.
The analyzer's total-cycle claim must equal the measured count exactly,
and deadlock-safe graphs must complete within the engine's watchdog.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze import analyze_graph, build_token_twin, interpret
from repro.dataflow.engine import DataflowEngine
from repro.dataflow.graph import DataflowGraph
from repro.lint.spec import SpecStage


@st.composite
def random_dag(draw):
    """A random layered DAG of unit-rate relays with random timing."""
    n_layers = draw(st.integers(1, 3))
    widths = [draw(st.integers(1, 3)) for _ in range(n_layers)]
    graph = DataflowGraph("prop")
    graph.add(SpecStage("src", outputs=("out",),
                        latency=draw(st.integers(1, 4))))
    previous = ["src.out"]
    for layer, width in enumerate(widths):
        for index in range(width):
            name = f"l{layer}n{index}"
            # Each node consumes one open upstream output and opens one
            # or two of its own, so the pool never runs dry (and wiring
            # only ever points at earlier-created nodes: acyclic).
            n_outs = draw(st.integers(1, 2))
            graph.add(SpecStage(
                name,
                inputs=("in",),
                outputs=tuple(f"o{k}" for k in range(n_outs)),
                ii=draw(st.integers(1, 2)),
                latency=draw(st.integers(1, 6)),
            ))
            src_stage, src_port = draw(st.sampled_from(previous)).split(".")
            previous.remove(f"{src_stage}.{src_port}")
            graph.connect(src_stage, src_port, name, "in",
                          depth=draw(st.integers(1, 6)))
            previous.extend(f"{name}.o{k}" for k in range(n_outs))
    # A fan-in sink drains every remaining open output port.
    graph.add(SpecStage("sink",
                        inputs=tuple(f"i{k}" for k in range(len(previous)))))
    for k, endpoint in enumerate(previous):
        src_stage, src_port = endpoint.split(".")
        graph.connect(src_stage, src_port, "sink", f"i{k}",
                      depth=draw(st.integers(1, 6)))
    tokens = draw(st.integers(0, 60))
    return graph, tokens


@settings(max_examples=60, deadline=None)
@given(random_dag())
def test_analyzer_total_equals_engine_measured(params):
    graph, tokens = params
    report = analyze_graph(graph, tokens)
    stats = DataflowEngine(build_token_twin(graph, tokens)).run()
    assert report.schedule.total_cycles == stats.cycles
    assert report.occupancy.safe


@settings(max_examples=40, deadline=None)
@given(random_dag())
def test_safe_graphs_complete_under_the_engine_watchdog(params):
    graph, tokens = params
    report = analyze_graph(graph, tokens)
    assert report.safe
    # The proved total *is* a sound watchdog budget: the engine finishes
    # within it (+1 for the watchdog's >= check firing post-cycle).
    budget = report.schedule.total_cycles + 1
    stats = DataflowEngine(build_token_twin(graph, tokens),
                           watchdog=budget).run()
    assert stats.cycles <= budget


@settings(max_examples=40, deadline=None)
@given(random_dag())
def test_acceleration_never_changes_the_proof(params):
    graph, tokens = params
    fast = interpret(graph, tokens, accelerate=True)
    slow = interpret(graph, tokens, accelerate=False)
    assert fast.cycles == slow.cycles
    assert fast.fires == slow.fires
    assert fast.stream_high_water == slow.stream_high_water
    assert fast.stream_full_stalls == slow.stream_full_stalls


@settings(max_examples=30, deadline=None)
@given(random_dag(), st.integers(0, 40))
def test_minimal_depths_are_sufficient_and_token_independent(params, extra):
    graph, tokens = params
    report = analyze_graph(graph, tokens)
    larger = analyze_graph(graph, tokens + extra)
    if report.occupancy.period is not None and extra == 0:
        assert (report.occupancy.minimal_depths()
                == larger.occupancy.minimal_depths())
    # Rebuild the same graph with the proved minimal depths: stall-free.
    rebuilt = DataflowGraph(graph.name)
    for stage in graph.stages:
        rebuilt.add(SpecStage(stage.name, inputs=stage.input_ports,
                              outputs=stage.output_ports, ii=stage.ii,
                              latency=stage.latency))
    depths = report.occupancy.minimal_depths()
    for conn in graph.connections():
        rebuilt.connect(conn.src.name, conn.src_port, conn.dst.name,
                        conn.dst_port, depth=depths[conn.stream.name])
    fixed = analyze_graph(rebuilt, tokens)
    assert fixed.occupancy.stall_free
