"""The abstract interpreter mirrors the exact engine byte for byte."""

import pytest

from repro.analyze import build_token_twin, default_tokens, interpret
from repro.dataflow.engine import DataflowEngine
from repro.dataflow.graph import DataflowGraph
from repro.errors import AnalyzeError
from repro.lint.spec import SpecStage

from .conftest import chain_graph, fork_join_graph


def engine_run(graph, tokens):
    return DataflowEngine(build_token_twin(graph, tokens)).run()


class TestEngineEquivalence:
    """interpret(graph) == DataflowEngine(token twin) on every counter."""

    @pytest.mark.parametrize("tokens", [0, 1, 2, 7, 60])
    def test_chain_cycles_and_fires(self, tokens):
        graph = chain_graph(3, latency=3, depth=4)
        run = interpret(graph, tokens)
        stats = engine_run(graph, tokens)
        assert run.cycles == stats.cycles
        assert run.fires == stats.fires

    @pytest.mark.parametrize("fast_depth", [2, 4, 25])
    def test_fork_join_cycles_match_even_under_backpressure(self,
                                                            fast_depth):
        graph = fork_join_graph(fast_depth=fast_depth, slow_latency=20)
        tokens = 50
        run = interpret(graph, tokens)
        stats = engine_run(graph, tokens)
        assert run.cycles == stats.cycles
        assert run.fires == stats.fires

    def test_stall_counters_match(self):
        graph = fork_join_graph(fast_depth=2, slow_latency=20)
        run = interpret(graph, 40)
        stats = engine_run(graph, 40)
        for name, counts in run.stalls.items():
            assert counts["input"] == stats.stalls[name]["input"]
            assert counts["output"] == stats.stalls[name]["output"]
            assert counts["ii"] == stats.stalls[name]["ii"]
            assert counts["pipeline"] == stats.stalls[name]["pipeline"]

    @pytest.mark.parametrize("ii", [1, 2, 3])
    def test_ii_limited_chain_matches(self, ii):
        graph = chain_graph(2, latency=2, ii=ii, depth=3)
        run = interpret(graph, 30)
        stats = engine_run(graph, 30)
        assert run.cycles == stats.cycles


class TestAcceleration:
    """Periodicity acceleration changes cost, never results."""

    @pytest.mark.parametrize("graph_fn", [
        lambda: chain_graph(3, latency=4, depth=4),
        lambda: fork_join_graph(fast_depth=2, slow_latency=20),
        lambda: fork_join_graph(fast_depth=25, slow_latency=20),
    ])
    def test_accelerated_equals_exact(self, graph_fn):
        graph = graph_fn()
        fast = interpret(graph, 200, accelerate=True)
        slow = interpret(graph, 200, accelerate=False)
        assert fast.cycles == slow.cycles
        assert fast.fires == slow.fires
        assert fast.stream_high_water == slow.stream_high_water
        assert fast.advances > 0
        assert slow.advances == 0

    def test_acceleration_makes_cost_token_independent(self):
        graph = chain_graph(2, latency=2)
        small = interpret(graph, 1_000)
        large = interpret(graph, 1_000_000)
        # Same transient + period work; only the analytic jump differs.
        assert large.cycles - small.cycles == 999_000
        assert large.advances <= small.advances + 2


class TestPeriodProof:
    def test_unit_rate_chain_has_period_one(self):
        run = interpret(chain_graph(3), 100)
        assert run.period is not None
        assert run.period.cycles == run.period.tokens_per_period

    def test_under_depth_fork_join_period_is_collapsed(self):
        run = interpret(fork_join_graph(fast_depth=2, slow_latency=20), 100)
        assert run.period is not None
        # Sustained rate is worse than 1 token/cycle: the proof shows it.
        assert run.period.cycles > run.period.tokens_per_period


class TestWitnesses:
    def test_stall_free_run_has_no_witness(self):
        run = interpret(chain_graph(3), 50)
        assert run.safe and run.first_stall is None
        assert all(n == 0 for n in run.stream_full_stalls.values())

    def test_backpressure_witness_names_the_full_stream(self):
        run = interpret(fork_join_graph(fast_depth=2, slow_latency=20), 50)
        assert run.safe  # marked-graph liveness: it still completes
        assert run.first_stall is not None
        assert run.first_stall.kind == "backpressure"
        assert "fork.a->join.a" in run.first_stall.describe()
        occupancy, depth = run.first_stall.streams["fork.a->join.a"]
        assert occupancy == depth == 2


class TestUnboundedMode:
    def test_unbounded_high_water_is_the_minimal_depth(self):
        graph = fork_join_graph(fast_depth=2, slow_latency=20)
        run = interpret(graph, 100, bounded=False)
        # The fast branch must buffer the whole latency skew.
        assert run.stream_high_water["fork.a->join.a"] == 21
        assert all(n == 0 for n in run.stream_full_stalls.values())

    def test_unbounded_run_is_stall_free_by_construction(self):
        run = interpret(fork_join_graph(fast_depth=2), 60, bounded=False)
        assert run.cycles < interpret(
            fork_join_graph(fast_depth=2), 60).cycles


class TestGuards:
    def test_negative_tokens_rejected(self):
        with pytest.raises(AnalyzeError, match="tokens"):
            interpret(chain_graph(1), -1)

    def test_structurally_broken_graph_rejected(self):
        graph = DataflowGraph("broken")
        graph.add(SpecStage("src", outputs=("out",)))
        with pytest.raises(AnalyzeError, match="not analyzable"):
            interpret(graph, 4)

    def test_default_tokens_reaches_steady_state(self):
        graph = chain_graph(4, latency=6)
        run = interpret(graph, default_tokens(graph))
        assert run.period is not None

    def test_to_dict_round_trips_key_fields(self):
        run = interpret(chain_graph(2), 20)
        data = run.to_dict()
        assert data["cycles"] == run.cycles
        assert data["safe"] is True
        assert set(data["fires"]) == set(run.fires)
