"""Acceptance: the shipped example specs are proved safe and exact.

For both paper deployments (``advection_u280.json`` and
``advection_stratix10.json``) the analyzer must prove deadlock-freedom
and predict the total cycle count the exact engine measures on the token
twin — byte for byte, no tolerance.
"""

import pathlib

import pytest

from repro.analyze import analyze_graph, build_token_twin
from repro.dataflow.engine import DataflowEngine
from repro.lint.spec import load_spec

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples" / "graphs"
PAPER_SPECS = ["advection_u280.json", "advection_stratix10.json"]


@pytest.mark.parametrize("name", PAPER_SPECS + ["fig2_explicit.json"])
class TestExampleSpecs:
    def test_proved_deadlock_free_at_ideal_rate(self, name):
        target = load_spec(EXAMPLES / name)
        report = analyze_graph(target.context.graph)
        assert report.ok
        assert report.occupancy.stall_free
        assert report.schedule.ideal_period == 1
        assert report.occupancy.period.cycles == 1

    def test_predicted_total_matches_the_engine_exactly(self, name):
        target = load_spec(EXAMPLES / name)
        report = analyze_graph(target.context.graph)
        twin = build_token_twin(target.context.graph, report.tokens)
        stats = DataflowEngine(twin).run()
        assert report.schedule.total_cycles == stats.cycles
        assert report.schedule.total_cycles == report.schedule.analytic_total

    def test_configured_depths_carry_headroom_not_waste(self, name):
        target = load_spec(EXAMPLES / name)
        report = analyze_graph(target.context.graph)
        verdicts = {s.verdict
                    for s in report.occupancy.streams.values()}
        assert verdicts <= {"ok", "exact"}


def test_both_paper_devices_prove_the_same_control_machine():
    """Same Fig. 2 graph shape on both devices: identical proofs."""
    reports = [analyze_graph(load_spec(EXAMPLES / name).context.graph)
               for name in PAPER_SPECS]
    assert (reports[0].schedule.total_cycles
            == reports[1].schedule.total_cycles)
    assert (reports[0].occupancy.minimal_depths()
            == reports[1].occupancy.minimal_depths())
