"""Occupancy prover: minimal depths, collapse verdicts, witnesses."""

from repro.analyze import prove_occupancy
from repro.analyze.occupancy import OVERPROVISION_SLACK

from .conftest import chain_graph, fork_join_graph


class TestSafeGraphs:
    def test_chain_is_proved_safe_and_stall_free(self):
        proof = prove_occupancy(chain_graph(3))
        assert proof.safe and proof.stall_free
        assert not proof.throughput_collapsed
        assert proof.witness is None
        assert proof.overhead_cycles == 0

    def test_minimal_depths_are_one_on_a_unit_rate_chain(self):
        proof = prove_occupancy(chain_graph(3))
        assert set(proof.minimal_depths().values()) == {1}

    def test_verdicts_on_a_wellsized_chain(self):
        proof = prove_occupancy(chain_graph(2, depth=4))
        # depth 4 vs min_safe 1: within the overprovision slack.
        assert all(s.verdict == "ok" for s in proof.streams.values())

    def test_overprovisioned_depth_is_called_out(self):
        deep = OVERPROVISION_SLACK + 10
        proof = prove_occupancy(chain_graph(2, depth=deep))
        assert all(s.verdict == "over" for s in proof.streams.values())


class TestUnderDepthForkJoin:
    def test_collapse_is_proved_with_a_witness(self):
        proof = prove_occupancy(fork_join_graph(fast_depth=2,
                                                slow_latency=20))
        assert proof.safe  # completes — marked-graph liveness
        assert not proof.stall_free
        assert proof.throughput_collapsed
        assert proof.witness is not None
        assert proof.witness.kind == "backpressure"
        assert proof.overhead_cycles > 0

    def test_min_safe_is_the_latency_skew(self):
        proof = prove_occupancy(fork_join_graph(fast_depth=2,
                                                slow_latency=20))
        fast = proof.streams["fork.a->join.a"]
        assert fast.verdict == "under"
        assert fast.min_safe == 21
        assert proof.minimal_depths()["fork.a->join.a"] == 21

    def test_root_cause_is_isolated_to_the_under_stream(self):
        proof = prove_occupancy(fork_join_graph(fast_depth=2,
                                                slow_latency=20))
        under = [name for name, s in proof.streams.items()
                 if s.verdict == "under"]
        assert under == ["fork.a->join.a"]
        # Upstream FIFOs cascade full (src blocks behind the fork) but
        # are not themselves under-provisioned.
        src_stream = proof.streams["src.out->fork.in"]
        assert src_stream.full_stalls > 0 and src_stream.verdict != "under"

    def test_fixing_the_depths_restores_the_ideal_rate(self):
        bad = prove_occupancy(fork_join_graph(fast_depth=2,
                                              slow_latency=20))
        fixed_graph = fork_join_graph(fast_depth=bad.minimal_depths()[
            "fork.a->join.a"], slow_latency=20)
        good = prove_occupancy(fixed_graph)
        assert good.stall_free and not good.throughput_collapsed
        assert good.period is not None
        assert good.period.cycles == good.period.tokens_per_period


class TestProofObject:
    def test_to_dict_schema(self):
        proof = prove_occupancy(fork_join_graph(fast_depth=2))
        data = proof.to_dict()
        assert set(data) == {
            "graph", "tokens", "safe", "stall_free",
            "throughput_collapsed", "bounded_cycles", "unbounded_cycles",
            "overhead_cycles", "ideal_period", "deadlock", "first_stall",
            "period", "streams", "minimal_depths",
        }
        for record in data["streams"].values():
            assert set(record) == {"name", "depth", "min_safe",
                                   "high_water", "full_stalls", "verdict"}

    def test_proof_is_token_count_independent(self):
        small = prove_occupancy(fork_join_graph(fast_depth=2), 120)
        large = prove_occupancy(fork_join_graph(fast_depth=2), 500)
        assert small.minimal_depths() == large.minimal_depths()
        assert (small.throughput_collapsed
                == large.throughput_collapsed is True)
        assert small.period.cycles == large.period.cycles
