"""The ``repro analyze`` command: text/JSON output, --check, --fix-depths."""

import json
import pathlib

import pytest

from repro.cli import main

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples" / "graphs"

UNDERDEPTH_SPEC = {
    "name": "underdepth-forkjoin",
    "graph": {
        "stages": [
            {"name": "src", "outputs": ["out"], "latency": 1},
            {"name": "fork", "inputs": ["in"], "outputs": ["a", "b"],
             "latency": 1},
            {"name": "slow", "inputs": ["in"], "outputs": ["out"],
             "latency": 20},
            {"name": "join", "inputs": ["a", "b"], "outputs": ["out"],
             "latency": 1},
            {"name": "sink", "inputs": ["in"]},
        ],
        "streams": [
            {"src": "src.out", "dst": "fork.in", "depth": 2},
            {"src": "fork.a", "dst": "join.a", "depth": 2},
            {"src": "fork.b", "dst": "slow.in", "depth": 2},
            {"src": "slow.out", "dst": "join.b", "depth": 2},
            {"src": "join.out", "dst": "sink.in", "depth": 2},
        ],
    },
}


@pytest.fixture
def underdepth_path(tmp_path):
    path = tmp_path / "underdepth.json"
    path.write_text(json.dumps(UNDERDEPTH_SPEC))
    return path


class TestTextMode:
    def test_example_spec_is_proved_safe(self, capsys):
        assert main(["analyze",
                     str(EXAMPLES / "advection_u280.json")]) == 0
        out = capsys.readouterr().out
        assert "deadlock-free (proved), stall-free" in out
        assert "proved period: 1 cycle(s) / 1 token(s)" in out

    def test_check_cross_verifies_against_the_engine(self, capsys):
        assert main(["analyze", "--check",
                     str(EXAMPLES / "advection_stratix10.json")]) == 0
        assert "[MATCH]" in capsys.readouterr().out

    def test_flag_fallback_builds_the_advection_graph(self, capsys):
        assert main(["analyze", "--nx", "6", "--ny", "9", "--nz", "5",
                     "--chunk-width", "4"]) == 0
        assert "graph 'advection'" in capsys.readouterr().out

    def test_underdepth_spec_fails_with_a_witness(self, capsys,
                                                  underdepth_path):
        assert main(["analyze", str(underdepth_path)]) == 1
        out = capsys.readouterr().out
        assert "throughput collapse (proved)" in out
        assert "backpressure witness" in out
        assert "[under]" in out


class TestJsonMode:
    def test_payload_shape(self, capsys):
        assert main(["analyze", "--json", "--check",
                     str(EXAMPLES / "advection_u280.json")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        (report,) = payload["reports"]
        assert report["check"] is True
        assert report["engine_cycles"] == report["schedule"]["total_cycles"]
        assert report["occupancy"]["minimal_depths"]

    def test_underdepth_json_is_not_ok(self, capsys, underdepth_path):
        assert main(["analyze", "--json", str(underdepth_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        (report,) = payload["reports"]
        assert report["occupancy"]["throughput_collapsed"] is True
        assert report["safe"] is True  # completes, just collapsed


class TestFixDepths:
    def test_patch_round_trip_passes_analyzer_and_engine(
            self, capsys, tmp_path, underdepth_path):
        fixed = tmp_path / "fixed.json"
        assert main(["analyze", str(underdepth_path),
                     "--fix-depths", str(fixed)]) == 1
        capsys.readouterr()
        patched = json.loads(fixed.read_text())
        by_name = {f"{s['src']}->{s['dst']}": s["depth"]
                   for s in patched["graph"]["streams"]}
        assert by_name["fork.a->join.a"] == 21
        # The patched spec passes the analyzer AND the engine cross-check.
        assert main(["analyze", "--check", "--strict", str(fixed)]) == 0
        out = capsys.readouterr().out
        assert "stall-free" in out and "[MATCH]" in out

    def test_fix_depths_requires_exactly_one_spec(self, capsys, tmp_path):
        assert main(["analyze", "--fix-depths", str(tmp_path / "out.json"),
                     str(EXAMPLES / "advection_u280.json"),
                     str(EXAMPLES / "advection_stratix10.json")]) == 2
        assert "exactly one spec" in capsys.readouterr().err

    def test_derived_graph_spec_patches_the_scalar_depth(
            self, capsys, tmp_path):
        fixed = tmp_path / "fixed.json"
        assert main(["analyze", str(EXAMPLES / "advection_u280.json"),
                     "--fix-depths", str(fixed)]) == 0
        capsys.readouterr()
        patched = json.loads(fixed.read_text())
        assert patched["kernel"]["stream_depth"] == 1


class TestStrict:
    def test_rate_matched_stalls_fail_only_under_strict(self, capsys,
                                                        tmp_path):
        # A unit-rate source backpressured by an II-2 consumer: the FIFO
        # fills and the producer stalls, but the sustained rate equals
        # the ideal period (gated by the II, not the depths) — ok
        # normally, rejected under --strict.
        spec = {
            "name": "rate-matched",
            "graph": {
                "stages": [
                    {"name": "src", "outputs": ["out"], "latency": 1},
                    {"name": "slow", "inputs": ["in"], "outputs": ["out"],
                     "ii": 2, "latency": 1},
                    {"name": "sink", "inputs": ["in"]},
                ],
                "streams": [
                    {"src": "src.out", "dst": "slow.in", "depth": 2},
                    {"src": "slow.out", "dst": "sink.in", "depth": 2},
                ],
            },
        }
        path = tmp_path / "transient.json"
        path.write_text(json.dumps(spec))
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "transient stalls" in out
        assert main(["analyze", "--strict", str(path)]) == 1


class TestUsageErrors:
    def test_spec_without_graph_is_rejected(self, capsys, tmp_path):
        path = tmp_path / "nograph.json"
        path.write_text(json.dumps({"name": "n", "device": "u280"}))
        assert main(["analyze", str(path)]) == 2
        assert "declares no dataflow graph" in capsys.readouterr().err

    def test_partial_grid_flags_are_rejected(self, capsys):
        assert main(["analyze", "--nx", "6"]) == 2
        assert "together" in capsys.readouterr().err

    def test_unknown_cells_label_is_rejected(self, capsys):
        assert main(["analyze", "--cells", "999Z"]) == 2
        assert "unknown size" in capsys.readouterr().err

    def test_bad_spec_json_is_a_lint_error(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"graph\": {\"stages\": [{}]}}")
        assert main(["analyze", str(path)]) == 2
        assert "error:" in capsys.readouterr().err
