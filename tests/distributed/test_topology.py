"""Processor-grid topology and subdomain geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import Grid
from repro.distributed.topology import ProcessGrid
from repro.errors import ConfigurationError


@pytest.fixture
def topo():
    return ProcessGrid(global_grid=Grid(nx=12, ny=10, nz=4), px=3, py=2)


class TestRanks:
    def test_size(self, topo):
        assert topo.size == 6

    def test_rank_coords_roundtrip(self, topo):
        for rank in range(topo.size):
            i, j = topo.coords_of(rank)
            assert topo.rank_of(i, j) == rank

    def test_rank_of_is_periodic(self, topo):
        assert topo.rank_of(-1, 0) == topo.rank_of(2, 0)
        assert topo.rank_of(0, -1) == topo.rank_of(0, 1)
        assert topo.rank_of(3, 2) == topo.rank_of(0, 0)

    def test_coords_of_rejects_bad_rank(self, topo):
        with pytest.raises(ConfigurationError):
            topo.coords_of(6)


class TestNeighbours:
    def test_neighbour_symmetry(self, topo):
        for rank in range(topo.size):
            n = topo.neighbours(rank)
            assert topo.neighbours(n["west"])["east"] == rank
            assert topo.neighbours(n["south"])["north"] == rank

    def test_single_rank_self_neighbour(self):
        topo = ProcessGrid(global_grid=Grid(nx=4, ny=4, nz=4), px=1, py=1)
        assert set(topo.neighbours(0).values()) == {0}


class TestDomains:
    def test_coverage(self, topo):
        topo.validate_coverage()
        domains = topo.domains()
        assert sum(d.num_cells for d in domains) == 12 * 10 * 4

    def test_front_loaded_split(self):
        topo = ProcessGrid(global_grid=Grid(nx=7, ny=4, nz=4), px=3, py=1)
        widths = [d.nx for d in topo.domains()]
        assert widths == [3, 2, 2]

    def test_local_grid_spacings_inherited(self):
        g = Grid(nx=8, ny=8, nz=4, dx=25.0, dz=10.0)
        topo = ProcessGrid(global_grid=g, px=2, py=2)
        local = topo.domain(0).local_grid(g)
        assert local.dx == 25.0 and local.dz == 10.0
        assert local.interior_shape == (4, 4, 4)

    def test_rejects_oversubscription(self):
        with pytest.raises(ConfigurationError):
            ProcessGrid(global_grid=Grid(nx=2, ny=2, nz=4), px=3, py=1)

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ConfigurationError):
            ProcessGrid(global_grid=Grid(nx=4, ny=4, nz=4), px=0, py=1)


@settings(max_examples=40, deadline=None)
@given(nx=st.integers(2, 20), ny=st.integers(2, 20),
       px=st.integers(1, 6), py=st.integers(1, 6))
def test_property_tiling_is_exact(nx, ny, px, py):
    if px > nx or py > ny:
        return
    topo = ProcessGrid(global_grid=Grid(nx=nx, ny=ny, nz=3), px=px, py=py)
    topo.validate_coverage()
    # Ranges are contiguous and ordered.
    for j in range(py):
        xs = [topo.domain(topo.rank_of(i, j)).x_range for i in range(px)]
        assert xs[0][0] == 0 and xs[-1][1] == nx
        for a, b in zip(xs, xs[1:]):
            assert a[1] == b[0]
