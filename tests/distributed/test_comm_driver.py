"""Halo exchange and the distributed advection driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import Grid
from repro.core.reference import advect_reference
from repro.core.wind import random_wind, shear_layer
from repro.distributed import (
    CommCostModel,
    DistributedAdvection,
    LocalCluster,
    ProcessGrid,
)
from repro.errors import ConfigurationError


def make(nx=12, ny=10, nz=5, px=3, py=2):
    grid = Grid(nx=nx, ny=ny, nz=nz)
    topo = ProcessGrid(global_grid=grid, px=px, py=py)
    return grid, topo


class TestHaloExchange:
    def test_scatter_gather_roundtrip(self):
        grid, topo = make()
        fields = random_wind(grid, seed=1)
        cluster = LocalCluster(topo)
        cluster.scatter(fields)
        np.testing.assert_array_equal(cluster.gather("u"),
                                      fields.interior("u"))
        np.testing.assert_array_equal(cluster.gather("w"),
                                      fields.interior("w"))

    def test_halos_match_periodic_global(self):
        """After the exchange every rank's local halo equals the
        periodic-global neighbourhood of its block."""
        grid, topo = make()
        fields = random_wind(grid, seed=2)
        cluster = LocalCluster(topo)
        cluster.scatter(fields)
        cluster.halo_exchange()

        global_u = fields.interior("u")
        padded = np.pad(global_u, ((1, 1), (1, 1), (0, 0)), mode="wrap")
        for domain, local in zip(topo.domains(), cluster.fields):
            x0, x1 = domain.x_range
            y0, y1 = domain.y_range
            expected = padded[x0:x1 + 2, y0:y1 + 2, :]
            np.testing.assert_array_equal(local.u, expected)

    def test_exchange_stats(self):
        grid, topo = make()
        cluster = LocalCluster(topo)
        cluster.scatter(random_wind(grid, seed=0))
        elapsed = cluster.halo_exchange()
        assert elapsed > 0.0
        assert cluster.stats.exchanges == 1
        assert cluster.stats.messages == topo.size * 4 * 3  # 4 dirs x 3 fields
        assert cluster.stats.bytes_sent > 0

    def test_scatter_rejects_mismatched_fields(self):
        _, topo = make()
        wrong = random_wind(Grid(nx=4, ny=4, nz=5), seed=0)
        with pytest.raises(ConfigurationError):
            LocalCluster(topo).scatter(wrong)

    def test_cost_model_validation(self):
        with pytest.raises(ConfigurationError):
            CommCostModel(latency_s=-1.0)
        with pytest.raises(ConfigurationError):
            CommCostModel(bandwidth_bytes_s=0.0)

    def test_message_time(self):
        model = CommCostModel(latency_s=1e-6, bandwidth_bytes_s=1e9)
        assert model.message_time(1000) == pytest.approx(2e-6)


class TestDistributedAdvection:
    @pytest.mark.parametrize("px,py", [(1, 1), (2, 2), (3, 2), (4, 5),
                                       (12, 1), (1, 10)])
    def test_bitwise_equal_to_reference(self, px, py):
        """The headline property: any decomposition reproduces the
        single-domain reference exactly."""
        grid, topo = make(px=px, py=py)
        fields = random_wind(grid, seed=3, magnitude=2.0)
        result = DistributedAdvection(topo).compute(fields)
        assert result.max_abs_difference(advect_reference(fields)) == 0.0

    def test_structured_field(self):
        grid, topo = make(px=2, py=2)
        fields = shear_layer(grid)
        result = DistributedAdvection(topo).compute(fields)
        assert result.max_abs_difference(advect_reference(fields)) == 0.0

    def test_step_report(self):
        grid, topo = make()
        dist = DistributedAdvection(topo)
        dist.compute(random_wind(grid, seed=4))
        report = dist.last_report
        assert report is not None
        assert report.ranks == 6
        assert report.compute_seconds > 0
        assert 0.0 < report.comm_fraction < 1.0

    def test_scaling_efficiency_decreases_with_ranks(self):
        grid = Grid(nx=24, ny=24, nz=8)
        fields = random_wind(grid, seed=5)
        effs = []
        for px, py in [(1, 1), (2, 2), (4, 4)]:
            dist = DistributedAdvection(
                ProcessGrid(global_grid=grid, px=px, py=py))
            dist.compute(fields)
            effs.append(dist.scaling_efficiency())
        assert effs[0] == pytest.approx(1.0, abs=0.01) or effs[0] < 1.0
        assert effs[0] > effs[1] > effs[2]

    def test_efficiency_before_compute_rejected(self):
        _, topo = make()
        with pytest.raises(ConfigurationError):
            DistributedAdvection(topo).scaling_efficiency()

    def test_custom_backend_used_per_rank(self):
        """Per-rank FPGA-kernel backend gives the same bit-exact result."""
        from repro.kernel.config import KernelConfig
        from repro.kernel.functional import execute_chunked

        grid, topo = make(px=2, py=2)
        fields = random_wind(grid, seed=6)

        def fpga_backend(local_fields):
            config = KernelConfig(grid=local_fields.grid, chunk_width=3)
            return execute_chunked(config, local_fields)

        result = DistributedAdvection(topo, backend=fpga_backend).compute(
            fields)
        assert result.max_abs_difference(advect_reference(fields)) == 0.0

    def test_rejects_mismatched_fields(self):
        _, topo = make()
        with pytest.raises(ConfigurationError):
            DistributedAdvection(topo).compute(
                random_wind(Grid(nx=4, ny=4, nz=5), seed=0))

    def test_rejects_bad_rank_gflops(self):
        _, topo = make()
        with pytest.raises(ConfigurationError):
            DistributedAdvection(topo, rank_gflops=0.0)


@settings(max_examples=15, deadline=None)
@given(nx=st.integers(3, 10), ny=st.integers(3, 10),
       px=st.integers(1, 3), py=st.integers(1, 3),
       seed=st.integers(0, 10_000))
def test_property_any_decomposition_is_exact(nx, ny, px, py, seed):
    if px > nx or py > ny:
        return
    grid = Grid(nx=nx, ny=ny, nz=4)
    topo = ProcessGrid(global_grid=grid, px=px, py=py)
    fields = random_wind(grid, seed=seed)
    result = DistributedAdvection(topo).compute(fields)
    assert result.max_abs_difference(advect_reference(fields)) == 0.0
