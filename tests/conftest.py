"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coefficients import AdvectionCoefficients
from repro.core.grid import Grid
from repro.core.wind import random_wind, thermal_bubble
from repro.kernel.config import KernelConfig


@pytest.fixture
def small_grid() -> Grid:
    """A grid small enough for scalar/cycle-accurate paths."""
    return Grid(nx=6, ny=7, nz=5)


@pytest.fixture
def tiny_grid() -> Grid:
    """The smallest legal grid for a depth-1 stencil everywhere."""
    return Grid(nx=1, ny=1, nz=2)


@pytest.fixture
def column_grid() -> Grid:
    """A single tall column (stresses vertical boundary handling)."""
    return Grid(nx=3, ny=3, nz=16)


@pytest.fixture
def small_fields(small_grid):
    return random_wind(small_grid, seed=7, magnitude=2.5)


@pytest.fixture
def bubble_fields(small_grid):
    return thermal_bubble(small_grid)


@pytest.fixture
def uniform_coeffs(small_grid) -> AdvectionCoefficients:
    return AdvectionCoefficients.uniform(small_grid)


@pytest.fixture
def isothermal_coeffs(small_grid) -> AdvectionCoefficients:
    return AdvectionCoefficients.isothermal(small_grid)


@pytest.fixture
def small_config(small_grid) -> KernelConfig:
    return KernelConfig(grid=small_grid, chunk_width=4)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
