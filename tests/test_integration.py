"""Cross-subsystem integration tests.

Each test exercises a realistic multi-module workflow end to end: the
kind of path a downstream user would actually run, crossing subpackage
boundaries that unit tests don't.
"""

import numpy as np
import pytest

from repro.core import (
    AdvectionCoefficients,
    AdvectionIntegrator,
    Grid,
    advect_reference,
    thermal_bubble,
)
from repro.core.io import load_fields, save_fields
from repro.distributed import DistributedAdvection, ProcessGrid
from repro.hardware import ALVEO_U280, STRATIX10_GX2800
from repro.kernel import KernelConfig, simulate_kernel
from repro.precision import FLOAT32, advect_quantised
from repro.runtime import AdvectionSession


class TestCheckpointedDeviceRun:
    def test_save_integrate_on_device_reload(self, tmp_path):
        """Checkpoint -> device-backed integration -> checkpoint -> reload
        reproduces the in-memory trajectory bit for bit."""
        grid = Grid(nx=8, ny=10, nz=6)
        coeffs = AdvectionCoefficients.isothermal(grid)
        config = KernelConfig(grid=grid, chunk_width=4)
        session = AdvectionSession(ALVEO_U280, config)

        fields = thermal_bubble(grid)
        save_fields(tmp_path / "t0.npz", fields)

        device_integ = AdvectionIntegrator(
            fields=load_fields(tmp_path / "t0.npz"), dt=0.5, coeffs=coeffs,
            advect=lambda f: session.execute(f, coeffs))
        host_integ = AdvectionIntegrator(
            fields=thermal_bubble(grid), dt=0.5, coeffs=coeffs)

        device_integ.run(4)
        host_integ.run(4)
        save_fields(tmp_path / "t4.npz", device_integ.fields)
        reloaded = load_fields(tmp_path / "t4.npz")

        np.testing.assert_array_equal(reloaded.interior("u"),
                                      host_integ.fields.interior("u"))
        np.testing.assert_array_equal(reloaded.interior("w"),
                                      host_integ.fields.interior("w"))


class TestDistributedDeviceBackend:
    def test_each_rank_on_simulated_fpga(self):
        """Distributed MONC with every rank's advection on the
        cycle-accurate FPGA simulation: still bit-identical."""
        grid = Grid(nx=8, ny=8, nz=4)
        topo = ProcessGrid(global_grid=grid, px=2, py=2)
        coeffs = AdvectionCoefficients.uniform(grid)

        def fpga_rank(local_fields):
            config = KernelConfig(grid=local_fields.grid, chunk_width=3)
            local_coeffs = AdvectionCoefficients.uniform(local_fields.grid)
            return simulate_kernel(config, local_fields,
                                   local_coeffs).sources

        fields = thermal_bubble(grid)
        distributed = DistributedAdvection(topo, backend=fpga_rank,
                                           coeffs=coeffs)
        assert distributed.compute(fields).max_abs_difference(
            advect_reference(fields, coeffs)) == 0.0


class TestPrecisionOnDistributedDomain:
    def test_quantised_backend_consistent_across_decomposition(self):
        """float32 datapath on 4 ranks == float32 datapath on 1 domain:
        quantisation and decomposition commute."""
        grid = Grid(nx=8, ny=8, nz=5)
        fields = thermal_bubble(grid)
        single = advect_quantised(fields, FLOAT32)

        topo = ProcessGrid(global_grid=grid, px=2, py=2)
        distributed = DistributedAdvection(
            topo, backend=lambda f: advect_quantised(f, FLOAT32))
        assert distributed.compute(fields).max_abs_difference(single) == 0.0


class TestCrossDeviceConsistency:
    def test_functional_results_device_independent(self):
        """The *numerics* never depend on which device model hosts the
        session — only the timing does."""
        grid = Grid(nx=6, ny=9, nz=5)
        fields = thermal_bubble(grid)
        config = KernelConfig(grid=grid, chunk_width=4)
        a = AdvectionSession(ALVEO_U280, config).execute(fields)
        b = AdvectionSession(STRATIX10_GX2800, config).execute(fields)
        assert a.max_abs_difference(b) == 0.0

    def test_timing_does_depend_on_device(self):
        grid = Grid.from_cells(16 * 1024 * 1024)
        config = KernelConfig(grid=grid)
        a = AdvectionSession(ALVEO_U280, config).run(grid, overlapped=False)
        b = AdvectionSession(STRATIX10_GX2800, config).run(grid,
                                                           overlapped=False)
        assert a.runtime_seconds != b.runtime_seconds


class TestScorecardEndToEnd:
    def test_scorecard_is_perfect_at_default_tolerance(self):
        from repro.experiments.summary import build_scorecard

        card = build_scorecard()
        assert card.match_fraction == 1.0, card.summary_line()


class TestDeterminism:
    def test_repeated_runs_identical(self):
        """Simulations are deterministic: same inputs, same cycles, same
        bits — a prerequisite for every regression test in this suite."""
        grid = Grid(nx=5, ny=6, nz=4)
        fields = thermal_bubble(grid)
        config = KernelConfig(grid=grid, chunk_width=3)
        first = simulate_kernel(config, fields)
        second = simulate_kernel(config, fields)
        assert first.total_cycles == second.total_cycles
        assert first.sources.max_abs_difference(second.sources) == 0.0

    def test_session_runs_deterministic(self):
        grid = Grid.from_cells(16 * 1024 * 1024)
        session = AdvectionSession(ALVEO_U280, KernelConfig(grid=grid))
        a = session.run(grid, overlapped=True)
        b = session.run(grid, overlapped=True)
        assert a.runtime_seconds == pytest.approx(b.runtime_seconds,
                                                  rel=1e-12)
