"""Flow diagnostics and spectra."""

import numpy as np
import pytest

from repro.analysis import (
    cfl_field,
    divergence,
    energy_spectrum,
    kinetic_energy,
    vorticity_z,
)
from repro.core.fields import FieldSet
from repro.core.grid import Grid
from repro.core.wind import constant_wind, shear_layer, thermal_bubble


class TestDivergence:
    def test_constant_wind_divergence_free(self):
        grid = Grid(nx=8, ny=8, nz=8)
        div = divergence(constant_wind(grid))
        np.testing.assert_allclose(div, 0.0, atol=1e-14)

    def test_known_linear_field(self):
        """u = x gives du/dx = 1 under centred differences."""
        grid = Grid(nx=8, ny=4, nz=4, dx=1.0)
        x = np.arange(grid.nx, dtype=float)[:, None, None]
        u = np.broadcast_to(x, grid.interior_shape).copy()
        fields = FieldSet.from_interior(
            grid, u, np.zeros_like(u), np.zeros_like(u), periodic=False)
        div = divergence(fields)
        # Interior away from the open boundary: exactly 1.
        np.testing.assert_allclose(div[1:-1, :, :], 1.0, atol=1e-12)

    def test_shape(self):
        grid = Grid(nx=5, ny=6, nz=7)
        assert divergence(thermal_bubble(grid)).shape == grid.interior_shape


class TestVorticity:
    def test_constant_wind_irrotational(self):
        grid = Grid(nx=8, ny=8, nz=4)
        np.testing.assert_allclose(vorticity_z(constant_wind(grid)), 0.0,
                                   atol=1e-14)

    def test_shear_layer_has_vorticity_in_the_layer(self):
        grid = Grid(nx=8, ny=32, nz=4)
        vort = vorticity_z(shear_layer(grid, magnitude=10.0))
        mid = np.abs(vort[:, 14:18, :]).max()
        quarter = np.abs(vort[:, 7:9, :]).max()
        # Vorticity concentrates in the tanh layer (and, physically, at
        # the periodic wrap); a quarter-domain away it is much weaker.
        assert mid > 5 * max(quarter, 1e-12)


class TestKineticEnergy:
    def test_constant_field_value(self):
        grid = Grid(nx=4, ny=4, nz=4)
        ke = kinetic_energy(constant_wind(grid, u0=3.0, v0=4.0, w0=0.0))
        assert ke == pytest.approx(0.5 * 25.0 * grid.num_cells)

    def test_zero_for_rest(self):
        grid = Grid(nx=4, ny=4, nz=4)
        assert kinetic_energy(FieldSet.zeros(grid)) == 0.0


class TestCFL:
    def test_scales_with_dt(self):
        grid = Grid(nx=4, ny=4, nz=4)
        fields = thermal_bubble(grid)
        np.testing.assert_allclose(cfl_field(fields, 2.0),
                                   2 * cfl_field(fields, 1.0))

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            cfl_field(thermal_bubble(Grid(nx=4, ny=4, nz=4)), 0.0)


class TestSpectrum:
    def test_single_mode_lands_in_its_bin(self):
        """A pure sin(2*pi*3x/L) wind puts its energy at wavenumber 3."""
        grid = Grid(nx=32, ny=32, nz=4)
        x = np.arange(grid.nx)[:, None, None] / grid.nx
        u = np.broadcast_to(np.sin(2 * np.pi * 3 * x),
                            grid.interior_shape).copy()
        fields = FieldSet.from_interior(grid, u, np.zeros_like(u),
                                        np.zeros_like(u))
        wavenumbers, spectrum = energy_spectrum(fields)
        assert wavenumbers[np.argmax(spectrum)] == 3
        assert spectrum[2] > 100 * (spectrum.sum() - spectrum[2]) / len(
            spectrum)

    def test_parseval_energy_accounting(self):
        """Total spectral energy tracks the physical horizontal KE."""
        grid = Grid(nx=16, ny=16, nz=4)
        fields = shear_layer(grid)
        _, spectrum = energy_spectrum(fields)
        physical = 0.5 * float(
            (fields.interior("u") ** 2 + fields.interior("v") ** 2).mean())
        # Spectrum misses the k=0 mean-flow mode and bin-edge leakage;
        # same order of magnitude is the meaningful check.
        assert 0.0 < spectrum.sum() < 2 * physical + 1.0

    def test_level_selection(self):
        grid = Grid(nx=16, ny=16, nz=8)
        fields = thermal_bubble(grid)
        _, low = energy_spectrum(fields, levels=slice(0, 2))
        _, high = energy_spectrum(fields, levels=slice(6, 8))
        assert not np.allclose(low, high)

    def test_spectrum_preserved_under_advection_step(self):
        """One advection step must not dump energy at the grid scale."""
        from repro.core.timestepping import AdvectionIntegrator

        grid = Grid(nx=16, ny=16, nz=8)
        integ = AdvectionIntegrator(fields=thermal_bubble(grid), dt=0.1)
        _, before = energy_spectrum(integ.fields)
        integ.run(3)
        _, after = energy_spectrum(integ.fields)
        # The highest wavenumber bin must not grow by orders of magnitude.
        tail = slice(-3, None)
        assert after[tail].sum() < 10 * before[tail].sum() + 1e-12
