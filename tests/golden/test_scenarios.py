"""Golden snapshots of the scenario suite's CLI surfaces.

Pins the ``repro scenarios`` listing (text and JSON), a full
``repro simulate --scenario`` run on a non-advection kernel, and the
per-scenario lint report, so any drift in the registry's contents, the
derived ops-per-cycle figures, or the report shapes surfaces as a
fixture diff.
"""

import json
import re

from repro.cli import main

from .conftest import as_json


def normalise_wall(text: str) -> str:
    return re.sub(r"wall:\s+[\d.]+ s", "wall:     <elapsed> s", text)


class TestScenarioCliSnapshots:
    def test_scenarios_listing_text(self, golden, capsys):
        assert main(["scenarios"]) == 0
        golden("cli_scenarios.txt", capsys.readouterr().out)

    def test_scenarios_listing_json(self, golden, capsys):
        assert main(["scenarios", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        golden("cli_scenarios.json", as_json(payload))

    def test_simulate_scenario_diffusion_text(self, golden, capsys):
        assert main(["simulate", "--scenario", "diffusion",
                     "--nx", "4", "--ny", "5", "--nz", "6"]) == 0
        golden("cli_simulate_scenario_diffusion.txt",
               normalise_wall(capsys.readouterr().out))

    def test_simulate_scenario_buoyancy_text(self, golden, capsys):
        assert main(["simulate", "--scenario", "buoyancy",
                     "--nx", "4", "--ny", "4", "--nz", "5"]) == 0
        golden("cli_simulate_scenario_buoyancy.txt",
               normalise_wall(capsys.readouterr().out))

    def test_lint_scenario_json(self, golden, capsys):
        assert main(["lint", "--scenario", "diffusion", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        golden("cli_lint_scenario_diffusion.json", as_json(payload))

    def test_analyze_scenario_json(self, golden, capsys):
        # The per-scenario deadlock/throughput proof object: any drift
        # in a proved number is a real change to the verifier's claims.
        assert main(["analyze", "--scenario", "buoyancy", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        golden("cli_analyze_scenario_buoyancy.json", as_json(payload))
