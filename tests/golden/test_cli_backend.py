"""Golden snapshots: the ``--backend versal_aie`` CLI report surfaces.

The Versal tune report (with its cross-architecture Pareto section) and
the BK-family lint report are consumed by the CI backend-smoke job, so
their exact JSON shape is pinned here alongside the pre-backend U280 and
Stratix 10 fixtures — which must never change when a run routes through
the backend seam.  Regenerate with ``REPRO_UPDATE_GOLDEN=1`` after an
intentional model or schema change.
"""

import json

from repro.cli import main

from .conftest import as_json


class TestBackendSnapshots:
    def test_tune_json_versal_greedy(self, golden, capsys):
        assert main(["tune", "--backend", "versal_aie", "--strategy",
                     "greedy", "--seed", "0", "--budget", "120",
                     "--nx", "64", "--ny", "64", "--nz", "64",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "versal_aie"
        assert [p["architecture"] for p in payload["cross_architecture"]] \
            == ["versal", "gpu", "u280", "stratix10", "cpu"]
        golden("cli_tune_versal.json", as_json(payload))

    def test_lint_json_versal(self, golden, capsys):
        assert main(["lint", "--backend", "versal_aie",
                     "--nx", "64", "--ny", "64", "--nz", "64",
                     "--kernels", "50", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        golden("cli_lint_versal.json", as_json(payload))

    def test_explicit_default_backend_is_byte_identical(self, capsys):
        """``--backend fpga_shiftbuffer`` must not perturb the report."""
        argv = ["tune", "--device", "u280", "--strategy", "anneal",
                "--seed", "7", "--budget", "48",
                "--nx", "16", "--ny", "64", "--nz", "16", "--json"]
        assert main(argv) == 0
        implicit = capsys.readouterr().out
        assert main(argv[:1] + ["--backend", "fpga_shiftbuffer"]
                    + argv[1:]) == 0
        explicit = capsys.readouterr().out
        assert implicit == explicit
