"""Golden regression suite: snapshot engine stats and CLI surfaces.

These snapshots pin the externally visible shape of the simulation
results — stat dictionaries and command-line output — so an accidental
change to a counter, a key name, or a report line shows up as a crisp
fixture diff rather than a silent drift.
"""

import json
import pathlib
import re

from repro.cli import main
from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.dataflow.engine import RunStats
from repro.kernel.config import KernelConfig
from repro.kernel.simulate import simulate_kernel

from .conftest import as_json


def small_run(mode: str = "exact"):
    grid = Grid(nx=6, ny=9, nz=5)
    fields = random_wind(grid, seed=17, magnitude=2.0)
    return simulate_kernel(KernelConfig(grid=grid, chunk_width=4), fields,
                           mode=mode)


class TestStatsSnapshots:
    def test_aggregate_stats_exact(self, golden):
        stats = small_run().aggregate_stats()
        golden("aggregate_stats_exact.json", as_json(stats.to_dict()))

    def test_aggregate_stats_fast(self, golden):
        # Fast mode adds the ff_* counters; cycles must match exact.
        stats = small_run(mode="fast").aggregate_stats()
        golden("aggregate_stats_fast.json", as_json(stats.to_dict()))

    def test_runstats_merge(self, golden):
        merged = RunStats.merge(small_run().chunk_stats)
        golden("runstats_merge.json", as_json(merged.to_dict()))


def normalise_wall(text: str) -> str:
    return re.sub(r"wall:\s+[\d.]+ s", "wall:     <elapsed> s", text)


class TestCliSnapshots:
    def test_simulate_text(self, golden, capsys):
        assert main(["simulate", "--nx", "6", "--ny", "9", "--nz", "5",
                     "--chunk-width", "4"]) == 0
        golden("cli_simulate.txt", normalise_wall(capsys.readouterr().out))

    def test_simulate_fast_text(self, golden, capsys):
        assert main(["simulate", "--nx", "6", "--ny", "9", "--nz", "5",
                     "--chunk-width", "4", "--mode", "fast"]) == 0
        golden("cli_simulate_fast.txt",
               normalise_wall(capsys.readouterr().out))

    def test_lint_json(self, golden, capsys):
        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        golden("cli_lint.json", as_json(payload))

    def test_analyze_json(self, golden, capsys):
        # The proof objects for the paper's U280 deployment, engine
        # cross-checked: any drift in a proved number is a real change
        # to the verifier's claims.
        spec = (pathlib.Path(__file__).resolve().parents[2] / "examples"
                / "graphs" / "advection_u280.json")
        assert main(["analyze", "--json", "--check", str(spec)]) == 0
        payload = json.loads(capsys.readouterr().out)
        golden("cli_analyze.json", as_json(payload))

    def test_metrics_json(self, golden, capsys):
        assert main(["metrics", "--nx", "6", "--ny", "9", "--nz", "5",
                     "--chunk-width", "4", "--clock-mhz", "300",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        golden("cli_metrics.json", as_json(payload))
