"""Golden-snapshot helper.

Fixtures live in ``tests/golden/fixtures``.  A test compares freshly
produced output byte-for-byte against the checked-in file; set
``REPRO_UPDATE_GOLDEN=1`` to regenerate every fixture instead (then
review the diff like any other code change).
"""

import json
import os
import pathlib

import pytest

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


@pytest.fixture
def golden():
    update = os.environ.get("REPRO_UPDATE_GOLDEN") == "1"

    def check(name: str, produced: str) -> None:
        path = FIXTURES / name
        if update:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(produced)
            return
        if not path.exists():
            pytest.fail(
                f"golden fixture {name!r} missing - regenerate with "
                f"REPRO_UPDATE_GOLDEN=1 pytest tests/golden"
            )
        expected = path.read_text()
        assert produced == expected, (
            f"output drifted from golden fixture {name!r}; if the change "
            f"is intentional, regenerate with REPRO_UPDATE_GOLDEN=1"
        )

    return check


def as_json(data) -> str:
    """Canonical JSON rendering so fixtures diff cleanly."""
    return json.dumps(data, indent=2, sort_keys=True) + "\n"
