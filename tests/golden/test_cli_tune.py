"""Golden snapshot: the ``repro tune --json`` report surface.

The tuner's JSON report is consumed by CI (the tune-smoke artifact) and
by anyone diffing deployments across model changes, so its exact shape —
field names, rounding, canonical ordering — is pinned here.  The run is
fully deterministic (seeded annealing, no wall-clock in the output), so
the snapshot is byte-stable; regenerate with ``REPRO_UPDATE_GOLDEN=1``
after an intentional cost-model or schema change.
"""

import json

from repro.cli import main

from .conftest import as_json


class TestTuneSnapshots:
    def test_tune_json_u280_anneal(self, golden, capsys):
        assert main(["tune", "--device", "u280", "--strategy", "anneal",
                     "--seed", "7", "--budget", "48",
                     "--nx", "16", "--ny", "64", "--nz", "16",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        golden("cli_tune_u280.json", as_json(payload))

    def test_tune_json_stratix_greedy(self, golden, capsys):
        assert main(["tune", "--device", "stratix10", "--strategy",
                     "greedy", "--seed", "3", "--budget", "48",
                     "--nx", "16", "--ny", "64", "--nz", "16",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        golden("cli_tune_stratix10.json", as_json(payload))
