"""The §V next-generation projection, quantified.

Places the Versal VC1902 and Stratix 10 NX AI-engine projections on the
advection kernel's roofline and compares them with the measured Fig. 6
levels of the current-generation devices — the "will likely further
close the gap between FPGAs and GPUs" claim, made runnable.
"""

from repro.experiments.report import text_table
from repro.experiments.sweeps import sweep
from repro.hardware.versal import STRATIX10_NX_PROJECTION, VERSAL_VC1902


def test_next_generation_projection(benchmark, save_result):
    def run():
        rows = []
        for proj in (VERSAL_VC1902, STRATIX10_NX_PROJECTION):
            rows.append((
                proj.name,
                proj.compute_peak_gflops,
                proj.attainable_gflops(),
                proj.feed_bound,
            ))
        return rows

    rows = benchmark(run)
    current = sweep(overlapped=True)
    u280 = current[("u280", "16M")]
    gpu = current[("v100", "16M")]
    assert u280 is not None and gpu is not None

    context = [
        ("Alveo U280 (Fig. 6, measured model)", None, u280.gflops, None),
        ("Tesla V100 (Fig. 6, measured model)", None, gpu.gflops, None),
    ]
    table = text_table(
        ("device", "raw peak GFLOPS", "attainable GFLOPS", "feed bound"),
        rows + context, precision=1,
        title="SV projection: AI-engine devices on the PW kernel")
    save_result("versal_projection", table)
    print()
    print(table)

    # The paper's prediction: the data-feed, not arithmetic, is the limit,
    # and the projected devices close the FPGA-GPU gap by a wide margin.
    for name, peak, attainable, feed_bound in rows:
        assert feed_bound, name
        assert attainable > 10 * u280.gflops, name
        assert attainable > gpu.gflops, name
