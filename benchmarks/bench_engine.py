"""Perf-regression harness for the engine's accelerated execution modes.

Runs the full Fig. 2 kernel simulation on the same grid in three ways —
the forced-scalar exact loop (the baseline), batched exact execution
(the default), and fast-forward mode — verifies all three are
bit-for-bit identical (cycle counts, per-stage fires and stalls, output
arrays), and records wall times and both speedups to
``benchmarks/BENCH_dataflow.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py              # 64^3
    PYTHONPATH=src python benchmarks/bench_engine.py --nx 32 --ny 32 \
        --nz 32 --min-batched-speedup 5

Exit status is non-zero if any mode disagrees with the scalar baseline,
the fast-mode speedup falls below ``--min-speedup`` (default 10x), or
the batched exact speedup falls below ``--min-batched-speedup``
(default 10x — the tentpole target on the 64^3 grid).  ``--smoke``
shrinks the grid to 32^3 and relaxes the gates for CI: the batched gate
stays at 5x there, which 32^3 clears with headroom while 16^3 would not
(too little steady state to amortise the detection warm-up).

A resilient run arms the checkpoint/restart machinery with an empty
fault plan and gates its fault-free overhead against the plain batched
run (``--max-resilience-overhead``, default 3%): recovery must be free
when nothing fails.

An observed run threads a *disabled* tracer and metric registry through
the whole stack and gates their compiled-in-but-off cost the same way
(``--max-observe-overhead``, default 3%): observability must be free
when nobody is watching.  Both overhead gates run in batched mode — the
production configuration — so the budget covers the calendar and
preview bookkeeping too.
"""

from __future__ import annotations

import argparse
import platform
import sys
import time

import numpy as np

from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.faults import FaultPlan, RetryPolicy
from repro.kernel.config import KernelConfig
from repro.kernel.simulate import simulate_kernel
from repro.observe import MetricRegistry, Tracer
from repro.perf.bench import BenchRecord, BenchSuite, render_table, speedup

DEFAULT_OUTPUT = "benchmarks/BENCH_dataflow.json"


def run_once(config, fields, mode: str, **kwargs):
    start = time.perf_counter()
    result = simulate_kernel(config, fields, mode=mode, **kwargs)
    return result, time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nx", type=int, default=64)
    parser.add_argument("--ny", type=int, default=64)
    parser.add_argument("--nz", type=int, default=64)
    parser.add_argument("--chunk-width", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="fail below this fast/scalar speedup")
    parser.add_argument("--min-batched-speedup", type=float, default=10.0,
                        help="fail below this batched-exact/scalar "
                             "speedup (default: %(default)s)")
    parser.add_argument("--max-resilience-overhead", type=float,
                        default=0.03,
                        help="fail when the fault-free resilient run is "
                             "more than this fraction slower than the "
                             "batched run (default: %(default)s)")
    parser.add_argument("--max-observe-overhead", type=float,
                        default=0.03,
                        help="fail when the run with a disabled tracer + "
                             "metric registry attached is more than this "
                             "fraction slower than the batched run "
                             "(default: %(default)s)")
    parser.add_argument("--overhead-repeats", type=int, default=3,
                        help="interleaved batched/resilient/observed "
                             "timing tuples for the overhead gates "
                             "(default: %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="32^3 grid + relaxed gates (CI smoke run)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="record file (default: %(default)s)")
    args = parser.parse_args(argv)

    if args.overhead_repeats < 1:
        parser.error("--overhead-repeats must be >= 1")
    if args.smoke:
        args.nx, args.ny, args.nz = 32, 32, 32
        args.min_speedup = min(args.min_speedup, 5.0)
        args.min_batched_speedup = min(args.min_batched_speedup, 5.0)
        # Sub-second batched runs amplify timer noise; the 3% gates only
        # mean something on paper-scale runs.
        args.max_resilience_overhead = max(
            args.max_resilience_overhead, 0.5)
        args.max_observe_overhead = max(args.max_observe_overhead, 0.5)

    grid = Grid(nx=args.nx, ny=args.ny, nz=args.nz)
    fields = random_wind(grid, seed=args.seed, magnitude=2.0)
    config = (KernelConfig(grid=grid, chunk_width=args.chunk_width)
              if args.chunk_width else KernelConfig(grid=grid))
    label = f"{args.nx}x{args.ny}x{args.nz}"

    scalar, t_scalar = run_once(config, fields, "exact", batched=False)
    batched, t_batched = run_once(config, fields, "exact", batched=True)
    fast, t_fast = run_once(config, fields, "fast")
    # The overhead gates chase few-percent effects buried under
    # comparable wall-time noise, so measure them from interleaved
    # tuples and compare the minimums (systematic machine drift then
    # cancels).  All three legs run batched — the production config.
    resilient, t_resilient = run_once(
        config, fields, "exact",
        fault_plan=FaultPlan([]), retry=RetryPolicy())

    def observed_kwargs():
        # Compiled in, switched off: the gate measures exactly the cost a
        # production run pays for carrying the observability plane.
        return {"tracer": Tracer(enabled=False),
                "metrics": MetricRegistry(enabled=False)}

    observed, t_observed = run_once(config, fields, "exact",
                                    **observed_kwargs())
    batched_times, resilient_times = [t_batched], [t_resilient]
    observed_times = [t_observed]
    for _ in range(args.overhead_repeats - 1):
        batched_times.append(run_once(config, fields, "exact")[1])
        resilient_times.append(run_once(
            config, fields, "exact",
            fault_plan=FaultPlan([]), retry=RetryPolicy())[1])
        observed_times.append(run_once(config, fields, "exact",
                                       **observed_kwargs())[1])

    # The speedups are only meaningful if every mode is *the same
    # machine*; the scalar per-cycle loop is the reference.
    errors = []
    agg_scalar = scalar.aggregate_stats()
    agg_batched = batched.aggregate_stats()
    agg_fast = fast.aggregate_stats()
    for other, agg, what in ((batched, agg_batched, "batched exact"),
                             (fast, agg_fast, "fast")):
        if other.total_cycles != scalar.total_cycles:
            errors.append(f"{what} cycle count differs: "
                          f"{scalar.total_cycles} vs {other.total_cycles}")
        if agg.fires != agg_scalar.fires:
            errors.append(f"{what} per-stage fire counts differ")
        if agg.stalls != agg_scalar.stalls:
            errors.append(f"{what} per-stage stall counts differ")
        for name in ("su", "sv", "sw"):
            if not np.array_equal(getattr(scalar.sources, name),
                                  getattr(other.sources, name)):
                errors.append(f"{name} not bit-identical under {what}")
    for name in ("su", "sv", "sw"):
        if not np.array_equal(getattr(scalar.sources, name),
                              getattr(resilient.sources, name)):
            errors.append(f"{name} differs under the resilient path")
        if not np.array_equal(getattr(scalar.sources, name),
                              getattr(observed.sources, name)):
            errors.append(f"{name} differs with disabled observability")
    if resilient.total_cycles != scalar.total_cycles:
        errors.append("resilient path changed the cycle count")
    if resilient.chunk_retries != 0:
        errors.append("resilient path retried on a fault-free run")
    if observed.total_cycles != scalar.total_cycles:
        errors.append("disabled observability changed the cycle count")
    if errors:
        for err in errors:
            print(f"MISMATCH: {err}", file=sys.stderr)
        return 1

    suite = BenchSuite(context={
        "grid": label,
        "chunk_width": config.chunk_width,
        "seed": args.seed,
        "python": platform.python_version(),
        "machine": platform.machine(),
    })
    rec_scalar = BenchRecord(
        name=f"kernel-{label}-scalar", wall_seconds=t_scalar,
        cycles=scalar.total_cycles, cells=grid.num_cells, mode="exact",
        extra={"batched": False})
    rec_batched = BenchRecord(
        name=f"kernel-{label}-batched", wall_seconds=t_batched,
        cycles=batched.total_cycles, cells=grid.num_cells, mode="exact",
        extra={"batched": True,
               "batched_windows": agg_batched.batched_windows,
               "batched_cycles": agg_batched.batched_cycles})
    rec_fast = BenchRecord(
        name=f"kernel-{label}-fast", wall_seconds=t_fast,
        cycles=fast.total_cycles, cells=grid.num_cells, mode="fast",
        extra={"ff_advances": agg_fast.ff_advances,
               "ff_cycles": agg_fast.ff_cycles})
    best_batched = min(batched_times)
    best_resilient = min(resilient_times)
    overhead = (best_resilient / best_batched - 1.0 if best_batched > 0
                else 0.0)
    rec_resilient = BenchRecord(
        name=f"kernel-{label}-resilient", wall_seconds=best_resilient,
        cycles=resilient.total_cycles, cells=grid.num_cells, mode="exact",
        extra={"chunk_retries": resilient.chunk_retries,
               "overhead_vs_batched": round(overhead, 4),
               "timing_pairs": args.overhead_repeats})
    best_observed = min(observed_times)
    observe_overhead = (best_observed / best_batched - 1.0
                        if best_batched > 0 else 0.0)
    rec_observed = BenchRecord(
        name=f"kernel-{label}-observed", wall_seconds=best_observed,
        cycles=observed.total_cycles, cells=grid.num_cells, mode="exact",
        extra={"overhead_vs_batched": round(observe_overhead, 4),
               "timing_pairs": args.overhead_repeats,
               "instruments": "tracer+metrics, disabled"})
    suite.add(rec_scalar)
    suite.add(rec_batched)
    suite.add(rec_fast)
    suite.add(rec_resilient)
    suite.add(rec_observed)
    gain_batched = speedup(rec_scalar, rec_batched)
    gain_fast = speedup(rec_scalar, rec_fast)
    suite.context["speedup_fast"] = round(gain_fast, 2)
    suite.context["speedup_batched_exact"] = round(gain_batched, 2)
    suite.context["resilience_overhead"] = round(overhead, 4)
    suite.context["observe_overhead"] = round(observe_overhead, 4)
    path = suite.write(args.output)

    print(render_table(suite.records))
    print(f"\nbatched exact speedup: {gain_batched:.2f}x "
          f"({agg_batched.batched_cycles}/{batched.total_cycles} cycles "
          f"batched in {agg_batched.batched_windows} windows)")
    print(f"fast-forward speedup:  {gain_fast:.2f}x "
          f"({agg_fast.ff_cycles}/{fast.total_cycles} cycles "
          f"fast-forwarded in {agg_fast.ff_advances} advances)")
    print(f"fault-free resilience overhead: {overhead * 100:+.2f}%")
    print(f"disabled observability overhead: "
          f"{observe_overhead * 100:+.2f}%")
    print(f"records written to {path}")
    failed = False
    if gain_batched < args.min_batched_speedup:
        print(f"FAIL: batched exact speedup {gain_batched:.2f}x below "
              f"the {args.min_batched_speedup:.1f}x floor",
              file=sys.stderr)
        failed = True
    if gain_fast < args.min_speedup:
        print(f"FAIL: fast speedup {gain_fast:.2f}x below the "
              f"{args.min_speedup:.1f}x floor", file=sys.stderr)
        failed = True
    if overhead > args.max_resilience_overhead:
        print(f"FAIL: fault-free resilience overhead {overhead * 100:.2f}% "
              f"exceeds the {args.max_resilience_overhead * 100:.1f}% "
              f"budget", file=sys.stderr)
        failed = True
    if observe_overhead > args.max_observe_overhead:
        print(f"FAIL: disabled observability overhead "
              f"{observe_overhead * 100:.2f}% exceeds the "
              f"{args.max_observe_overhead * 100:.1f}% budget",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
