"""Regenerates Fig. 5 (multi-kernel performance without overlap)."""

from repro.experiments.registry import run_experiment
from repro.experiments.report import comparison_table
from repro.experiments.sweeps import sweep


def test_fig5(benchmark, save_result):
    def run():
        sweep.cache_clear()  # force the full sweep to be re-simulated
        return run_experiment("fig5")

    result = benchmark(run)
    save_result("fig5", result.text + "\n\n"
                + comparison_table(result.comparisons))
    print()
    print(result.text)

    for row in result.rows:
        by = dict(zip(result.headers, row))
        # Who wins without overlap: Stratix > U280 (2x faster sync PCIe),
        # the CPU needs no transfer at all, the GPU is crippled relative to
        # its 367 GFLOPS kernel rate.
        assert by["Stratix 10"] > 1.5 * by["Alveo U280"]
        assert by["24-core Xeon"] > by["Stratix 10"]
        if by["V100 GPU"] is not None:
            assert by["V100 GPU"] < 0.05 * 367.2

    # No V100 point at 536M cells (16 GB < 25.8 GB working set).
    last = dict(zip(result.headers, result.rows[-1]))
    assert last["V100 GPU"] is None

    (comparison,) = result.comparisons
    assert comparison.within(15.0), str(comparison)
