"""Regenerates Table II (HBM2 vs DDR on the U280) and times it."""

from repro.experiments.registry import run_experiment
from repro.experiments.report import comparison_table


def test_table2(benchmark, save_result):
    result = benchmark(run_experiment, "table2")
    save_result("table2", result.text + "\n\n"
                + comparison_table(result.comparisons))
    print()
    print(result.text)

    for comparison in result.comparisons:
        assert comparison.within(12.0), str(comparison)

    # Shape: HBM2 wins at every size; the overhead column sits in the
    # paper's 39-46% band (we allow a slightly wider 30-50%).
    for label, hbm, ddr, overhead in result.rows:
        assert hbm > ddr, label
        assert 30.0 < overhead < 50.0, label

    by_label = {row[0]: row for row in result.rows}
    benchmark.extra_info["hbm2_16m"] = round(by_label["16M"][1], 2)
    benchmark.extra_info["ddr_16m"] = round(by_label["16M"][2], 2)
