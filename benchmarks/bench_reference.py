"""Live host measurement: the vectorised NumPy PW kernel on this machine.

This is the only benchmark measuring real compute rather than the device
models — it puts an honest "measured on this host" number alongside the
paper-calibrated figures, including an achieved-GFLOPS figure using the
paper's FLOP convention.
"""

import pytest

from repro.core.coefficients import AdvectionCoefficients
from repro.core.flops import grid_flops
from repro.core.grid import Grid
from repro.core.reference import advect_reference
from repro.core.fields import SourceSet
from repro.core.wind import thermal_bubble


@pytest.mark.parametrize("n", [32, 64, 128])
def test_reference_kernel_throughput(benchmark, n):
    grid = Grid(nx=n, ny=n, nz=64)
    fields = thermal_bubble(grid)
    coeffs = AdvectionCoefficients.isothermal(grid)
    out = SourceSet.zeros(grid)

    benchmark(advect_reference, fields, coeffs, out=out)

    seconds = benchmark.stats.stats.mean
    gflops = grid_flops(grid) / seconds / 1e9
    benchmark.extra_info["grid_cells"] = grid.num_cells
    benchmark.extra_info["achieved_gflops_paper_convention"] = round(gflops, 3)


def test_golden_vs_reference_speedup(benchmark):
    """Quantifies why the vectorised path is the everyday reference: the
    scalar specification is orders of magnitude slower."""
    import time

    from repro.core.golden import advect_golden

    grid = Grid(nx=8, ny=8, nz=8)
    fields = thermal_bubble(grid)

    start = time.perf_counter()
    advect_golden(fields)
    golden_seconds = time.perf_counter() - start

    benchmark(advect_reference, fields)
    speedup = golden_seconds / benchmark.stats.stats.mean
    benchmark.extra_info["speedup_over_scalar"] = round(speedup, 1)
    assert speedup > 5.0
