"""Energy-to-solution: the complement of Fig. 8.

Fig. 8 plots GFLOPS/W; operators often care about the dual — Joules per
advection invocation (energy to solution).  The two contain the same
information (J = FLOP / (GFLOPS/W)), so the ordering must invert: the
most power-efficient device spends the least energy per solution.
"""

from repro.experiments.common import MULTI_KERNEL_SIZES
from repro.experiments.report import text_table
from repro.experiments.sweeps import SWEEP_DEVICE_LABELS, sweep


def test_energy_to_solution(benchmark, save_result):
    def run():
        results = sweep(overlapped=True)
        rows = []
        for label in MULTI_KERNEL_SIZES:
            row = [label]
            for key in SWEEP_DEVICE_LABELS:
                result = results[(key, label)]
                row.append(None if result is None else result.energy_joules)
            rows.append(tuple(row))
        return rows

    rows = benchmark(run)
    headers = ("grid cells",) + tuple(SWEEP_DEVICE_LABELS.values())
    table = text_table(headers, rows, precision=1,
                       title="Energy per advection invocation (Joules, "
                             "lower is better)")
    save_result("energy_to_solution", table)
    print()
    print(table)

    results = sweep(overlapped=True)
    for label in MULTI_KERNEL_SIZES:
        cpu = results[("cpu", label)]
        u280 = results[("u280", label)]
        stratix = results[("stratix10", label)]
        assert cpu and u280 and stratix
        # The FPGAs solve the same problem for less energy than the CPU;
        # while the U280's data fits HBM2 the margin exceeds 2x.
        assert u280.energy_joules < cpu.energy_joules, label
        assert stratix.energy_joules < cpu.energy_joules, label
        if u280.memory == "hbm2":
            assert u280.energy_joules < 0.5 * cpu.energy_joules, label
        # Energy ordering inverts the Fig. 8 efficiency ordering.
        if u280.gflops_per_watt > stratix.gflops_per_watt:
            assert u280.energy_joules < stratix.energy_joules, label
        else:
            assert u280.energy_joules >= stratix.energy_joules, label
