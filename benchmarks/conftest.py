"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's tables or figures (the
rows/series the paper reports), times the regeneration with
pytest-benchmark, and writes the rendered table next to the timings under
``benchmarks/out/`` so the numbers can be inspected after a run.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def save_result(out_dir):
    """Write one experiment's rendered output to benchmarks/out/<id>.txt."""

    def _save(experiment_id: str, text: str) -> None:
        (out_dir / f"{experiment_id}.txt").write_text(text + "\n")

    return _save
