"""Micro-benchmarks of the dataflow engine and the shift buffer.

These time the simulator itself (events per second), which bounds the
grid sizes the cycle-accurate path can handle and justifies the split
between cycle simulation (small grids) and the closed-form model
(paper-scale grids).
"""

import numpy as np

from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.dataflow.engine import DataflowEngine
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.stage import FunctionStage, SinkStage, SourceStage
from repro.kernel.config import KernelConfig
from repro.kernel.simulate import simulate_kernel
from repro.shiftbuffer.buffer3d import ShiftBuffer3D


def test_engine_throughput(benchmark):
    """Cycles per second of a simple three-stage pipeline."""

    def run():
        g = DataflowGraph("bench")
        src = g.add(SourceStage("src", range(2000)))
        fn = g.add(FunctionStage("fn", lambda x: x + 1, latency=4))
        sink = g.add(SinkStage("sink"))
        g.connect(src, "out", fn, "in")
        g.connect(fn, "out", sink, "in")
        return DataflowEngine(g).run()

    stats = benchmark(run)
    benchmark.extra_info["cycles_per_second"] = int(
        stats.cycles / benchmark.stats.stats.mean)


def test_shift_buffer_feed_rate(benchmark):
    """Values per second through one ShiftBuffer3D (functional mode)."""
    block = np.random.default_rng(0).normal(size=(6, 34, 64))

    def run():
        buf = ShiftBuffer3D(6, 34, 64)
        return buf.feed_block(block)

    windows = benchmark(run)
    fed = block.size
    benchmark.extra_info["feeds_per_second"] = int(
        fed / benchmark.stats.stats.mean)
    assert len(windows) == (6 - 2) * (34 - 2) * 63


def test_cycle_accurate_kernel_rate(benchmark):
    """Simulated kernel cells per wall second (full Fig. 2 graph)."""
    grid = Grid(nx=4, ny=6, nz=8)
    fields = random_wind(grid, seed=0)
    config = KernelConfig(grid=grid, chunk_width=4)

    result = benchmark(simulate_kernel, config, fields)
    benchmark.extra_info["simulated_cycles"] = result.total_cycles
    benchmark.extra_info["sim_cycles_per_second"] = int(
        result.total_cycles / benchmark.stats.stats.mean)
