"""Regenerates Table I (kernel-only performance, 16M cells) and times it."""

from repro.experiments.registry import run_experiment
from repro.experiments.report import comparison_table


def test_table1(benchmark, save_result):
    result = benchmark(run_experiment, "table1")
    save_result("table1", result.text + "\n\n"
                + comparison_table(result.comparisons))
    print()
    print(result.text)

    # Headline reproduction bound: every Table I entry within 2% of paper.
    for comparison in result.comparisons:
        assert comparison.within(2.0), str(comparison)

    by_name = {row[0]: row for row in result.rows}
    u280 = by_name["Xilinx Alveo U280"]
    stratix = by_name["Intel Stratix 10"]
    # The paper's percent-of-theoretical figures: 77% and 83%.
    assert abs(u280[2] - 77.0) < 2.0
    assert abs(stratix[2] - 83.0) < 2.0

    benchmark.extra_info["u280_gflops"] = round(u280[1], 2)
    benchmark.extra_info["stratix_gflops"] = round(stratix[1], 2)
