"""Regenerates Fig. 7 (power usage with overlap)."""

from repro.experiments.registry import run_experiment
from repro.experiments.report import comparison_table
from repro.experiments.sweeps import sweep


def test_fig7(benchmark, save_result):
    def run():
        sweep.cache_clear()
        return run_experiment("fig7")

    result = benchmark(run)
    save_result("fig7", result.text + "\n\n"
                + comparison_table(result.comparisons))
    print()
    print(result.text)

    rows = {row[0]: dict(zip(result.headers, row)) for row in result.rows}

    # Absolute ordering: FPGAs << GPU < CPU.
    for size, by in rows.items():
        assert by["Alveo U280"] < by["Stratix 10"] < by["24-core Xeon"]
        if by["V100 GPU"] is not None:
            assert by["Stratix 10"] < by["V100 GPU"] < 1.5 * by["24-core Xeon"]

    # Stratix draws ~50% more than the Alveo (paper's headline).
    ratio = rows["16M"]["Stratix 10"] / rows["16M"]["Alveo U280"]
    assert 1.35 < ratio < 1.7

    # HBM2 -> DDR on the U280 adds ~12 W, not the whole FPGA gap.
    delta = rows["268M"]["Alveo U280"] - rows["16M"]["Alveo U280"]
    assert abs(delta - 12.0) < 2.0
    assert delta < 0.5 * (rows["16M"]["Stratix 10"]
                          - rows["16M"]["Alveo U280"]) * 2
