"""Benchmarks for the §V reduced-precision exploration.

Regenerates the accuracy-vs-resources trade-off table the paper's future
work calls for: numerical error of each format against float64, and the
kernels-per-chip / projected-peak gains from narrower datapaths.
"""

from repro.core.grid import Grid
from repro.core.wind import thermal_bubble
from repro.experiments.report import text_table
from repro.hardware import ALVEO_U280, STRATIX10_GX2800
from repro.kernel.config import KernelConfig
from repro.precision import (
    BFLOAT16,
    FLOAT32,
    FLOAT64,
    FixedPointFormat,
    advect_quantised,
    precision_error_study,
    precision_fit_report,
)

FORMATS = (FLOAT64, FLOAT32,
           FixedPointFormat("q8.23", integer_bits=8, fraction_bits=23),
           BFLOAT16)


def test_precision_error_table(benchmark, save_result):
    grid = Grid(nx=16, ny=16, nz=32)
    fields = thermal_bubble(grid, updraft=3.0)

    def run():
        return [precision_error_study(fields, fmt) for fmt in FORMATS]

    reports = benchmark(run)
    rows = [(r.format_name, r.bits, r.max_abs_error, r.rms_error,
             r.significant_digits) for r in reports]
    table = text_table(
        ("format", "bits", "max abs err", "rms err", "digits"), rows,
        precision=3, title="Reduced-precision accuracy (thermal bubble)")
    save_result("precision_error", table)
    print()
    print(table)

    # Error must be monotone in precision, and float64 exact.
    assert reports[0].max_abs_error == 0.0
    assert reports[1].max_abs_error < reports[3].max_abs_error


def test_precision_fit_table(benchmark, save_result):
    config = KernelConfig(grid=Grid.from_cells(16 * 1024 * 1024))

    def run():
        rows = []
        for device in (ALVEO_U280, STRATIX10_GX2800):
            for fmt in (FLOAT64, FLOAT32, BFLOAT16):
                rows.append(precision_fit_report(config, device, fmt))
        return rows

    reports = benchmark(run)
    rows = [(r.device, r.format_name, r.kernels_fit, r.extra_kernels,
             r.projected_peak_gflops) for r in reports]
    table = text_table(
        ("device", "format", "kernels", "extra", "projected peak GFLOPS"),
        rows, precision=1,
        title="Kernels per chip vs precision (the paper's SV projection)")
    save_result("precision_fit", table)
    print()
    print(table)

    by_key = {(r.device, r.format_name): r for r in reports}
    # float64 reproduces the paper's 6/5 fits; float32 at least doubles them.
    assert by_key[(ALVEO_U280.name, "float64")].kernels_fit == 6
    assert by_key[(STRATIX10_GX2800.name, "float64")].kernels_fit == 5
    for device in (ALVEO_U280, STRATIX10_GX2800):
        assert by_key[(device.name, "float32")].kernels_fit >= \
            2 * by_key[(device.name, "float64")].kernels_fit


def test_quantised_kernel_cost(benchmark):
    """The quantised datapath is a modelling tool, not a fast path — but it
    should remain usable on study-sized grids."""
    grid = Grid(nx=16, ny=16, nz=32)
    fields = thermal_bubble(grid)
    benchmark(advect_quantised, fields, FLOAT32)
