"""Regenerates Fig. 8 (power efficiency with overlap)."""

from repro.experiments.registry import run_experiment
from repro.experiments.report import comparison_table
from repro.experiments.sweeps import sweep


def test_fig8(benchmark, save_result):
    def run():
        sweep.cache_clear()
        return run_experiment("fig8")

    result = benchmark(run)
    save_result("fig8", result.text + "\n\n"
                + comparison_table(result.comparisons))
    print()
    print(result.text)

    rows = {row[0]: dict(zip(result.headers, row)) for row in result.rows}

    # The CPU's low performance and high power make it worst everywhere.
    for size, by in rows.items():
        for device in ("V100 GPU", "Alveo U280", "Stratix 10"):
            if by[device] is not None:
                assert by["24-core Xeon"] < by[device], (size, device)

    # U280 ~2x the Stratix until the DDR fallback, then it drops below.
    for size in ("16M", "67M"):
        ratio = rows[size]["Alveo U280"] / rows[size]["Stratix 10"]
        assert 1.5 < ratio < 2.5, size
    assert rows["268M"]["Alveo U280"] < rows["268M"]["Stratix 10"]

    # Stratix more efficient than the V100 at small sizes; the V100
    # slightly better at the largest size it fits.
    assert rows["16M"]["Stratix 10"] > rows["16M"]["V100 GPU"]
    assert rows["268M"]["V100 GPU"] >= rows["268M"]["Stratix 10"]
