"""Kernel-count scaling (the implicit curve behind Section IV).

Sweeps the number of kernel replicas on both FPGAs, kernel-only and
end-to-end, showing (a) near-linear kernel-only scaling on banked HBM2,
(b) DDR aggregate-bandwidth saturation on the Stratix 10 / U280-DDR, and
(c) that end-to-end the extra kernels barely matter — transfer-bound, the
Section IV punchline.
"""

from repro.core.flops import grid_flops
from repro.experiments.common import paper_grid, standard_config
from repro.experiments.report import text_table
from repro.hardware import ALVEO_U280, STRATIX10_GX2800
from repro.runtime.session import AdvectionSession


def test_kernel_count_scaling(benchmark, save_result):
    grid = paper_grid("16M")
    config = standard_config()
    flops = grid_flops(grid)

    def run():
        rows = []
        for device, max_kernels, memory in (
                (ALVEO_U280, 6, "hbm2"), (STRATIX10_GX2800, 5, "ddr")):
            for kernels in range(1, max_kernels + 1):
                kernel_only = flops / device.invocation(
                    config, grid, num_kernels=kernels,
                    memory=memory).seconds / 1e9
                session = AdvectionSession(device, config,
                                           num_kernels=kernels,
                                           memory=memory)
                overall = session.run(grid, overlapped=True).gflops
                rows.append((device.name, kernels,
                             device.clock.frequency_mhz(kernels),
                             kernel_only, overall))
        return rows

    rows = benchmark(run)
    table = text_table(
        ("device", "kernels", "MHz", "kernel-only GFLOPS",
         "overall GFLOPS"),
        rows, precision=1,
        title="Kernel-count scaling at 16M cells")
    save_result("kernel_scaling", table)
    print()
    print(table)

    u280 = [r for r in rows if "U280" in r[0]]
    stratix = [r for r in rows if "Stratix" in r[0]]

    # (a) Kernel-only scaling on banked HBM2 is near linear.
    assert u280[-1][3] > 5.0 * u280[0][3]
    # (b) The Stratix's kernel-only scaling is sub-linear twice over:
    # clock derating and DDR aggregate saturation.
    assert stratix[-1][3] < 4.0 * stratix[0][3]
    # (c) End-to-end, going from 1 to max kernels buys far less than the
    # kernel-only ratio — the workload is transfer-bound (Section IV).
    u280_kernel_ratio = u280[-1][3] / u280[0][3]
    u280_overall_ratio = u280[-1][4] / u280[0][4]
    assert u280_overall_ratio < 0.5 * u280_kernel_ratio
    # More kernels never hurt end to end.
    overall = [r[4] for r in u280]
    assert all(b >= a - 1e-9 for a, b in zip(overall, overall[1:]))
