"""Validation benchmark: cycle-accurate co-simulation vs the analytic model.

The Figs. 5-8 numbers at paper scale come from the closed-form cycle
model plus the bandwidth roofline.  This benchmark cross-validates that
pipeline at cycle level on a small grid: with ample memory the co-
simulated multi-kernel cycle count must equal the analytic model
*exactly*, and starving the shared memory must produce the slowdown the
roofline predicts.
"""

import pytest

from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.experiments.report import text_table
from repro.kernel.config import KernelConfig
from repro.kernel.multi import MultiKernel
from repro.kernel.multi_simulate import simulate_multi_kernel


def test_cosim_vs_analytic_model(benchmark, save_result):
    grid = Grid(nx=12, ny=8, nz=6)
    fields = random_wind(grid, seed=0)
    config = KernelConfig(grid=grid, chunk_width=4)

    def run():
        rows = []
        for kernels in (1, 2, 3):
            sim = simulate_multi_kernel(config, fields, num_kernels=kernels)
            model = MultiKernel(config, kernels).cycles()
            rows.append((kernels, sim.total_cycles, model,
                         sim.total_cycles == model))
        return rows

    rows = benchmark(run)
    table = text_table(
        ("kernels", "co-sim cycles", "model cycles", "exact match"), rows,
        title="Cycle-accurate co-simulation vs closed-form model")
    save_result("cosim_validation", table)
    print()
    print(table)
    assert all(match for *_, match in rows)


def test_memory_contention_slowdown(benchmark, save_result):
    """DDR-style contention at cycle level: rate R cells/cycle across K
    kernels bounds throughput at R, so cycles scale like K/R."""
    grid = Grid(nx=8, ny=6, nz=6)
    fields = random_wind(grid, seed=1)
    config = KernelConfig(grid=grid, chunk_width=6)

    def run():
        ample = simulate_multi_kernel(config, fields, num_kernels=2)
        rows = [(float("inf"), ample.total_cycles, 1.0, 0.0)]
        for rate in (1.5, 1.0):
            starved = simulate_multi_kernel(
                config, fields, num_kernels=2, memory_cells_per_cycle=rate)
            rows.append((rate, starved.total_cycles,
                         starved.total_cycles / ample.total_cycles,
                         starved.read_starvation_fraction))
        return rows

    rows = benchmark(run)
    table = text_table(
        ("cells/cycle", "cycles", "slowdown", "starvation"), rows,
        precision=3, title="Shared-memory contention at cycle level")
    save_result("cosim_contention", table)
    print()
    print(table)

    slowdowns = [row[2] for row in rows]
    assert slowdowns == sorted(slowdowns)  # lower rate, more cycles
    # Rate 1.0 with 2 kernels: steady-state reads serialise -> approaching
    # 2x, damped by the per-chunk pipeline fills.
    assert 1.4 < slowdowns[-1] <= 2.1
