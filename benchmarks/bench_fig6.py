"""Regenerates Fig. 6 (multi-kernel performance with overlap)."""

from repro.experiments.registry import run_experiment
from repro.experiments.report import comparison_table
from repro.experiments.sweeps import sweep


def test_fig6(benchmark, save_result):
    def run():
        sweep.cache_clear()
        return run_experiment("fig6")

    result = benchmark(run)
    save_result("fig6", result.text + "\n\n"
                + comparison_table(result.comparisons))
    print()
    print(result.text)

    rows = {row[0]: dict(zip(result.headers, row)) for row in result.rows}

    # The V100 wins everywhere it fits.
    for size, by in rows.items():
        if by["V100 GPU"] is not None:
            assert by["V100 GPU"] > by["Alveo U280"], size
            assert by["V100 GPU"] > by["Stratix 10"], size

    # The U280 beats the Stratix 10 while HBM2 holds the data, then falls
    # behind after the DDR fallback at 268M cells.
    assert rows["16M"]["Alveo U280"] > rows["16M"]["Stratix 10"]
    assert rows["67M"]["Alveo U280"] > rows["67M"]["Stratix 10"]
    assert rows["268M"]["Alveo U280"] < rows["268M"]["Stratix 10"]
    assert rows["536M"]["Alveo U280"] < rows["536M"]["Stratix 10"]

    # With overlap, the FPGAs considerably outperform the CPU (abstract).
    for size, by in rows.items():
        assert by["Alveo U280"] > 0.9 * by["24-core Xeon"], size
        assert by["Stratix 10"] > 1.5 * by["24-core Xeon"], size
