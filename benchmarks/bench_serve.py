"""Serving-fleet regression harness: latency, recovery, bit-identity.

Offers the same seeded Poisson load to the fleet scheduler twice — a
fault-free leg and a chaos leg whose fault plan kills one device lane,
blips another, and batters a third with transfer faults — then gates:

* every job on both legs completes bit-identical to the fault-free
  golden checksums or fails with a typed ``ReproError`` (the serving
  invariant; a silent divergence is an immediate failure),
* the chaos leg actually exercises recovery: at least one reshard, and
  some breaker walks the full ``closed -> open -> half-open -> closed``
  re-admission cycle,
* the chaos leg replays deterministically (identical report dicts for
  identical seeds),
* modelled p99 latency on the fault-free leg stays under
  ``--max-p99-ms`` of modelled time.

Wall times and modelled latencies for both legs are recorded to
``benchmarks/BENCH_serve.json`` (scratch path + relaxed gates with
``--smoke`` for CI).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # 24 jobs
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke \
        --output /tmp/bench_serve.json

Exit status is non-zero on any gate failure.
"""

from __future__ import annotations

import argparse
import platform
import sys
import time

from repro.errors import ReproError
from repro.faults import FaultPlan, FaultSpec
from repro.perf.bench import BenchRecord, BenchSuite, render_table
from repro.serve import (Fleet, FleetScheduler, PoissonLoad, percentile,
                         run_load)

DEFAULT_OUTPUT = "benchmarks/BENCH_serve.json"
FLEET_SPEC = "2xu280+1xstratix10"


def chaos_plan(seed: int) -> FaultPlan:
    """Deterministic worst-week plan: loss + blip + flaky transfers."""
    return FaultPlan([
        FaultSpec("device", "loss", match="u280-0", probability=1.0,
                  count=1),
        FaultSpec("device", "blip", match="stratix10-0", probability=1.0,
                  count=1, seconds=0.01),
        FaultSpec("transfer", "fail", match="u280-1:h2d*",
                  probability=0.6, count=4),
    ], seed=seed)


def timed_run(load: PoissonLoad, plan: FaultPlan | None):
    scheduler = FleetScheduler(Fleet.from_spec(FLEET_SPEC),
                               fault_plan=plan, watchdog_seconds=60.0)
    start = time.perf_counter()
    report = run_load(scheduler, load)
    return report, time.perf_counter() - start


def leg_record(name: str, report, wall: float, load: PoissonLoad,
               mode: str) -> BenchRecord:
    latencies = report.latencies
    counters = report.counters()
    return BenchRecord(
        name=name, wall_seconds=wall, cycles=load.jobs,
        cells=load.nx * load.ny * load.nz, mode=mode,
        extra={
            "completed": len(report.completed),
            "failed": len(report.failed),
            "makespan_ms": round(report.makespan_seconds * 1e3, 3),
            "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
            "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
            "jobs_per_modelled_second": round(report.jobs_per_second, 1),
            "reshards": counters["reshards"],
            "redrives": counters["redrives"],
            "degraded": counters["degraded"],
            "cache_hits": counters["cache_hits"],
        })


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=24)
    parser.add_argument("--rate", type=float, default=300.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--chaos-seed", type=int, default=0)
    parser.add_argument("--nx", type=int, default=8)
    parser.add_argument("--ny", type=int, default=9)
    parser.add_argument("--nz", type=int, default=8)
    parser.add_argument("--max-p99-ms", type=float, default=50.0,
                        help="fail when the fault-free leg's modelled "
                             "p99 exceeds this (default: %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="fewer jobs + relaxed gates (CI smoke run)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="record file (default: %(default)s)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.jobs = min(args.jobs, 12)
        args.max_p99_ms = max(args.max_p99_ms, 100.0)

    load = PoissonLoad(jobs=args.jobs, rate_hz=args.rate, seed=args.seed,
                       nx=args.nx, ny=args.ny, nz=args.nz,
                       exact_fraction=0.25, distinct_inputs=8)
    label = f"{args.jobs}jobs-{args.nx}x{args.ny}x{args.nz}"

    clean, t_clean = timed_run(load, None)
    chaos, t_chaos = timed_run(load, chaos_plan(args.chaos_seed))
    replay, _ = timed_run(load, chaos_plan(args.chaos_seed))

    errors = []
    if clean.failed:
        errors.append(
            f"fault-free leg failed {len(clean.failed)} job(s): "
            f"{clean.error_counts()}")
    golden = {o.spec.job_id: o.result.checksum for o in clean.completed}

    for outcome in chaos.outcomes:
        if outcome.ok:
            expected = golden.get(outcome.spec.job_id)
            if expected is not None \
                    and outcome.result.checksum != expected:
                errors.append(f"SILENT DIVERGENCE: {outcome.spec.job_id} "
                              "checksum differs from the fault-free leg")
        elif not isinstance(outcome.error, ReproError):
            errors.append(f"untyped failure on {outcome.spec.job_id}: "
                          f"{type(outcome.error).__name__}")

    counters = chaos.counters()
    if counters["reshards"] < 1:
        errors.append("chaos leg never resharded: the loss fault "
                      "did not exercise recovery")
    moves = {(t["from"], t["to"]) for t in chaos.breaker_transitions()}
    for leg in (("closed", "open"), ("open", "half-open"),
                ("half-open", "closed")):
        if leg not in moves:
            errors.append(f"breaker never took the {leg[0]} -> {leg[1]} "
                          "transition: re-admission not exercised")
    if chaos.to_dict() != replay.to_dict():
        errors.append("chaos leg is nondeterministic: identical seeds "
                      "produced different reports")

    p99_ms = 1e3 * percentile(clean.latencies, 0.99)
    if p99_ms > args.max_p99_ms:
        errors.append(f"fault-free p99 {p99_ms:.2f} ms exceeds the "
                      f"{args.max_p99_ms:.2f} ms gate")

    suite = BenchSuite(context={
        "fleet": FLEET_SPEC,
        "load": load.to_dict(),
        "chaos_seed": args.chaos_seed,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "clean_p99_ms": round(p99_ms, 3),
        "chaos_completed": len(chaos.completed),
        "chaos_failed": len(chaos.failed),
        "invariant_ok": not errors,
    })
    suite.add(leg_record(f"serve-{label}-clean", clean, t_clean, load,
                         "fault-free"))
    suite.add(leg_record(f"serve-{label}-chaos", chaos, t_chaos, load,
                         "chaos"))

    print(render_table(suite.records))
    print(f"\nfault-free p99: {p99_ms:.3f} ms  (gate {args.max_p99_ms} ms)")
    print(f"chaos leg: {len(chaos.completed)}/{load.jobs} completed, "
          f"{counters['reshards']} reshard(s), "
          f"{counters['redrives']} redrive(s), "
          f"{len(chaos.breaker_transitions())} breaker transition(s)")

    if errors:
        for err in errors:
            print(f"GATE FAILURE: {err}", file=sys.stderr)
        return 1

    path = suite.write(args.output)
    print(f"records written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
