"""Ablation benchmarks for the design choices the paper discusses.

* A1 (section III-A): implementing the shift buffer in URAM raises the
  initiation interval to 2, halving throughput — "we considered it
  unacceptable".
* A2 (section III): chunk widths of ~8 or below degrade external memory
  efficiency; above that the impact is negligible.
* A3 (section IV): the overlap of transfer and compute is decisive for
  end-to-end performance on every accelerator.
* A4 (implicit): FIFO depth must absorb the column-top double emission;
  the minimum legal depth already sustains II=1.
"""

import pytest

from repro.core.flops import grid_flops
from repro.core.grid import Grid
from repro.experiments.common import paper_grid, standard_config
from repro.hardware import ALVEO_U280
from repro.hardware.memory import StreamingMemoryModel
from repro.kernel.config import KernelConfig
from repro.kernel.cycle_model import KernelCycleModel
from repro.runtime.session import AdvectionSession


def test_a1_uram_ii2_halves_throughput(benchmark, save_result):
    grid = paper_grid("16M")

    def run():
        bram = KernelCycleModel(KernelConfig(grid=grid, shift_buffer_ii=1))
        uram = KernelCycleModel(KernelConfig(grid=grid, shift_buffer_ii=2))
        return bram.cycles(), uram.cycles()

    bram_cycles, uram_cycles = benchmark(run)
    ratio = uram_cycles / bram_cycles
    assert ratio == pytest.approx(2.0, rel=0.02)
    save_result("ablation_a1_uram", f"BRAM II=1 cycles: {bram_cycles}\n"
                f"URAM II=2 cycles: {uram_cycles}\nslowdown: {ratio:.3f}x")
    benchmark.extra_info["uram_slowdown"] = round(ratio, 3)


def test_a2_chunk_size_memory_efficiency(benchmark, save_result):
    """Burst efficiency vs chunk width: the paper's <=8 threshold."""
    nz = 64

    def run():
        return {
            width: StreamingMemoryModel.burst_efficiency(
                StreamingMemoryModel.chunk_burst_bytes(width, nz))
            for width in (1, 2, 4, 8, 16, 32, 64, 128)
        }

    table = benchmark(run)
    lines = [f"chunk={w:4d}  burst_eff={e:.3f}" for w, e in table.items()]
    save_result("ablation_a2_chunk", "\n".join(lines))
    assert table[64] > 0.98      # negligible impact at sane widths
    assert table[8] < 0.95       # paper's threshold where impact appears
    assert table[1] < 0.55       # catastrophic at degenerate widths
    assert list(table.values()) == sorted(table.values())


def test_a2b_chunk_size_total_cycles(benchmark):
    """Narrow chunks also amplify reads (halo overlap) and pipeline fills."""
    grid = Grid(nx=64, ny=256, nz=64)

    def run():
        return {
            width: KernelCycleModel(
                KernelConfig(grid=grid, chunk_width=width)).cycles()
            for width in (2, 8, 32, 128)
        }

    cycles = benchmark(run)
    assert cycles[2] > cycles[8] > cycles[32] > cycles[128]
    # The jump from 128 to 8 is mild; from 8 to 2 it balloons.
    assert cycles[8] / cycles[128] < 1.3
    assert cycles[2] / cycles[8] > 1.3


def test_a3_overlap_benefit(benchmark, save_result):
    grid = paper_grid("16M")
    config = standard_config()
    session = AdvectionSession(ALVEO_U280, config)

    def run():
        seq = session.run(grid, overlapped=False)
        ovl = session.run(grid, overlapped=True)
        return seq, ovl

    seq, ovl = benchmark(run)
    speedup = ovl.gflops / seq.gflops
    save_result("ablation_a3_overlap",
                f"sequential: {seq.gflops:.2f} GFLOPS\n"
                f"overlapped: {ovl.gflops:.2f} GFLOPS\n"
                f"speedup: {speedup:.2f}x")
    assert speedup > 3.0
    benchmark.extra_info["overlap_speedup"] = round(speedup, 2)


def test_a4_min_stream_depth_sustains_ii1(benchmark):
    """Stream depth 2 (the minimum that absorbs column-top double
    emissions) already sustains full throughput in the cycle simulator."""
    from repro.core.wind import random_wind
    from repro.kernel.simulate import simulate_kernel

    grid = Grid(nx=4, ny=4, nz=8)
    fields = random_wind(grid, seed=0)

    def run():
        shallow = simulate_kernel(
            KernelConfig(grid=grid, stream_depth=2), fields)
        deep = simulate_kernel(
            KernelConfig(grid=grid, stream_depth=32), fields)
        return shallow.total_cycles, deep.total_cycles

    shallow_cycles, deep_cycles = benchmark(run)
    assert shallow_cycles <= deep_cycles + 2


def test_a5_column_height_sensitivity(benchmark, save_result):
    """The theoretical-peak metric vs column height: taller columns have
    proportionally fewer one-sided top cells, asymptoting to 63 ops/cycle."""
    from repro import constants
    from repro.perf.theoretical import theoretical_gflops

    def run():
        return {
            nz: (constants.average_ops_per_cycle(nz),
                 theoretical_gflops(300.0, column_height=nz))
            for nz in (16, 32, 64, 128, 256)
        }

    table = benchmark(run)
    lines = [f"nz={nz:4d}  ops/cycle={ops:.4f}  peak={peak:.3f} GFLOPS"
             for nz, (ops, peak) in table.items()]
    save_result("ablation_a5_column_height", "\n".join(lines))
    ops = [v[0] for v in table.values()]
    assert ops == sorted(ops)           # monotone toward 63
    assert table[64][0] == pytest.approx(62.875)
    assert all(v[0] < 63.0 for v in table.values())


def test_a6_x_chunk_count_tradeoff(benchmark, save_result):
    """'Given a sensible chunk size' (section IV): too few X chunks give
    poor overlap, too many pay per-transfer latency and per-launch
    overhead — a U-shaped curve with a broad sweet spot."""
    grid = paper_grid("16M")
    config = standard_config()

    def run():
        table = {}
        for x_chunks in (1, 2, 4, 16, 64, 256):
            session = AdvectionSession(ALVEO_U280, config,
                                       x_chunks=x_chunks)
            table[x_chunks] = session.run(grid, overlapped=True).gflops
        return table

    table = benchmark(run)
    lines = [f"x_chunks={n:4d}  {g:.2f} GFLOPS" for n, g in table.items()]
    save_result("ablation_a6_chunk_count", "\n".join(lines))
    print()
    print("\n".join(lines))

    best = max(table, key=table.get)
    assert 2 < best <= 64                     # the sweet spot is interior
    assert table[best] > 1.2 * table[1]       # single chunk: no overlap
    assert table[best] > table[256]           # too many chunks: overheads


def test_single_vs_multi_kernel_scaling(benchmark, save_result):
    """Kernel-only scaling from one to six kernels on the U280 (HBM2)."""
    grid = paper_grid("16M")
    config = standard_config()

    def run():
        return {
            k: ALVEO_U280.invocation(config, grid, num_kernels=k,
                                     memory="hbm2").gflops(grid)
            for k in (1, 2, 4, 6)
        }

    table = benchmark(run)
    lines = [f"kernels={k}  {g:.2f} GFLOPS" for k, g in table.items()]
    save_result("ablation_multi_kernel", "\n".join(lines))
    assert table[6] > 5.0 * table[1]  # near-linear on banked HBM2
    assert grid_flops(grid) > 0
