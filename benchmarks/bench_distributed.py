"""Distributed (MONC-style) scaling benchmark.

MONC runs horizontally decomposed over MPI; this benchmark reproduces the
strong-scaling behaviour of the advection step on the in-process cluster:
per-rank compute shrinks with rank count while halo traffic per rank
shrinks only linearly along one edge, so efficiency falls — and the
result stays bit-identical to the single-domain reference throughout.
"""

from repro.core.grid import Grid
from repro.core.reference import advect_reference
from repro.core.wind import shear_layer
from repro.distributed import DistributedAdvection, ProcessGrid
from repro.experiments.report import text_table

DECOMPOSITIONS = ((1, 1), (2, 1), (2, 2), (4, 2), (4, 4))


def test_strong_scaling(benchmark, save_result):
    grid = Grid(nx=32, ny=32, nz=16)
    fields = shear_layer(grid)
    reference = advect_reference(fields)

    def run():
        rows = []
        for px, py in DECOMPOSITIONS:
            topo = ProcessGrid(global_grid=grid, px=px, py=py)
            dist = DistributedAdvection(topo)
            result = dist.compute(fields)
            assert result.max_abs_difference(reference) == 0.0
            report = dist.last_report
            rows.append((f"{px}x{py}", topo.size,
                         report.compute_seconds * 1e3,
                         report.comm_seconds * 1e6,
                         report.comm_fraction,
                         dist.scaling_efficiency()))
        return rows

    rows = benchmark(run)
    table = text_table(
        ("decomp", "ranks", "compute ms", "comm us", "comm frac",
         "efficiency"),
        rows, precision=3,
        title="Strong scaling of the distributed advection step")
    save_result("distributed_scaling", table)
    print()
    print(table)

    efficiencies = [row[5] for row in rows]
    assert efficiencies == sorted(efficiencies, reverse=True)
    # Compute per rank falls with rank count.
    assert rows[-1][2] < rows[0][2]


def test_halo_exchange_cost(benchmark):
    grid = Grid(nx=32, ny=32, nz=16)
    topo = ProcessGrid(global_grid=grid, px=4, py=4)
    fields = shear_layer(grid)

    from repro.distributed import LocalCluster

    cluster = LocalCluster(topo)
    cluster.scatter(fields)

    benchmark(cluster.halo_exchange)
    assert cluster.stats.exchanges >= 1
